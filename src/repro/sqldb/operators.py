"""Physical query operators: the executable nodes of a SELECT plan.

The planner (:mod:`repro.sqldb.plan`) lowers a parsed ``SELECT`` into a tree
of the operators defined here; the plan driver then pushes morsel-sized
:class:`~repro.sqldb.expressions.Batch`es through them:

* :class:`Scan` produces row-range morsels from a storage table (zero-copy
  slices of the cached column scans), a virtual meta table, a subquery
  result or a table-producing UDF.
* :class:`Filter` applies the WHERE predicate per morsel.
* :class:`HashJoin` materialises its build (right) side once, then probes it
  with each left morsel.  Equi-joins probe a sort/searchsorted structure over
  shared-dictionary codes or a common numeric dtype; other conditions
  evaluate vectorised over the morsel-by-build cross product.  LEFT-join
  unmatched rows are deferred and flushed after every probe morsel, which
  preserves the sequential engine's matches-first output order.
* :class:`HashAggregate` either aggregates the concatenated input exactly
  like the clause-at-a-time engine did (the single-morsel / exotic-aggregate
  path) or builds per-morsel partial states — local group layouts plus
  SUM/AVG/MIN/MAX/COUNT partials — and merges them in morsel order, which
  reproduces the sequential first-appearance group order bit-for-bit for
  exact (integer/dictionary) data.
* :class:`Project` evaluates the select list per morsel; :class:`Sort`,
  :class:`Distinct` and :class:`Limit` are pipeline breakers applied to the
  materialised result.

Everything here used to live inline in ``Executor.execute_select``; the
behaviour-critical helpers moved verbatim so single-morsel execution takes
exactly the same code paths as the pre-pipeline engine.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Iterator, Sequence

import numpy as np

from ..errors import ExecutionError
from . import ast_nodes as ast
from .aggregates import (
    PARTIAL_AGGREGATES,
    GroupLayout,
    PartialAggregate,
    grouped_aggregate,
    is_aggregate,
    merge_partial_aggregates,
    partial_aggregate,
)
from .expressions import (
    Batch,
    BatchColumn,
    EvalResult,
    ExpressionEvaluator,
    as_value_list,
    child_expressions,
    concat_values,
    default_output_name,
    is_vector,
    iter_function_calls,
    slice_values,
    take_values,
)
from .functions import is_builtin_scalar
from .result import QueryResult, ResultColumn
from .types import SQLType, infer_sql_type, python_value
from .vector import NULL_CODE, Vector, vector_parts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .database import Database


# --------------------------------------------------------------------------- #
# generic helpers (moved from executor.py)
# --------------------------------------------------------------------------- #
def infer_column_type(values: Sequence[Any]) -> SQLType:
    sample = next((value for value in values if value is not None), None)
    return infer_sql_type(sample) if sample is not None else SQLType.STRING


def batch_from_result(result: QueryResult, alias: str | None) -> Batch:
    columns = [
        BatchColumn(alias, column.name, column.sql_type, column.batch_values())
        for column in result.columns
    ]
    return Batch(columns, row_count=result.row_count)


def concat_batches(batches: Sequence[Batch]) -> Batch:
    """Concatenate same-structure batches (morsels) back into one batch."""
    batches = [batch for batch in batches if batch is not None]
    if len(batches) == 1:
        return batches[0]
    if not batches:
        return Batch([], row_count=0)
    first = batches[0]
    columns = []
    for index, column in enumerate(first.columns):
        pieces = [batch.columns[index].values for batch in batches]
        columns.append(BatchColumn(column.table, column.name, column.sql_type,
                                   concat_values(pieces)))
    return Batch(columns, row_count=sum(batch.row_count for batch in batches))


def conjuncts(expression: ast.Expression) -> Iterator[ast.Expression]:
    """Flatten an AND tree into its conjuncts."""
    if isinstance(expression, ast.BinaryOp) and expression.op.upper() == "AND":
        yield from conjuncts(expression.left)
        yield from conjuncts(expression.right)
    else:
        yield expression


def column_side(ref: ast.ColumnRef, left: Batch, right: Batch) -> str | None:
    """Which join input a column reference belongs to ('left'/'right'/None).

    Anything other than exactly one matching column across both inputs —
    unknown names, names ambiguous within one side or across sides — returns
    None so the fallback path raises the same error resolution always did.
    """
    matches_left = len(left.matching_columns(ref.name, ref.table))
    matches_right = len(right.matching_columns(ref.name, ref.table))
    if matches_left == 1 and matches_right == 0:
        return "left"
    if matches_right == 1 and matches_left == 0:
        return "right"
    return None


def collect_aggregates(expression: ast.Expression,
                       out: list[ast.FunctionCall]) -> None:
    """Collect every aggregate call in the tree (not descending into them)."""
    if isinstance(expression, ast.FunctionCall) and is_aggregate(expression.name):
        out.append(expression)
        return
    for child in child_expressions(expression):
        collect_aggregates(child, out)


def statement_expressions(select: ast.Select) -> list[ast.Expression]:
    """Every expression appearing anywhere in a SELECT (own level only)."""
    expressions = [item.expression for item in select.items
                   if not isinstance(item.expression, ast.Star)]
    if select.where is not None:
        expressions.append(select.where)
    expressions.extend(select.group_by)
    if select.having is not None:
        expressions.append(select.having)
    expressions.extend(order.expression for order in select.order_by)
    return expressions


# --------------------------------------------------------------------------- #
# result transforms: DISTINCT / ORDER BY / OFFSET-LIMIT
# --------------------------------------------------------------------------- #
def distinct_result(result: QueryResult) -> QueryResult:
    """Tuple-key dedup over the result columns, keeping first occurrences."""
    seen: set[tuple] = set()
    keep_indices: list[int] = []
    for index, key in enumerate(zip(*[col.values for col in result.columns])):
        if key not in seen:
            seen.add(key)
            keep_indices.append(index)
    if len(keep_indices) == result.row_count:
        return result
    columns = [
        ResultColumn(col.name, col.sql_type, [col.values[i] for i in keep_indices])
        for col in result.columns
    ]
    return QueryResult(columns)


def slice_result(result: QueryResult, offset: int, limit: int | None) -> QueryResult:
    end = None if limit is None else offset + limit
    columns = [
        ResultColumn(col.name, col.sql_type, col.values[offset:end])
        for col in result.columns
    ]
    return QueryResult(columns)


def sorted_indices(keys: list[list[Any]], descending: list[bool],
                   row_count: int) -> Sequence[int]:
    """Row ordering for ORDER BY: ``np.lexsort`` for NULL-free numeric keys,
    stable Python sorts otherwise.  NULLs sort last for both ASC and DESC."""
    arrays: list[np.ndarray] | None = []
    for values in keys:
        try:
            array = np.asarray(values)
        except (TypeError, ValueError, OverflowError):
            arrays = None
            break
        if array.dtype.kind not in "biuf" or array.shape != (row_count,):
            arrays = None
            break
        arrays.append(array)

    if arrays:
        sort_keys = []
        for array, desc in zip(arrays, descending):
            if array.dtype.kind in "bu":
                array = array.astype(np.int64)
            sort_keys.append(-array if desc else array)
        # np.lexsort treats its *last* key as primary
        return np.lexsort(tuple(reversed(sort_keys)))

    indices = list(range(row_count))
    for position in range(len(keys) - 1, -1, -1):
        key_values = keys[position]
        if descending[position]:
            indices.sort(
                key=lambda i: (key_values[i] is not None,
                               key_values[i] if key_values[i] is not None else 0),
                reverse=True,
            )
        else:
            indices.sort(
                key=lambda i: (key_values[i] is None,
                               key_values[i] if key_values[i] is not None else 0),
            )
    return indices


def order_key_values(database: "Database", expression: ast.Expression,
                     result: QueryResult, batch: Batch,
                     row_count: int) -> list[Any]:
    if isinstance(expression, ast.ColumnRef) and expression.table is None:
        lowered = expression.name.lower()
        for column in result.columns:
            if column.name.lower() == lowered:
                return list(column.values)
    if isinstance(expression, ast.Literal) and isinstance(expression.value, int):
        position = expression.value - 1
        if 0 <= position < result.column_count:
            return list(result.columns[position].values)
    evaluator = ExpressionEvaluator(database, batch, allow_aggregates=False)
    values = evaluator.evaluate(expression).broadcast(batch.row_count)
    if len(values) != row_count:
        raise ExecutionError("ORDER BY expression length mismatch")
    return as_value_list(values)


def sort_result(database: "Database", select: ast.Select,
                result: QueryResult, batch: Batch) -> QueryResult:
    row_count = result.row_count
    keys: list[list[Any]] = []
    for order_item in select.order_by:
        keys.append(order_key_values(database, order_item.expression,
                                     result, batch, row_count))
    descending = [order_item.descending for order_item in select.order_by]

    indices = sorted_indices(keys, descending, row_count)
    columns = [
        ResultColumn(col.name, col.sql_type, [col.values[i] for i in indices])
        for col in result.columns
    ]
    return QueryResult(columns)


# --------------------------------------------------------------------------- #
# grouping helpers (moved from executor.py)
# --------------------------------------------------------------------------- #
def grouping_key_array(values: Any) -> np.ndarray | None:
    """A sortable key array factorising a GROUP BY column; None = fall back.

    NULLs form their own group (SQL semantics: all NULL keys group together),
    represented by ``NULL_CODE`` — below every valid code/value.  Dictionary
    vectors group on their codes directly; masked numeric vectors factorise
    the valid values with ``np.unique`` so NULLs get a code of their own.
    """
    if is_vector(values):
        return values
    if not isinstance(values, Vector):
        return None
    if values.dictionary is not None:
        if values.mask is None:
            return values.data
        return np.where(values.mask, NULL_CODE, values.data)
    if values.mask is None:
        return values.data
    valid = ~values.mask
    codes = np.full(len(values), NULL_CODE, dtype=np.int64)
    if valid.any():
        _, inverse = np.unique(values.data[valid], return_inverse=True)
        codes[valid] = inverse
    return codes


def layout_from_sort_key(array: np.ndarray, row_count: int
                         ) -> tuple[GroupLayout, Sequence[int]]:
    """Factorise one key array into (layout, first-row-per-group) geometry."""
    order = np.argsort(array, kind="stable")
    sorted_keys = array[order]
    new_cluster = np.empty(row_count, dtype=np.bool_)
    new_cluster[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new_cluster[1:])
    starts = np.flatnonzero(new_cluster)
    n_groups = int(starts.size)
    # stable sort => the first row of each cluster is its earliest row
    first_rows = order[starts]
    out_perm = np.empty(n_groups, dtype=np.int64)
    out_perm[np.argsort(first_rows, kind="stable")] = \
        np.arange(n_groups, dtype=np.int64)
    cluster_of_sorted_row = np.cumsum(new_cluster) - 1
    gids = np.empty(row_count, dtype=np.int64)
    gids[order] = out_perm[cluster_of_sorted_row]
    layout = GroupLayout(gids, n_groups, order=order, starts=starts,
                         out_perm=out_perm)
    return layout, np.sort(first_rows)


def group_layout(group_by: Sequence[ast.Expression], batch: Batch,
                 evaluator: ExpressionEvaluator
                 ) -> tuple[GroupLayout, Sequence[int], list[Any]]:
    """Factorise the GROUP BY keys into (layout, first-row-per-group, keys).

    Groups are numbered in first-appearance order, matching the ordering
    the per-group dict-based execution produced.  The returned key columns
    are broadcast to the batch row count (used by the partial-merge path to
    derive cross-morsel group identities).
    """
    row_count = batch.row_count
    if not group_by:
        # implicit aggregation: one group spanning the whole batch (even
        # when it is empty, so aggregates still produce a row)
        gids = np.zeros(row_count, dtype=np.int64)
        return GroupLayout(gids, 1), ([0] if row_count else []), []

    key_columns = [
        evaluator.evaluate(expr).broadcast(row_count)
        for expr in group_by
    ]
    if len(key_columns) == 1 and row_count > 0:
        sort_key = grouping_key_array(key_columns[0])
        if sort_key is not None:
            # one stable key sort yields the factorisation AND the
            # contiguous cluster geometry the reduceat kernels need
            layout, rep_indices = layout_from_sort_key(sort_key, row_count)
            return layout, rep_indices, key_columns

    columns = [as_value_list(column) for column in key_columns]
    mapping: dict[tuple, int] = {}
    gids = np.empty(row_count, dtype=np.int64)
    rep_indices: list[int] = []
    for row_index, key in enumerate(zip(*columns)):
        gid = mapping.get(key)
        if gid is None:
            gid = len(mapping)
            mapping[key] = gid
            rep_indices.append(row_index)
        gids[row_index] = gid
    return GroupLayout(gids, len(mapping)), rep_indices, key_columns


class GroupedExpressionEvaluator(ExpressionEvaluator):
    """Evaluates select items over one representative row per group.

    Aggregate calls resolve to precomputed per-group columns, so an
    expression like ``SUM(x) / COUNT(*)`` is evaluated once for all groups
    instead of once per group.
    """

    def __init__(self, database: "Database", rep_batch: Batch,
                 aggregate_columns: dict[int, list[Any]]) -> None:
        super().__init__(database, rep_batch, allow_aggregates=True)
        self._aggregate_columns = aggregate_columns

    def _eval_FunctionCall(self, node: ast.FunctionCall) -> EvalResult:
        precomputed = self._aggregate_columns.get(id(node))
        if precomputed is not None:
            return EvalResult(precomputed, constant=False)
        return super()._eval_FunctionCall(node)


def group_column(result: EvalResult, n_groups: int) -> list[Any]:
    """Align an evaluation over the representative batch to one value per group."""
    if len(result.values) == n_groups:
        return as_value_list(result.values)
    if len(result.values) == 0:
        # non-aggregate expression over the empty implicit group
        return [None] * n_groups
    return as_value_list(result.broadcast(n_groups))


def aggregate_argument(node: ast.FunctionCall, evaluator: ExpressionEvaluator,
                       batch: Batch) -> Sequence[Any]:
    """The row-aligned argument column of one aggregate call."""
    is_star = len(node.args) == 1 and isinstance(node.args[0], ast.Star)
    if is_star or not node.args:
        return [1] * batch.row_count if node.distinct else []
    return evaluator.evaluate(node.args[0]).broadcast(batch.row_count)


def aggregate_is_star(node: ast.FunctionCall) -> bool:
    return len(node.args) == 1 and isinstance(node.args[0], ast.Star)


# --------------------------------------------------------------------------- #
# join key normalisation and build/probe structures
# --------------------------------------------------------------------------- #
class _VectorEquiBuild:
    """Sort/searchsorted build over the right side's normalised key array.

    The probe half of the former ``_vector_equi_join``: NULL keys (masked
    rows) are excluded from both build and probe, so they never match.
    Output pair order matches the Python hash join: left rows ascending,
    right matches in original row order within each key.
    """

    def __init__(self, right_data: np.ndarray,
                 right_mask: np.ndarray | None) -> None:
        right_rows = (np.flatnonzero(~right_mask) if right_mask is not None
                      else np.arange(len(right_data), dtype=np.intp))
        right_keys = right_data[right_rows]
        unique_keys, right_inverse = np.unique(right_keys, return_inverse=True)
        by_key = np.argsort(right_inverse, kind="stable")
        self.grouped_rows = right_rows[by_key]
        self.counts = np.bincount(right_inverse, minlength=len(unique_keys))
        self.group_starts = np.concatenate(([0], np.cumsum(self.counts[:-1]))) \
            if len(unique_keys) else np.zeros(0, dtype=np.int64)
        self.unique_keys = unique_keys

    def probe(self, left_data: np.ndarray, left_mask: np.ndarray | None
              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Probe one left morsel; returns (left rows, right rows, found mask)."""
        left_count = len(left_data)
        unique_keys = self.unique_keys
        if len(unique_keys):
            positions = np.searchsorted(unique_keys, left_data)
            clipped = np.minimum(positions, len(unique_keys) - 1)
            found = (positions < len(unique_keys)) \
                & (unique_keys[clipped] == left_data)
        else:
            positions = np.zeros(left_count, dtype=np.intp)
            found = np.zeros(left_count, dtype=np.bool_)
        if left_mask is not None:
            found &= ~left_mask

        probe_rows = np.flatnonzero(found)
        probe_keys = positions[probe_rows]
        match_counts = self.counts[probe_keys]
        total = int(match_counts.sum())
        prefix = np.cumsum(match_counts) - match_counts
        within = np.arange(total, dtype=np.intp) - np.repeat(prefix, match_counts)
        right_out = self.grouped_rows[
            np.repeat(self.group_starts[probe_keys], match_counts) + within] \
            if total else np.zeros(0, dtype=np.intp)
        left_out = np.repeat(probe_rows, match_counts).astype(np.intp, copy=False)
        return left_out, np.asarray(right_out, dtype=np.intp), found


class _HashEquiBuild:
    """Python-tier hash build over the right side's key value lists."""

    def __init__(self, right_keys: list[list[Any]]) -> None:
        build: dict[tuple, list[int]] = {}
        for right_row, key in enumerate(zip(*right_keys)):
            if any(part is None for part in key):
                continue
            build.setdefault(key, []).append(right_row)
        self.build = build

    def probe(self, left_keys: list[list[Any]], row_count: int
              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        left_out: list[int] = []
        right_out: list[int] = []
        found = np.zeros(row_count, dtype=np.bool_)
        for left_row, key in enumerate(zip(*left_keys)):
            matches = None
            if not any(part is None for part in key):
                matches = self.build.get(key)
            if matches:
                found[left_row] = True
                left_out.extend([left_row] * len(matches))
                right_out.extend(matches)
        return (np.asarray(left_out, dtype=np.intp),
                np.asarray(right_out, dtype=np.intp), found)


# --------------------------------------------------------------------------- #
# operator nodes
# --------------------------------------------------------------------------- #
class PhysicalOperator:
    """Base class: a node of the physical plan tree."""

    name = "Operator"

    def __init__(self) -> None:
        self.children: list["PhysicalOperator"] = []

    def describe(self) -> str:
        """One-line operator description for EXPLAIN (without children)."""
        return self.name


class Scan(PhysicalOperator):
    """Leaf source: storage table, virtual meta table, subquery result,
    table-producing UDF output, or the FROM-less single-row batch.

    ``prepare`` binds the source (executing subqueries / table functions /
    virtual-table snapshots); ``batch_slice`` then serves zero-copy row-range
    morsels — cached-scan slices for storage tables, list slices otherwise.
    """

    name = "Scan"

    def __init__(self, label: str, alias: str | None = None) -> None:
        super().__init__()
        self.label = label
        self.alias = alias
        self.source_ast: ast.TableRef | None = None
        self.estimated_rows: int | None = None
        self.morsel_hint: int | None = None
        self._batch: Batch | None = None

    def bind_table(self, table: Any) -> None:
        """Snapshot a storage table's cached scans (zero-copy, consistent:
        later mutations build new caches instead of touching these)."""
        row_count = table.row_count
        columns = [
            BatchColumn(self.alias, column.name, column.sql_type,
                        column.scan_vector(0, row_count))
            for column in table.columns
        ]
        self.bind_batch(Batch(columns, row_count=row_count))

    def bind_batch(self, batch: Batch) -> None:
        self._batch = batch
        self.estimated_rows = batch.row_count

    @property
    def prepared(self) -> bool:
        return self._batch is not None

    @property
    def row_count(self) -> int:
        assert self._batch is not None, "scan not prepared"
        return self._batch.row_count

    def batch_slice(self, start: int, stop: int) -> Batch:
        assert self._batch is not None
        return self._batch.slice(start, stop)

    def describe(self) -> str:
        rows = "?" if self.estimated_rows is None else str(self.estimated_rows)
        morsels = "?" if self.morsel_hint is None else str(self.morsel_hint)
        return f"Scan {self.label} [rows={rows} morsels={morsels}]"


class Filter(PhysicalOperator):
    """WHERE: boolean-mask selection applied to each morsel."""

    name = "Filter"

    def __init__(self, database: "Database", predicate: ast.Expression) -> None:
        super().__init__()
        self.database = database
        self.predicate = predicate

    def process(self, batch: Batch) -> Batch:
        evaluator = ExpressionEvaluator(self.database, batch)
        return batch.filter(evaluator.evaluate_mask(self.predicate))

    def describe(self) -> str:
        from .render import render_expression
        return f"Filter [{render_expression(self.predicate)}]"


class HashJoin(PhysicalOperator):
    """Join: build once on the right input, probe with each left morsel.

    ``prepare`` receives the fully materialised right batch plus an (empty)
    template of the left pipeline's schema, picks the strategy the
    sequential engine would have picked, and precomputes the build
    structures.  ``probe`` maps one left morsel to ``(matches, deferred)``
    where ``deferred`` carries LEFT-join unmatched rows the driver appends
    after all matches — the sequential output order.
    """

    name = "HashJoin"

    def __init__(self, database: "Database", join_type: str,
                 condition: ast.Expression | None) -> None:
        super().__init__()
        self.database = database
        self.join_type = join_type.upper()
        self.condition = condition
        self._right: Batch | None = None
        self._pairs: list[tuple[ast.ColumnRef, ast.ColumnRef]] | None = None
        self._strategy = "cross"
        self._vector_build: _VectorEquiBuild | None = None
        self._left_dict_map: np.ndarray | None = None
        self._left_numeric_dtype: Any = None
        self._check_left_magnitude = False
        self._hash_build: _HashEquiBuild | None = None
        self._build_lock = threading.Lock()

    # -- build ----------------------------------------------------------- #
    def prepare(self, left_template: Batch, right_batch: Batch) -> Batch:
        """Bind the build side, pick a strategy, return the output template."""
        self._right = right_batch
        if self.join_type == "CROSS" or self.condition is None:
            self._strategy = "cross"
        else:
            self._pairs = self._equi_join_keys(left_template, right_batch)
            if self._pairs is None:
                self._strategy = "mask"
            else:
                self._strategy = "hash"
                if len(self._pairs) == 1:
                    self._prepare_vector_strategy(left_template, right_batch)
                if self._strategy == "hash":
                    self._python_build()  # eager: it is the only probe path
        # the output template is structural (no probe): left columns plus
        # empty slices of the build columns, preserving their backing kinds
        columns = list(left_template.columns) + [
            BatchColumn(c.table, c.name, c.sql_type,
                        slice_values(c.values, 0, 0))
            for c in right_batch.columns
        ]
        return Batch(columns, row_count=0)

    def _equi_join_keys(self, left: Batch, right: Batch
                        ) -> list[tuple[ast.ColumnRef, ast.ColumnRef]] | None:
        """Extract ``left_col = right_col`` pairs from an AND-of-equalities.

        Returns None when any conjunct is not such an equality (including
        ambiguous or unresolvable column references, which the fallback path
        reports with the same errors as before).
        """
        assert self.condition is not None
        pairs: list[tuple[ast.ColumnRef, ast.ColumnRef]] = []
        for conjunct in conjuncts(self.condition):
            if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="
                    and isinstance(conjunct.left, ast.ColumnRef)
                    and isinstance(conjunct.right, ast.ColumnRef)):
                return None
            first_side = column_side(conjunct.left, left, right)
            second_side = column_side(conjunct.right, left, right)
            if first_side == "left" and second_side == "right":
                pairs.append((conjunct.left, conjunct.right))
            elif first_side == "right" and second_side == "left":
                pairs.append((conjunct.right, conjunct.left))
            else:
                return None
        return pairs or None

    def _prepare_vector_strategy(self, left_template: Batch,
                                 right: Batch) -> None:
        """Try to set up the vectorised single-key equi-join.

        Mirrors the former ``_join_key_arrays`` eligibility rules: both
        sides must expose (data, mask, dictionary) parts, dictionaries must
        agree in kind, and mixed int/float keys only qualify while values
        stay exactly representable in float64 (the right side is checked
        here; each left morsel re-checks its own values and falls back to
        the hash build for exact Python equality, as the sequential engine
        did for the whole join).
        """
        left_ref, right_ref = self._pairs[0]
        left_parts = vector_parts(
            left_template.resolve(left_ref.name, left_ref.table).values)
        right_parts = vector_parts(
            right.resolve(right_ref.name, right_ref.table).values)
        if left_parts is None or right_parts is None:
            return
        l_data, _, l_dict = left_parts
        r_data, r_mask, r_dict = right_parts
        if (l_dict is None) != (r_dict is None):
            return  # string-vs-number join: Python equality semantics apply
        if l_dict is not None:
            combined = np.concatenate([l_dict, r_dict])
            _, inverse = np.unique(combined, return_inverse=True)
            self._left_dict_map = inverse[:len(l_dict)]
            right_map = inverse[len(l_dict):]
            right_codes = r_data if r_mask is None else \
                np.where(r_mask, 0, r_data)
            if len(right_map):
                right_shared = right_map[right_codes]
            else:
                right_shared = np.empty(0, dtype=np.int64)
            self._vector_build = _VectorEquiBuild(right_shared, r_mask)
            self._strategy = "vector"
            return
        if l_data.dtype.kind not in "biuf" or r_data.dtype.kind not in "biuf":
            return
        if l_data.dtype.kind == "f" or r_data.dtype.kind == "f":
            # mixed int/float keys compare through float64; integers beyond
            # 2^53 would collide after the cast where exact Python equality
            # would not match, so those stay on the exact per-row path
            if _exceeds_float_exact(r_data):
                return
            self._check_left_magnitude = l_data.dtype.kind in "iu"
            common: type = np.float64
        else:
            common = np.int64
        self._left_numeric_dtype = common
        self._vector_build = _VectorEquiBuild(
            r_data.astype(common, copy=False), r_mask)
        self._strategy = "vector"

    def _python_build(self) -> _HashEquiBuild:
        """The Python-tier hash build (lazy, thread-safe): the probe path for
        multi-key joins, list-backed inputs, and morsels whose values left
        the exactly-representable float64 range."""
        build = self._hash_build
        if build is None:
            with self._build_lock:
                build = self._hash_build
                if build is None:
                    assert self._right is not None and self._pairs is not None
                    right_keys = [
                        self._right.resolve(ref.name, ref.table).value_list()
                        for _, ref in self._pairs
                    ]
                    build = _HashEquiBuild(right_keys)
                    self._hash_build = build
        return build

    # -- probe ----------------------------------------------------------- #
    def probe(self, morsel: Batch) -> tuple[Batch, Batch | None]:
        """Probe one left morsel; returns (match batch, deferred unmatched)."""
        left_indices, right_indices, unmatched = self._probe_indices(morsel)
        matches = self._gather_matches(morsel, left_indices, right_indices)
        if unmatched is None or len(unmatched) == 0:
            return matches, None
        return matches, self._gather_unmatched(morsel, unmatched)

    def _probe_indices(self, morsel: Batch
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        assert self._right is not None
        right_count = self._right.row_count
        if self._strategy == "cross":
            left_indices = np.repeat(
                np.arange(morsel.row_count, dtype=np.intp), right_count)
            right_indices = np.tile(
                np.arange(right_count, dtype=np.intp), morsel.row_count)
            return left_indices, right_indices, None
        if self._strategy == "mask":
            return self._mask_join_indices(morsel)
        if self._strategy == "vector":
            key = self._vector_probe_key(morsel)
            if key is not None:
                data, mask = key
                left_out, right_out, found = self._vector_build.probe(data, mask)
                unmatched = np.flatnonzero(~found) \
                    if self.join_type == "LEFT" else None
                return left_out, right_out, unmatched
        # Python-tier hash probe (multi-key, list-backed, or exact fallback)
        assert self._pairs is not None
        left_keys = [morsel.resolve(ref.name, ref.table).value_list()
                     for ref, _ in self._pairs]
        left_out, right_out, found = self._python_build().probe(
            left_keys, morsel.row_count)
        unmatched = np.flatnonzero(~found) if self.join_type == "LEFT" else None
        return left_out, right_out, unmatched

    def _vector_probe_key(self, morsel: Batch
                          ) -> tuple[np.ndarray, np.ndarray | None] | None:
        """This morsel's normalised probe key, or None to use the hash tier."""
        left_ref = self._pairs[0][0]
        parts = vector_parts(morsel.resolve(left_ref.name, left_ref.table).values)
        if parts is None:
            return None  # e.g. a flushed unmatched batch turned the column
            # into a Python list: probe it with exact Python equality
        data, mask, dictionary = parts
        if self._left_dict_map is not None:
            if dictionary is None:
                return None
            codes = data if mask is None else np.where(mask, 0, data)
            if len(self._left_dict_map):
                shared = self._left_dict_map[codes]
            else:
                shared = np.empty(0, dtype=np.int64)
            return shared, mask
        if data.dtype.kind not in "biuf" or dictionary is not None:
            return None
        if self._check_left_magnitude and _exceeds_float_exact(data):
            return None  # exact Python equality for >2^53 integers
        return data.astype(self._left_numeric_dtype, copy=False), mask

    def _mask_join_indices(self, morsel: Batch
                           ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Evaluate an arbitrary join condition once over the cross product."""
        right = self._right
        assert right is not None
        all_left = np.repeat(np.arange(morsel.row_count, dtype=np.intp),
                             right.row_count)
        all_right = np.tile(np.arange(right.row_count, dtype=np.intp),
                            morsel.row_count)
        combined = Batch(
            [BatchColumn(c.table, c.name, c.sql_type, take_values(c.values, all_left))
             for c in morsel.columns]
            + [BatchColumn(c.table, c.name, c.sql_type, take_values(c.values, all_right))
               for c in right.columns],
            row_count=morsel.row_count * right.row_count,
        )
        evaluator = ExpressionEvaluator(self.database, combined)
        mask = evaluator.evaluate_mask(self.condition)
        if isinstance(mask, np.ndarray):
            selected = np.flatnonzero(mask)
        else:
            selected = np.asarray(
                [i for i, keep in enumerate(mask) if keep], dtype=np.intp)
        left_indices = all_left[selected]
        right_indices = all_right[selected]
        if self.join_type != "LEFT":
            return left_indices, right_indices, None
        matched = np.zeros(morsel.row_count, dtype=np.bool_)
        matched[left_indices] = True
        return left_indices, right_indices, np.flatnonzero(~matched)

    # -- gather ----------------------------------------------------------- #
    def _gather_matches(self, morsel: Batch, left_indices: np.ndarray,
                        right_indices: np.ndarray) -> Batch:
        right = self._right
        assert right is not None
        columns = [
            BatchColumn(c.table, c.name, c.sql_type,
                        take_values(c.values, left_indices))
            for c in morsel.columns
        ] + [
            BatchColumn(c.table, c.name, c.sql_type,
                        take_values(c.values, right_indices))
            for c in right.columns
        ]
        return Batch(columns, row_count=len(left_indices))

    def _gather_unmatched(self, morsel: Batch, unmatched: np.ndarray) -> Batch:
        right = self._right
        assert right is not None
        count = len(unmatched)
        columns = [
            BatchColumn(c.table, c.name, c.sql_type,
                        take_values(c.values, unmatched))
            for c in morsel.columns
        ] + [
            BatchColumn(c.table, c.name, c.sql_type, [None] * count)
            for c in right.columns
        ]
        return Batch(columns, row_count=count)

    def describe(self) -> str:
        from .render import render_expression
        if self.join_type == "CROSS" or self.condition is None:
            return "HashJoin [CROSS]"
        return (f"HashJoin [{self.join_type} "
                f"ON {render_expression(self.condition)}]")


def _exceeds_float_exact(data: np.ndarray) -> bool:
    """Whether integer key values exceed float64's exact range (2^53)."""
    return bool(data.dtype.kind in "iu" and data.size
                and max(abs(int(data.max())), abs(int(data.min()))) > 2 ** 53)


class Project(PhysicalOperator):
    """SELECT-list evaluation over one morsel, producing result columns."""

    name = "Project"

    def __init__(self, database: "Database",
                 items: Sequence[ast.SelectItem]) -> None:
        super().__init__()
        self.database = database
        self.items = list(items)

    def project(self, batch: Batch) -> tuple[QueryResult, bool]:
        """Evaluate the select list; returns (morsel result, all-constant).

        ``all-constant`` is True when no item depended on the batch rows —
        the driver then emits a single one-row result for the whole query,
        matching the sequential engine's broadcast rule.
        """
        evaluator = ExpressionEvaluator(self.database, batch)
        names: list[str] = []
        results: list[EvalResult] = []
        for index, item in enumerate(self.items):
            if isinstance(item.expression, ast.Star):
                for column in batch.columns_for(item.expression.table):
                    names.append(column.name)
                    results.append(EvalResult(column.values, constant=False,
                                              sql_type=column.sql_type))
                continue
            result = evaluator.evaluate(item.expression)
            names.append(item.alias or default_output_name(item.expression, index))
            results.append(result)

        if not results:
            return QueryResult([]), True

        non_constant_lengths = [len(r) for r in results if not r.constant]
        if non_constant_lengths:
            output_length = max(non_constant_lengths)
        else:
            output_length = max(len(r) for r in results)
        columns = []
        for name, result in zip(names, results):
            values = result.broadcast(output_length)
            if isinstance(values, Vector):
                # keep the vector backing: no Python-object materialisation,
                # and the dictionary flows through to the wire encoder
                sql_type = result.sql_type or values.sql_type
                columns.append(ResultColumn.from_vector(name, sql_type, values))
                continue
            if is_vector(values) and result.sql_type is not None:
                columns.append(ResultColumn(name, result.sql_type, values))
                continue
            values = as_value_list(values)
            sql_type = result.sql_type or infer_column_type(values)
            columns.append(ResultColumn(name, sql_type, values))
        return QueryResult(columns), not non_constant_lengths

    def describe(self) -> str:
        labels = []
        for index, item in enumerate(self.items):
            if isinstance(item.expression, ast.Star):
                labels.append(f"{item.expression.table}.*"
                              if item.expression.table else "*")
            else:
                labels.append(item.alias
                              or default_output_name(item.expression, index))
        return f"Project [{', '.join(labels)}]"


def concat_result_pieces(pieces: Sequence[QueryResult]) -> QueryResult:
    """Concatenate per-morsel projection results into one QueryResult."""
    pieces = list(pieces)
    if len(pieces) == 1:
        return pieces[0]
    if not pieces:
        return QueryResult([])
    first = pieces[0]
    columns: list[ResultColumn] = []
    for index, column in enumerate(first.columns):
        parts = []
        for piece in pieces:
            part = piece.columns[index]
            backing = part.batch_values()
            parts.append(backing)
        merged = concat_values(parts)
        if isinstance(merged, Vector):
            columns.append(ResultColumn.from_vector(
                column.name, column.sql_type, merged))
        elif isinstance(merged, np.ndarray) and merged.dtype != object:
            columns.append(ResultColumn(column.name, column.sql_type, merged))
        else:
            values = as_value_list(merged)
            # re-infer like the sequential whole-column projection did: the
            # first morsel may have been all-NULL while a later one was not
            sql_type = column.sql_type
            if any(p.columns[index].sql_type != sql_type for p in pieces):
                sql_type = infer_column_type(values)
            columns.append(ResultColumn(column.name, sql_type, values))
    return QueryResult(columns)


class _AggregateState:
    """One morsel's aggregation state (the partial-merge path)."""

    __slots__ = ("batch", "keys", "rep_batch", "rep_count", "partials",
                 "inexact_keys")

    def __init__(self, batch: Batch, keys: list[tuple], rep_batch: Batch,
                 rep_count: int, partials: dict[int, PartialAggregate],
                 inexact_keys: bool) -> None:
        self.batch = batch
        self.keys = keys
        self.rep_batch = rep_batch
        self.rep_count = rep_count
        self.partials = partials
        self.inexact_keys = inexact_keys


class HashAggregate(PhysicalOperator):
    """GROUP BY / implicit aggregation.

    Three execution modes, chosen to keep results identical to the
    clause-at-a-time engine:

    * ``per_group`` — expressions call Python UDFs: one evaluator per group
      (the UDF is invoked once per group, an observable behaviour).
    * ``sequential`` — exotic aggregates (MEDIAN, variance family,
      GROUP_CONCAT, DISTINCT arguments): single-pass hash aggregation over
      the concatenated input, exactly the pre-pipeline code.
    * ``partial`` — decomposable aggregates: per-morsel local layouts and
      SUM/AVG/MIN/MAX/COUNT partials merged in morsel order (first-appearance
      group numbering is preserved across morsels).
    """

    name = "HashAggregate"

    def __init__(self, database: "Database", select: ast.Select) -> None:
        super().__init__()
        self.database = database
        self.select = select
        self.aggregate_nodes: list[ast.FunctionCall] = []
        for item in select.items:
            collect_aggregates(item.expression, self.aggregate_nodes)
        if select.having is not None:
            collect_aggregates(select.having, self.aggregate_nodes)
        if self._needs_per_group():
            self.mode = "per_group"
        elif self._partial_capable():
            self.mode = "partial"
        else:
            self.mode = "sequential"

    # -- mode selection --------------------------------------------------- #
    def _needs_per_group(self) -> bool:
        """True when grouped execution must run per group (UDF calls)."""
        expressions = [item.expression for item in self.select.items
                       if not isinstance(item.expression, ast.Star)]
        if self.select.having is not None:
            expressions.append(self.select.having)
        expressions.extend(self.select.group_by)
        return any(
            not is_aggregate(call.name) and not is_builtin_scalar(call.name)
            for expression in expressions
            for call in iter_function_calls(expression)
        )

    def _partial_capable(self) -> bool:
        for node in self.aggregate_nodes:
            if node.distinct or node.name.upper() not in PARTIAL_AGGREGATES:
                return False
            if not node.args and not aggregate_is_star(node):
                return False
        return True

    # -- partial path ------------------------------------------------------ #
    def morsel_state(self, batch: Batch) -> _AggregateState:
        """Compute one morsel's local groups and partial aggregate states."""
        evaluator = ExpressionEvaluator(self.database, batch)
        layout, rep_indices, key_columns = group_layout(
            self.select.group_by, batch, evaluator)
        if not self.select.group_by:
            keys: list[tuple] = [()]
        else:
            rep_list = list(rep_indices)
            key_values = [as_value_list(take_values(column, rep_list))
                          for column in key_columns]
            keys = [tuple(column[i] for column in key_values)
                    for i in range(len(rep_list))]
        partials: dict[int, PartialAggregate] = {}
        for node in self.aggregate_nodes:
            if id(node) in partials:
                continue
            values = aggregate_argument(node, evaluator, batch)
            partials[id(node)] = partial_aggregate(
                node.name, values, layout, is_star=aggregate_is_star(node))
        rep_list = list(rep_indices)
        return _AggregateState(
            batch, keys, batch.take(rep_list), len(rep_list), partials,
            inexact_keys=any(_has_inexact_keys(c) for c in key_columns))

    def finish_partial(self, states: Sequence[_AggregateState]) -> QueryResult:
        """Merge per-morsel states into the final grouped result."""
        states = list(states)
        if any(state.inexact_keys for state in states) or not states:
            # NaN grouping is representation-dependent: concatenate and run
            # the exact sequential path instead of merging by Python value
            return self.finish_sequential(
                concat_batches([state.batch for state in states]))
        key_to_gid: dict[tuple, int] = {}
        maps: list[list[int]] = []
        rep_refs: list[tuple[int, int]] = []
        for state_index, state in enumerate(states):
            local_to_global: list[int] = []
            for local_index, key in enumerate(state.keys):
                gid = key_to_gid.get(key)
                if gid is None:
                    gid = len(key_to_gid)
                    key_to_gid[key] = gid
                    rep_refs.append((state_index, local_index))
                local_to_global.append(gid)
            maps.append(local_to_global)
        n_groups = len(key_to_gid)

        if not self.select.group_by:
            # the implicit group has a representative row only in morsels
            # with at least one row; pick the first (sequential chose row 0)
            rep_refs = [(i, 0) for i, state in enumerate(states)
                        if state.rep_count][:1]

        aggregate_columns: dict[int, list[Any]] = {}
        for node in self.aggregate_nodes:
            if id(node) in aggregate_columns:
                continue
            aggregate_columns[id(node)] = merge_partial_aggregates(
                node.name,
                [(state.partials[id(node)], maps[i])
                 for i, state in enumerate(states)],
                n_groups)

        offsets = []
        total = 0
        for state in states:
            offsets.append(total)
            total += state.rep_count
        rep_indices = [offsets[state_index] + local_index
                       for state_index, local_index in rep_refs]
        rep_batch = concat_batches(
            [state.rep_batch for state in states]).take(rep_indices)
        return self._grouped_tail(rep_batch, aggregate_columns, n_groups)

    # -- sequential path --------------------------------------------------- #
    def finish_sequential(self, batch: Batch) -> QueryResult:
        if self.mode == "per_group":
            return self._execute_per_group(batch)
        evaluator = ExpressionEvaluator(self.database, batch)
        layout, rep_indices, _ = group_layout(
            self.select.group_by, batch, evaluator)
        aggregate_columns: dict[int, list[Any]] = {}
        for node in self.aggregate_nodes:
            if id(node) not in aggregate_columns:
                values = aggregate_argument(node, evaluator, batch)
                aggregate_columns[id(node)] = grouped_aggregate(
                    node.name, values, layout,
                    is_star=aggregate_is_star(node), distinct=node.distinct)
        rep_batch = batch.take(list(rep_indices))
        return self._grouped_tail(rep_batch, aggregate_columns, layout.n_groups)

    def _grouped_tail(self, rep_batch: Batch,
                      aggregate_columns: dict[int, list[Any]],
                      n_groups: int) -> QueryResult:
        """Evaluate select items over the representative rows (shared by the
        sequential and partial-merge paths)."""
        if n_groups > 0 and any(isinstance(item.expression, ast.Star)
                                for item in self.select.items):
            raise ExecutionError("'*' cannot be combined with GROUP BY")
        grouped_evaluator = GroupedExpressionEvaluator(
            self.database, rep_batch, aggregate_columns)

        keep: list[int] | None = None
        if self.select.having is not None:
            having = group_column(
                grouped_evaluator.evaluate(self.select.having), n_groups)
            keep = [g for g in range(n_groups)
                    if having[g] is True or having[g] == 1]

        columns: list[ResultColumn] = []
        for index, item in enumerate(self.select.items):
            values = group_column(grouped_evaluator.evaluate(item.expression),
                                  n_groups)
            if keep is not None:
                values = [values[g] for g in keep]
            name = item.alias or default_output_name(item.expression, index)
            columns.append(ResultColumn(name, infer_column_type(values), values))
        return QueryResult(columns)

    def _execute_per_group(self, batch: Batch) -> QueryResult:
        """Per-group execution: one evaluator per group (UDFs run per group)."""
        select = self.select
        evaluator = ExpressionEvaluator(self.database, batch)
        if select.group_by:
            key_columns = [
                as_value_list(evaluator.evaluate(expr).broadcast(batch.row_count))
                for expr in select.group_by
            ]
            groups: dict[tuple, list[int]] = {}
            for row_index in range(batch.row_count):
                key = tuple(column[row_index] for column in key_columns)
                groups.setdefault(key, []).append(row_index)
            group_indices = list(groups.values())
        else:
            group_indices = [list(range(batch.row_count))]

        names: list[str] = []
        first = True
        rows: list[list[Any]] = []
        for indices in group_indices:
            group_batch = batch.take(indices)
            group_evaluator = ExpressionEvaluator(self.database, group_batch,
                                                  allow_aggregates=True)
            if select.having is not None:
                having = group_evaluator.evaluate(select.having)
                keep = having.values[0] if len(having.values) else False
                if not (keep is True or keep == 1):
                    continue
            row: list[Any] = []
            for index, item in enumerate(select.items):
                if isinstance(item.expression, ast.Star):
                    raise ExecutionError("'*' cannot be combined with GROUP BY")
                value_result = group_evaluator.evaluate(item.expression)
                if len(value_result.values):
                    value = python_value(value_result.values[0])
                else:
                    value = None
                row.append(value)
                if first:
                    names.append(item.alias
                                 or default_output_name(item.expression, index))
            first = False
            rows.append(row)

        if not names:
            names = [
                item.alias or default_output_name(item.expression, index)
                for index, item in enumerate(select.items)
            ]
        columns = []
        for column_index, name in enumerate(names):
            values = [row[column_index] for row in rows]
            columns.append(ResultColumn(name, infer_column_type(values), values))
        return QueryResult(columns)

    def describe(self) -> str:
        n_keys = len(self.select.group_by)
        n_aggs = len({id(node) for node in self.aggregate_nodes})
        return (f"HashAggregate [keys={n_keys} aggregates={n_aggs} "
                f"mode={self.mode}]")


def _has_inexact_keys(values: Any) -> bool:
    """Whether a GROUP BY key column contains NaNs (merge-unsafe keys)."""
    if isinstance(values, Vector):
        if values.dictionary is not None or values.data.dtype.kind != "f":
            return False
        data = values.data if values.mask is None else values.data[~values.mask]
        return bool(np.isnan(data).any())
    if isinstance(values, np.ndarray) and values.dtype.kind == "f":
        return bool(np.isnan(values).any())
    return False


class Sort(PhysicalOperator):
    """ORDER BY: a pipeline breaker over the materialised result."""

    name = "Sort"

    def __init__(self, database: "Database", select: ast.Select) -> None:
        super().__init__()
        self.database = database
        self.select = select

    def apply(self, result: QueryResult, batch: Batch) -> QueryResult:
        return sort_result(self.database, self.select, result, batch)

    def describe(self) -> str:
        from .render import render_expression
        keys = ", ".join(
            render_expression(order.expression)
            + (" DESC" if order.descending else "")
            for order in self.select.order_by)
        return f"Sort [{keys}]"


class Distinct(PhysicalOperator):
    """DISTINCT: tuple dedup over the materialised result."""

    name = "Distinct"

    def apply(self, result: QueryResult) -> QueryResult:
        return distinct_result(result)

    def describe(self) -> str:
        return "Distinct"


class Limit(PhysicalOperator):
    """OFFSET / LIMIT row slicing (the pipeline's early-exit point)."""

    name = "Limit"

    def __init__(self, limit: int | None, offset: int | None) -> None:
        super().__init__()
        self.limit = limit
        self.offset = offset

    def apply(self, result: QueryResult) -> QueryResult:
        if self.offset is not None:
            result = slice_result(result, self.offset, None)
        if self.limit is not None:
            result = slice_result(result, 0, self.limit)
        return result

    @property
    def stop_after(self) -> int | None:
        """Projected rows after which execution may stop early."""
        if self.limit is None:
            return None
        return self.limit + (self.offset or 0)

    def describe(self) -> str:
        parts = []
        if self.limit is not None:
            parts.append(f"limit={self.limit}")
        if self.offset is not None:
            parts.append(f"offset={self.offset}")
        return f"Limit [{' '.join(parts)}]"
