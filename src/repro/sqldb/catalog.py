"""System catalog: registered functions and the ``sys.functions`` / ``sys.args``
meta tables.

devUDF discovers UDFs by querying the database's meta tables (paper §2.2,
Listing 1).  MonetDB stores only the *function body* in ``sys.functions.func``
and the parameters in ``sys.args``; this module reproduces that layout so that
the plugin-side catalog queries behave exactly as described.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import CatalogError
from .schema import ColumnDef, FunctionParameter, FunctionSignature
from .types import ColumnType, SQLType

#: Language codes as used by MonetDB's sys.functions.language column.
LANGUAGE_CODES = {"SQL": 2, "C": 3, "R": 5, "PYTHON": 6, "PYTHON_MAP": 7}

#: func_type code for regular functions and table-returning functions.
FUNCTION_TYPE_SCALAR = 1
FUNCTION_TYPE_TABLE = 5


@dataclass
class CatalogFunction:
    """A function as registered in the catalog."""

    oid: int
    signature: FunctionSignature
    is_builtin: bool = False

    @property
    def name(self) -> str:
        return self.signature.name

    @property
    def language(self) -> str:
        return self.signature.language


class FunctionCatalog:
    """Registry of user-defined functions.

    Functions are addressed case-insensitively by name (MonetDB allows
    overloading by arity; the devUDF workflow does not rely on it, so one
    name maps to one function here and re-creation requires OR REPLACE).
    """

    def __init__(self) -> None:
        self._functions: dict[str, CatalogFunction] = {}
        self._next_oid = 1000

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(self, signature: FunctionSignature, *, replace: bool = False,
                 is_builtin: bool = False) -> CatalogFunction:
        key = signature.name.lower()
        if key in self._functions and not replace:
            raise CatalogError(
                f"function {signature.name!r} already exists "
                "(use CREATE OR REPLACE FUNCTION)"
            )
        oid = self._functions[key].oid if key in self._functions else self._next_oid
        if key not in self._functions:
            self._next_oid += 1
        entry = CatalogFunction(oid=oid, signature=signature, is_builtin=is_builtin)
        self._functions[key] = entry
        return entry

    def drop(self, name: str, *, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._functions:
            if if_exists:
                return
            raise CatalogError(f"function {name!r} does not exist")
        del self._functions[key]

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def has(self, name: str) -> bool:
        return name.lower() in self._functions

    def get(self, name: str) -> CatalogFunction:
        try:
            return self._functions[name.lower()]
        except KeyError:
            raise CatalogError(f"function {name!r} does not exist") from None

    def names(self) -> list[str]:
        return sorted(entry.name for entry in self._functions.values())

    def functions(self) -> list[CatalogFunction]:
        return sorted(self._functions.values(), key=lambda entry: entry.oid)

    def python_functions(self) -> list[CatalogFunction]:
        return [f for f in self.functions() if f.language.upper().startswith("PYTHON")]

    def __len__(self) -> int:
        return len(self._functions)

    # ------------------------------------------------------------------ #
    # meta tables (sys.functions / sys.args), paper Listing 1
    # ------------------------------------------------------------------ #
    def sys_functions_rows(self) -> list[tuple]:
        """Rows of the ``sys.functions`` meta table.

        Columns: id, name, func, mod, language, type.  ``func`` holds the
        *body only*, wrapped in braces exactly as MonetDB renders it, which is
        what forces devUDF to synthesise the header on import.
        """
        rows = []
        for entry in self.functions():
            sig = entry.signature
            body = sig.body if sig.body.endswith("\n") or not sig.body else sig.body + "\n"
            func_text = "{\n" + body + "};" if sig.language.upper().startswith("PYTHON") else sig.body
            func_type = FUNCTION_TYPE_TABLE if sig.returns_table else FUNCTION_TYPE_SCALAR
            rows.append(
                (
                    entry.oid,
                    sig.name,
                    func_text,
                    "pyapi" if sig.language.upper().startswith("PYTHON") else "user",
                    LANGUAGE_CODES.get(sig.language.upper(), 0),
                    func_type,
                )
            )
        return rows

    def sys_args_rows(self) -> list[tuple]:
        """Rows of the ``sys.args`` meta table.

        Columns: id, func_id, name, type, number, inout.  Output columns of
        table-returning functions are listed with inout=0 (MonetDB's
        convention), input parameters with inout=1.
        """
        rows = []
        arg_id = 10000
        for entry in self.functions():
            sig = entry.signature
            if sig.returns_table:
                for number, col in enumerate(sig.return_columns):
                    rows.append((arg_id, entry.oid, col.name, str(col.sql_type), number, 0))
                    arg_id += 1
            elif sig.return_type is not None:
                rows.append((arg_id, entry.oid, "result", str(sig.return_type), 0, 0))
                arg_id += 1
            for param in sig.parameters:
                rows.append(
                    (arg_id, entry.oid, param.name, str(param.sql_type), param.number, 1)
                )
                arg_id += 1
        return rows


def make_signature(
    name: str,
    parameters: Iterable[tuple[str, SQLType]],
    *,
    returns_table: bool = False,
    return_columns: Iterable[tuple[str, SQLType]] = (),
    return_type: SQLType | None = None,
    language: str = "PYTHON",
    body: str = "",
) -> FunctionSignature:
    """Convenience constructor used by tests and the workload corpus."""
    params = [
        FunctionParameter(name=pname, sql_type=ptype, number=index)
        for index, (pname, ptype) in enumerate(parameters)
    ]
    ret_cols = [
        ColumnDef(cname, ColumnType(ctype)) for cname, ctype in return_columns
    ]
    return FunctionSignature(
        name=name,
        parameters=params,
        returns_table=returns_table,
        return_columns=ret_cols,
        return_type=return_type,
        language=language,
        body=body,
    )
