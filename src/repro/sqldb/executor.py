"""Statement execution: dispatch, DML, and the SELECT plan driver.

The executor turns parsed statements into :class:`QueryResult` objects.  It
preserves the MonetDB-like *semantics* the devUDF workflows need (meta
tables, Python UDF invocation with whole columns, loopback queries,
table-producing UDFs with subquery arguments).

Since the physical-operator refactor, ``SELECT`` execution lives in
:mod:`repro.sqldb.plan` (the planner and morsel driver) and
:mod:`repro.sqldb.operators` (Scan/Filter/HashJoin/HashAggregate/Project/
Sort/Distinct/Limit): this module shrank to the statement dispatcher, the
DML/DDL paths (unchanged), and the ``EXPLAIN`` statement that renders a
plan without running it.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from ..errors import ExecutionError
from . import ast_nodes as ast
from .catalog import FunctionCatalog
from .csvio import load_csv_into_table
from .expressions import Batch, ExpressionEvaluator
from .plan import Planner, PlanMetrics, SelectPlan
from .result import QueryResult, ResultColumn
from .schema import ColumnDef, FunctionSignature, TableSchema
from .storage import Storage, Table
from .types import ColumnType, SQLType, coerce_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import QueryContext
    from .database import Database


class Executor:
    """Executes parsed statements against a :class:`Database`."""

    def __init__(self, database: "Database") -> None:
        self.database = database
        self.planner = Planner(database)

    # ------------------------------------------------------------------ #
    # shortcuts
    # ------------------------------------------------------------------ #
    @property
    def storage(self) -> Storage:
        return self.database.storage

    @property
    def catalog(self) -> FunctionCatalog:
        return self.database.catalog

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def execute(self, statement: ast.Statement, *,
                context: "QueryContext | None" = None) -> QueryResult:
        if context is not None:
            # DML/DDL run whole-statement: one checkpoint up front so an
            # already-cancelled or expired statement never starts mutating
            context.check()
        result = self._dispatch(statement, context=context)
        # a successful mutation makes cached plans/results for the touched
        # tables stale; reads are a cheap no-op here
        self.database.note_mutation(statement)
        return result

    def _dispatch(self, statement: ast.Statement, *,
                  context: "QueryContext | None" = None) -> QueryResult:
        if isinstance(statement, ast.Select):
            return self.execute_select(statement, context=context)
        if isinstance(statement, ast.Explain):
            return self._execute_explain(statement, context=context)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.DropTable):
            # log before applying: the drop itself cannot fail once the
            # table is known to exist, so a WAL failure leaves memory and
            # disk agreeing (nothing happened)
            if self.storage.has_table(statement.name):
                self._log_wal({"op": "drop_table", "name": statement.name})
            self.storage.drop_table(statement.name, if_exists=statement.if_exists)
            return QueryResult.empty(statement_type="DROP TABLE")
        if isinstance(statement, ast.InsertValues):
            return self._execute_insert_values(statement)
        if isinstance(statement, ast.InsertSelect):
            return self._execute_insert_select(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.CreateFunction):
            return self._execute_create_function(statement)
        if isinstance(statement, ast.DropFunction):
            if self.catalog.has(statement.name):
                self._log_wal({"op": "drop_function", "name": statement.name})
            self.catalog.drop(statement.name, if_exists=statement.if_exists)
            self.database.udf_runtime.invalidate(statement.name)
            return QueryResult.empty(statement_type="DROP FUNCTION")
        if isinstance(statement, ast.CopyInto):
            return self._execute_copy(statement)
        if isinstance(statement, ast.Checkpoint):
            return self._execute_checkpoint()
        if isinstance(statement, ast.Verify):
            return self._execute_verify()
        if isinstance(statement, ast.BackupTo):
            return self._execute_backup(statement)
        if isinstance(statement, ast.ShowStats):
            return self._execute_show_stats()
        if isinstance(statement, ast.Prepare):
            self.database.register_prepared(statement)
            return QueryResult.empty(statement_type="PREPARE")
        if isinstance(statement, ast.ExecutePrepared):
            return self._execute_prepared(statement, context=context)
        if isinstance(statement, ast.Deallocate):
            found = self.database.deallocate(statement.name)
            if not found:
                raise ExecutionError(
                    f"no prepared statement named {statement.name!r}")
            return QueryResult.empty(statement_type="DEALLOCATE")
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    def _execute_prepared(self, statement: ast.ExecutePrepared, *,
                          context: "QueryContext | None" = None) -> QueryResult:
        """Bind EXECUTE arguments into the template and run it.

        A deterministic SELECT template consults the result cache keyed by
        (template text, bound values), so a hot EXECUTE skips planning *and*
        execution entirely.
        """
        prepared = self.database.resolve_prepared(statement.name)
        evaluator = ExpressionEvaluator(self.database, Batch.empty())
        values = [evaluator.evaluate(expr).values[0]
                  for expr in statement.args]
        bound = self.database.bind_prepared(prepared, values)
        cache = self.database.result_cache
        cache_key: str | None = None
        if cache is not None and isinstance(bound, ast.Select) \
                and prepared.profile.deterministic():
            cache_key = prepared.result_key(values)
            cached = cache.get(cache_key)
            if cached is not None:
                return cached
        result = self.execute(bound, context=context)
        if cache_key is not None:
            cache.put(cache_key, result, prepared.profile.tables)
        return result

    # ------------------------------------------------------------------ #
    # write-ahead logging (persistent databases only)
    # ------------------------------------------------------------------ #
    @property
    def _wal_enabled(self) -> bool:
        return self.database.persistence is not None

    def _log_wal(self, record: dict[str, Any]) -> None:
        self.database.wal_log(record)

    def _log_wal_group(self, records: Any) -> None:
        """Append one statement's records as an all-or-nothing WAL group."""
        self.database.wal_log_group(records)

    #: Rows per ``insert``/``update`` WAL record.  Bulk statements are
    #: logged as a *group* of bounded records rather than one unbounded one:
    #: the reader treats an over-large length field as tail corruption (so a
    #: single giant record could be silently discarded on recovery), and the
    #: group would otherwise hold a full Python copy of the load in memory
    #: while encoding.  Every record but the group's last carries
    #: ``"more": True``; recovery only applies a group once its final record
    #: is intact, so a crash inside the group cannot replay half a statement.
    _WAL_INSERT_CHUNK_ROWS = 8192

    def _insert_chunk_records(self, table: Table, start_row: int,
                              leader: dict[str, Any] | None):
        """Yield the chunked ``insert`` records for rows past ``start_row``.

        Values are read back from storage, so the WAL carries the coerced
        representation that replay re-coerces idempotently.  A generator so
        the group append holds at most one chunk in memory at a time.
        """
        total = table.row_count
        if leader is not None:
            yield {**leader, "more": True} if total > start_row else leader
        for chunk_start in range(start_row, total,
                                 self._WAL_INSERT_CHUNK_ROWS):
            chunk_stop = min(chunk_start + self._WAL_INSERT_CHUNK_ROWS, total)
            rows = [[column.values[index] for column in table.columns]
                    for index in range(chunk_start, chunk_stop)]
            record: dict[str, Any] = {"op": "insert", "table": table.name,
                                      "rows": rows}
            if chunk_stop < total:
                record["more"] = True
            yield record

    def _log_inserted(self, table: Table, start_row: int,
                      leader: dict[str, Any] | None = None) -> None:
        """Log the rows appended to ``table`` since ``start_row``.

        ``leader`` (a DDL record such as CTAS's ``create_table``) joins the
        same atomic group, so a crash can never recover the DDL effect
        without the rows that belong to the same statement.
        """
        if not self._wal_enabled:
            return
        if leader is None and table.row_count <= start_row:
            return
        self._log_wal_group(
            self._insert_chunk_records(table, start_row, leader))

    @staticmethod
    def _rollback_inserted(table: Table, start_row: int) -> None:
        """Undo rows appended since ``start_row`` (failed INSERT/COPY).

        Keeps the statement atomic: without this, a coercion error halfway
        through a multi-row insert — or a WAL append failure after the rows
        were applied — would leave rows that are visible in memory but
        absent from the WAL, so the live and recovered states of a
        persistent database would silently diverge.
        """
        for column in table.columns:
            if len(column.values) > start_row:
                del column.values[start_row:]
                column.mark_dirty()

    # ------------------------------------------------------------------ #
    # SELECT: planner + morsel driver
    # ------------------------------------------------------------------ #
    def execute_select(self, select: ast.Select, *,
                       context: "QueryContext | None" = None) -> QueryResult:
        return self.plan_select(select, context=context).execute()

    def plan_select(self, select: ast.Select, *,
                    context: "QueryContext | None" = None) -> SelectPlan:
        """Lower a SELECT into an executable physical plan."""
        trace = context.trace if context is not None else None
        if trace is None:
            plan = self.planner.plan(select)
        else:
            started = perf_counter()
            plan = self.planner.plan(select)
            trace.add("plan", started, perf_counter())
        plan.context = context
        return plan

    def _execute_explain(self, statement: ast.Explain, *,
                         context: "QueryContext | None" = None) -> QueryResult:
        plan = self.plan_select(statement.query, context=context)
        if not statement.analyze:
            # plain EXPLAIN never executes the query
            lines = plan.explain_lines()
            column = ResultColumn("plan", SQLType.STRING, lines)
            return QueryResult([column], statement_type="EXPLAIN")
        plan.plan_metrics = PlanMetrics()
        try:
            started = perf_counter()
            plan.execute()
            elapsed = perf_counter() - started
            lines = plan.analyze_lines(elapsed=elapsed)
        finally:
            plan.plan_metrics = None
        column = ResultColumn("plan", SQLType.STRING, lines)
        return QueryResult([column], statement_type="EXPLAIN ANALYZE")

    # ------------------------------------------------------------------ #
    # DDL / DML
    # ------------------------------------------------------------------ #
    def _execute_create_table(self, statement: ast.CreateTable) -> QueryResult:
        if statement.as_select is not None:
            result = self.execute_select(statement.as_select)
            columns = [
                ColumnDef(col.name, ColumnType(col.sql_type)) for col in result.columns
            ]
            created = not self.storage.has_table(statement.name)
            table = self.storage.create_table(
                TableSchema(statement.name, columns), if_not_exists=statement.if_not_exists
            )
            before = table.row_count
            try:
                for row in result.rows():
                    table.insert_row(row)
                # the create_table record leads the insert group: recovery
                # applies DDL and rows of one CTAS all-or-nothing
                self._log_inserted(
                    table, before,
                    leader=self._create_table_record(table) if created else None)
            except Exception:
                self._rollback_inserted(table, before)
                if created:
                    self.storage.drop_table(table.name, if_exists=True)
                raise
            return QueryResult.empty(affected_rows=result.row_count,
                                     statement_type="CREATE TABLE AS")
        # TableSchema construction already validated the column list, so
        # creating a known-missing table cannot fail: log before applying
        # and a WAL failure leaves memory and disk agreeing (nothing happened)
        schema = TableSchema(statement.name, list(statement.columns))
        if self._wal_enabled and not self.storage.has_table(statement.name):
            from .persist.records import schema_to_record

            self._log_wal({"op": "create_table",
                           "schema": schema_to_record(schema)})
        self.storage.create_table(schema, if_not_exists=statement.if_not_exists)
        return QueryResult.empty(statement_type="CREATE TABLE")

    def _create_table_record(self, table: Table) -> dict[str, Any]:
        from .persist.records import schema_to_record

        return {"op": "create_table", "schema": schema_to_record(table.schema)}

    def _insert_aligned_rows(self, table: Table, columns: Sequence[str],
                             rows: Any) -> int:
        """Apply + WAL-log one insert statement atomically.

        Any failure — a bad value mid-loop or the WAL append itself — rolls
        the in-memory rows back, so live state never diverges from what a
        crash would recover.
        """
        inserted = 0
        before = table.row_count
        try:
            for row in rows:
                full_row = self._align_insert_row(table, columns, row)
                table.insert_row(full_row)
                inserted += 1
            self._log_inserted(table, before)
        except Exception:
            self._rollback_inserted(table, before)
            raise
        return inserted

    def _execute_insert_values(self, statement: ast.InsertValues) -> QueryResult:
        table = self.storage.table(statement.table)
        evaluator = ExpressionEvaluator(self.database, Batch.empty())
        rows = ([evaluator.evaluate(expr).values[0] for expr in row_exprs]
                for row_exprs in statement.rows)
        inserted = self._insert_aligned_rows(table, statement.columns, rows)
        return QueryResult.empty(affected_rows=inserted, statement_type="INSERT")

    def _execute_insert_select(self, statement: ast.InsertSelect) -> QueryResult:
        table = self.storage.table(statement.table)
        result = self.execute_select(statement.query)
        inserted = self._insert_aligned_rows(
            table, statement.columns, (list(row) for row in result.rows()))
        return QueryResult.empty(affected_rows=inserted, statement_type="INSERT")

    @staticmethod
    def _align_insert_row(table: Table, columns: Sequence[str],
                          values: Sequence[Any]) -> list[Any]:
        if not columns:
            if len(values) != len(table.columns):
                raise ExecutionError(
                    f"INSERT into {table.name!r}: expected {len(table.columns)} values, "
                    f"got {len(values)}"
                )
            return list(values)
        if len(columns) != len(values):
            raise ExecutionError("INSERT column list and VALUES length mismatch")
        row: list[Any] = [None] * len(table.columns)
        for column_name, value in zip(columns, values):
            row[table.schema.column_index(column_name)] = value
        return row

    def _execute_delete(self, statement: ast.Delete) -> QueryResult:
        table = self.storage.table(statement.table)
        if statement.where is None:
            removed = table.row_count
            # log before applying: truncate cannot fail, so a WAL failure
            # leaves memory and disk agreeing (nothing happened)
            if removed:
                self._log_wal({"op": "truncate", "table": table.name})
            table.truncate()
            return QueryResult.empty(affected_rows=removed, statement_type="DELETE")
        batch = self._batch_from_table(table, alias=table.name)
        evaluator = ExpressionEvaluator(self.database, batch)
        mask = evaluator.evaluate_mask(statement.where)
        if isinstance(mask, np.ndarray):
            keep: Sequence[bool] = ~mask
        else:
            keep = [not selected for selected in mask]
        count_before = table.row_count
        removed_count = count_before - int(np.count_nonzero(
            np.asarray(keep, dtype=bool)))
        # log before applying — delete_rows on a length-validated mask
        # cannot fail
        if removed_count and self._wal_enabled:
            from .persist.records import pack_mask

            self._log_wal({"op": "delete", "table": table.name,
                           "keep": pack_mask(keep), "count": count_before})
        removed = table.delete_rows(keep)
        return QueryResult.empty(affected_rows=removed, statement_type="DELETE")

    def _execute_update(self, statement: ast.Update) -> QueryResult:
        table = self.storage.table(statement.table)
        batch = self._batch_from_table(table, alias=table.name)
        evaluator = ExpressionEvaluator(self.database, batch)
        if statement.where is not None:
            mask = evaluator.evaluate_mask(statement.where)
        else:
            mask = [True] * table.row_count
        assignments: dict[str, list[Any]] = {}
        for column_name, expression in statement.assignments:
            result = evaluator.evaluate(expression)
            assignments[column_name] = result.broadcast(table.row_count)
        # log before applying: the records carry the same coerced values
        # update_rows will store (coercion is deterministic, so pre-coercion
        # succeeding means the apply cannot fail), and a WAL failure
        # therefore leaves memory and disk agreeing (nothing happened)
        if self._wal_enabled:
            self._log_wal_group(self._update_records(table, mask, assignments))
        updated = table.update_rows(mask, assignments)
        return QueryResult.empty(affected_rows=updated, statement_type="UPDATE")

    def _update_records(self, table: Table, mask: Sequence[bool],
                        assignments: dict[str, list[Any]]):
        """Yield chunked ``update`` records: (selected indices, coerced values).

        Only the selected positions travel — an UPDATE of 1 row in a
        million-row table logs one value per assigned column, not a column
        image — and wide updates split into bounded ``more``-flagged chunks
        like bulk inserts (a generator, so the group append holds one
        chunk's coerced copy at a time).
        """
        selected = np.flatnonzero(np.asarray(mask, dtype=bool)).tolist()
        sql_types = {name: table.column(name).sql_type for name in assignments}
        count = table.row_count
        for chunk_start in range(0, len(selected),
                                 self._WAL_INSERT_CHUNK_ROWS):
            chunk = selected[chunk_start:chunk_start
                             + self._WAL_INSERT_CHUNK_ROWS]
            columns = {
                name: [coerce_value(values[index], sql_types[name])
                       for index in chunk]
                for name, values in assignments.items()
            }
            record: dict[str, Any] = {"op": "update", "table": table.name,
                                      "count": count, "indices": chunk,
                                      "columns": columns}
            if chunk_start + self._WAL_INSERT_CHUNK_ROWS < len(selected):
                record["more"] = True
            yield record

    def _execute_create_function(self, statement: ast.CreateFunction) -> QueryResult:
        signature = FunctionSignature(
            name=statement.name,
            parameters=list(statement.parameters),
            returns_table=statement.returns_table,
            return_columns=list(statement.return_columns),
            return_type=statement.return_type,
            language=statement.language,
            body=statement.body,
        )
        # one implementation of the duplicate-check / log-before-apply /
        # register / invalidate sequence lives on the database facade
        self.database.create_function(signature, replace=statement.or_replace)
        return QueryResult.empty(statement_type="CREATE FUNCTION")

    def _execute_copy(self, statement: ast.CopyInto) -> QueryResult:
        table = self.storage.table(statement.table)
        before = table.row_count
        try:
            loaded = load_csv_into_table(table, statement.path,
                                         delimiter=statement.delimiter,
                                         header=statement.header)
            # the WAL carries the loaded rows themselves, not the CSV path:
            # the file may be gone (or different) when recovery replays
            self._log_inserted(table, before)
        except Exception:
            self._rollback_inserted(table, before)
            raise
        return QueryResult.empty(affected_rows=loaded, statement_type="COPY INTO")

    def _execute_checkpoint(self) -> QueryResult:
        stats = self.database.checkpoint()
        columns = [
            ResultColumn("generation", SQLType.BIGINT, [stats.generation]),
            ResultColumn("tables", SQLType.BIGINT, [stats.tables]),
            ResultColumn("segments", SQLType.BIGINT, [stats.segments]),
            ResultColumn("rows", SQLType.BIGINT, [stats.rows]),
            ResultColumn("file_bytes", SQLType.BIGINT, [stats.file_bytes]),
            ResultColumn("wal_records_truncated", SQLType.BIGINT,
                         [stats.wal_records_truncated]),
        ]
        return QueryResult(columns, statement_type="CHECKPOINT")

    def _execute_verify(self) -> QueryResult:
        report = self.database.verify()
        objects: list[Any] = []
        row_counts: list[Any] = []
        segments: list[Any] = []
        corrupt: list[Any] = []
        status: list[Any] = []
        detail: list[Any] = []

        def _row(name: str, rows: Any, segs: Any, bad: int,
                 errors: list[str]) -> None:
            objects.append(name)
            row_counts.append(rows)
            segments.append(segs)
            corrupt.append(bad)
            status.append("ok" if not bad and not errors else "corrupt")
            detail.append("; ".join(errors) if errors else None)

        image = report.image
        if image.error is not None:
            _row("(file)", None, None, 1, [image.error])
        for entry in image.tables:
            _row(entry.name, entry.rows, entry.segments,
                 entry.corrupt_segments, entry.errors)
        wal_errors = [report.wal_error] if report.wal_error else []
        if report.wal_torn:
            wal_errors.append("torn tail (will be discarded on recovery)")
        _row("(wal)", report.wal_records, None, len(wal_errors), wal_errors)
        columns = [
            ResultColumn("object", SQLType.STRING, objects),
            ResultColumn("rows", SQLType.BIGINT, row_counts),
            ResultColumn("segments", SQLType.BIGINT, segments),
            ResultColumn("corrupt", SQLType.BIGINT, corrupt),
            ResultColumn("status", SQLType.STRING, status),
            ResultColumn("detail", SQLType.STRING, detail),
        ]
        return QueryResult(columns, statement_type="VERIFY")

    def _execute_backup(self, statement: ast.BackupTo) -> QueryResult:
        stats = self.database.backup(statement.path)
        columns = [
            ResultColumn("path", SQLType.STRING, [stats.path]),
            ResultColumn("generation", SQLType.BIGINT, [stats.generation]),
            ResultColumn("tables", SQLType.BIGINT, [stats.tables]),
            ResultColumn("segments", SQLType.BIGINT, [stats.segments]),
            ResultColumn("rows", SQLType.BIGINT, [stats.rows]),
            ResultColumn("file_bytes", SQLType.BIGINT, [stats.file_bytes]),
            ResultColumn("seconds", SQLType.DOUBLE, [stats.seconds]),
        ]
        return QueryResult(columns, statement_type="BACKUP")

    def _execute_show_stats(self) -> QueryResult:
        snapshot = self.database.stats_snapshot()
        names = sorted(snapshot)
        columns = [
            ResultColumn("name", SQLType.STRING, names),
            ResultColumn("value", SQLType.BIGINT,
                         [snapshot[name] for name in names]),
        ]
        return QueryResult(columns, statement_type="SHOW STATS")

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _batch_from_table(table: Table, *, alias: str) -> Batch:
        # near-zero-copy scan: share the storage layer's cached (read-only)
        # arrays/vectors instead of copying every column per query
        table.check_readable()
        from .expressions import BatchColumn

        columns = [
            BatchColumn(alias, column.name, column.sql_type,
                        column.scan_values())
            for column in table.columns
        ]
        return Batch(columns, row_count=table.row_count)
