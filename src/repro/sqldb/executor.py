"""Statement execution: the vectorised operator-at-a-time query engine.

The executor turns parsed statements into :class:`QueryResult` objects.  It
preserves the MonetDB-like *semantics* the devUDF workflows need (meta tables,
Python UDF invocation with whole columns, loopback queries, table-producing
UDFs with subquery arguments) and, since the vectorisation pass, also the
MonetDB-like *shape* of execution: scans hand out the storage layer's cached
numpy arrays (near-zero-copy), equi-joins run as build/probe hash joins with
vectorised gathers, non-equi joins evaluate their condition once over the
materialised cross product, GROUP BY is single-pass hash aggregation with
``reduceat`` kernels, and filtering/ordering use boolean-mask selection and
``np.lexsort``.  Per-row fallbacks remain only where Python-object semantics
require them (NULL-bearing columns, strings, and per-group UDF aggregates).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Sequence

import numpy as np

from ..errors import CatalogError, ExecutionError
from . import ast_nodes as ast
from .aggregates import GroupLayout, grouped_aggregate, is_aggregate
from .catalog import FunctionCatalog
from .csvio import load_csv_into_table
from .expressions import (
    Batch,
    BatchColumn,
    EvalResult,
    ExpressionEvaluator,
    as_value_list,
    child_expressions,
    default_output_name,
    expression_contains_aggregate,
    is_vector,
    iter_function_calls,
    take_values,
)
from .functions import is_builtin_scalar
from .result import QueryResult, ResultColumn
from .schema import ColumnDef, FunctionSignature, TableSchema
from .storage import Storage, Table
from .types import ColumnType, SQLType, infer_sql_type, python_value
from .udf import convert_table_result
from .vector import NULL_CODE, Vector, remap_to_shared_dictionary, vector_parts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .database import Database


#: Schemas of the virtual meta tables exposed by the catalog (Listing 1).
_SYS_FUNCTIONS_SCHEMA = [
    ("id", SQLType.INTEGER),
    ("name", SQLType.STRING),
    ("func", SQLType.STRING),
    ("mod", SQLType.STRING),
    ("language", SQLType.INTEGER),
    ("type", SQLType.INTEGER),
]

_SYS_ARGS_SCHEMA = [
    ("id", SQLType.INTEGER),
    ("func_id", SQLType.INTEGER),
    ("name", SQLType.STRING),
    ("type", SQLType.STRING),
    ("number", SQLType.INTEGER),
    ("inout", SQLType.INTEGER),
]

_SYS_TABLES_SCHEMA = [
    ("id", SQLType.INTEGER),
    ("name", SQLType.STRING),
    ("row_count", SQLType.BIGINT),
]


class Executor:
    """Executes parsed statements against a :class:`Database`."""

    def __init__(self, database: "Database") -> None:
        self.database = database

    # ------------------------------------------------------------------ #
    # shortcuts
    # ------------------------------------------------------------------ #
    @property
    def storage(self) -> Storage:
        return self.database.storage

    @property
    def catalog(self) -> FunctionCatalog:
        return self.database.catalog

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def execute(self, statement: ast.Statement) -> QueryResult:
        if isinstance(statement, ast.Select):
            return self.execute_select(statement)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.DropTable):
            self.storage.drop_table(statement.name, if_exists=statement.if_exists)
            return QueryResult.empty(statement_type="DROP TABLE")
        if isinstance(statement, ast.InsertValues):
            return self._execute_insert_values(statement)
        if isinstance(statement, ast.InsertSelect):
            return self._execute_insert_select(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.CreateFunction):
            return self._execute_create_function(statement)
        if isinstance(statement, ast.DropFunction):
            self.catalog.drop(statement.name, if_exists=statement.if_exists)
            self.database.udf_runtime.invalidate(statement.name)
            return QueryResult.empty(statement_type="DROP FUNCTION")
        if isinstance(statement, ast.CopyInto):
            return self._execute_copy(statement)
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    # ------------------------------------------------------------------ #
    # DDL / DML
    # ------------------------------------------------------------------ #
    def _execute_create_table(self, statement: ast.CreateTable) -> QueryResult:
        if statement.as_select is not None:
            result = self.execute_select(statement.as_select)
            columns = [
                ColumnDef(col.name, ColumnType(col.sql_type)) for col in result.columns
            ]
            table = self.storage.create_table(
                TableSchema(statement.name, columns), if_not_exists=statement.if_not_exists
            )
            for row in result.rows():
                table.insert_row(row)
            return QueryResult.empty(affected_rows=result.row_count,
                                     statement_type="CREATE TABLE AS")
        schema = TableSchema(statement.name, list(statement.columns))
        self.storage.create_table(schema, if_not_exists=statement.if_not_exists)
        return QueryResult.empty(statement_type="CREATE TABLE")

    def _execute_insert_values(self, statement: ast.InsertValues) -> QueryResult:
        table = self.storage.table(statement.table)
        evaluator = ExpressionEvaluator(self.database, Batch.empty())
        inserted = 0
        for row_exprs in statement.rows:
            values = [evaluator.evaluate(expr).values[0] for expr in row_exprs]
            full_row = self._align_insert_row(table, statement.columns, values)
            table.insert_row(full_row)
            inserted += 1
        return QueryResult.empty(affected_rows=inserted, statement_type="INSERT")

    def _execute_insert_select(self, statement: ast.InsertSelect) -> QueryResult:
        table = self.storage.table(statement.table)
        result = self.execute_select(statement.query)
        inserted = 0
        for row in result.rows():
            full_row = self._align_insert_row(table, statement.columns, list(row))
            table.insert_row(full_row)
            inserted += 1
        return QueryResult.empty(affected_rows=inserted, statement_type="INSERT")

    @staticmethod
    def _align_insert_row(table: Table, columns: Sequence[str],
                          values: Sequence[Any]) -> list[Any]:
        if not columns:
            if len(values) != len(table.columns):
                raise ExecutionError(
                    f"INSERT into {table.name!r}: expected {len(table.columns)} values, "
                    f"got {len(values)}"
                )
            return list(values)
        if len(columns) != len(values):
            raise ExecutionError("INSERT column list and VALUES length mismatch")
        row: list[Any] = [None] * len(table.columns)
        for column_name, value in zip(columns, values):
            row[table.schema.column_index(column_name)] = value
        return row

    def _execute_delete(self, statement: ast.Delete) -> QueryResult:
        table = self.storage.table(statement.table)
        if statement.where is None:
            removed = table.row_count
            table.truncate()
            return QueryResult.empty(affected_rows=removed, statement_type="DELETE")
        batch = self._batch_from_table(table, alias=table.name)
        evaluator = ExpressionEvaluator(self.database, batch)
        mask = evaluator.evaluate_mask(statement.where)
        if isinstance(mask, np.ndarray):
            keep: Sequence[bool] = ~mask
        else:
            keep = [not selected for selected in mask]
        removed = table.delete_rows(keep)
        return QueryResult.empty(affected_rows=removed, statement_type="DELETE")

    def _execute_update(self, statement: ast.Update) -> QueryResult:
        table = self.storage.table(statement.table)
        batch = self._batch_from_table(table, alias=table.name)
        evaluator = ExpressionEvaluator(self.database, batch)
        if statement.where is not None:
            mask = evaluator.evaluate_mask(statement.where)
        else:
            mask = [True] * table.row_count
        assignments: dict[str, list[Any]] = {}
        for column_name, expression in statement.assignments:
            result = evaluator.evaluate(expression)
            assignments[column_name] = result.broadcast(table.row_count)
        updated = table.update_rows(mask, assignments)
        return QueryResult.empty(affected_rows=updated, statement_type="UPDATE")

    def _execute_create_function(self, statement: ast.CreateFunction) -> QueryResult:
        signature = FunctionSignature(
            name=statement.name,
            parameters=list(statement.parameters),
            returns_table=statement.returns_table,
            return_columns=list(statement.return_columns),
            return_type=statement.return_type,
            language=statement.language,
            body=statement.body,
        )
        self.catalog.register(signature, replace=statement.or_replace)
        self.database.udf_runtime.invalidate(statement.name)
        return QueryResult.empty(statement_type="CREATE FUNCTION")

    def _execute_copy(self, statement: ast.CopyInto) -> QueryResult:
        table = self.storage.table(statement.table)
        loaded = load_csv_into_table(table, statement.path,
                                     delimiter=statement.delimiter,
                                     header=statement.header)
        return QueryResult.empty(affected_rows=loaded, statement_type="COPY INTO")

    # ------------------------------------------------------------------ #
    # SELECT
    # ------------------------------------------------------------------ #
    def execute_select(self, select: ast.Select) -> QueryResult:
        batch = self._resolve_from(select.from_clause)

        if select.where is not None:
            evaluator = ExpressionEvaluator(self.database, batch)
            batch = batch.filter(evaluator.evaluate_mask(select.where))

        has_aggregates = any(
            expression_contains_aggregate(item.expression)
            for item in select.items
            if not isinstance(item.expression, ast.Star)
        ) or (select.having is not None and expression_contains_aggregate(select.having))

        if select.group_by or has_aggregates:
            result = self._execute_grouped(select, batch)
        else:
            result = self._execute_projection(select, batch)

        if select.distinct:
            result = _distinct(result)
        if select.order_by:
            result = self._apply_order_by(select, result, batch)
        if select.offset is not None:
            result = _slice_result(result, select.offset, None)
        if select.limit is not None:
            result = _slice_result(result, 0, select.limit)
        return result

    # -- projection -------------------------------------------------------- #
    def _execute_projection(self, select: ast.Select, batch: Batch) -> QueryResult:
        evaluator = ExpressionEvaluator(self.database, batch)
        names: list[str] = []
        results: list[EvalResult] = []
        for index, item in enumerate(select.items):
            if isinstance(item.expression, ast.Star):
                for column in batch.columns_for(item.expression.table):
                    names.append(column.name)
                    results.append(EvalResult(column.values, constant=False,
                                              sql_type=column.sql_type))
                continue
            result = evaluator.evaluate(item.expression)
            names.append(item.alias or default_output_name(item.expression, index))
            results.append(result)

        if not results:
            return QueryResult([])

        non_constant_lengths = [len(r) for r in results if not r.constant]
        if non_constant_lengths:
            output_length = max(non_constant_lengths)
        else:
            output_length = max(len(r) for r in results)
        columns = []
        for name, result in zip(names, results):
            values = result.broadcast(output_length)
            if isinstance(values, Vector):
                # keep the vector backing: no Python-object materialisation,
                # and the dictionary flows through to the wire encoder
                sql_type = result.sql_type or values.sql_type
                columns.append(ResultColumn.from_vector(name, sql_type, values))
                continue
            if is_vector(values) and result.sql_type is not None:
                columns.append(ResultColumn(name, result.sql_type, values))
                continue
            values = as_value_list(values)
            sql_type = result.sql_type or _infer_column_type(values)
            columns.append(ResultColumn(name, sql_type, values))
        return QueryResult(columns)

    # -- grouping ----------------------------------------------------------- #
    def _execute_grouped(self, select: ast.Select, batch: Batch) -> QueryResult:
        """GROUP BY / implicit aggregation via single-pass hash aggregation.

        Aggregate sub-expressions are computed once over the whole batch with
        per-group numpy kernels; the select items are then evaluated over one
        representative row per group with the aggregates substituted in.
        Queries whose expressions call Python UDFs keep the original
        per-group execution, which invokes the UDF once per group.
        """
        if self._grouped_needs_per_group(select):
            return self._execute_grouped_per_group(select, batch)

        evaluator = ExpressionEvaluator(self.database, batch)
        layout, rep_indices = self._group_layout(select, batch, evaluator)
        n_groups = layout.n_groups

        if n_groups > 0 and any(isinstance(item.expression, ast.Star)
                                for item in select.items):
            raise ExecutionError("'*' cannot be combined with GROUP BY")

        aggregate_columns: dict[int, list[Any]] = {}
        aggregate_nodes: list[ast.FunctionCall] = []
        for item in select.items:
            _collect_aggregates(item.expression, aggregate_nodes)
        if select.having is not None:
            _collect_aggregates(select.having, aggregate_nodes)
        for node in aggregate_nodes:
            if id(node) not in aggregate_columns:
                aggregate_columns[id(node)] = self._grouped_aggregate_column(
                    node, evaluator, batch, layout)

        rep_batch = batch.take(rep_indices)
        grouped_evaluator = _GroupedExpressionEvaluator(
            self.database, rep_batch, aggregate_columns)

        keep: list[int] | None = None
        if select.having is not None:
            having = _group_column(grouped_evaluator.evaluate(select.having), n_groups)
            keep = [g for g in range(n_groups)
                    if having[g] is True or having[g] == 1]

        names: list[str] = []
        columns: list[ResultColumn] = []
        for index, item in enumerate(select.items):
            values = _group_column(grouped_evaluator.evaluate(item.expression),
                                   n_groups)
            if keep is not None:
                values = [values[g] for g in keep]
            name = item.alias or default_output_name(item.expression, index)
            names.append(name)
            columns.append(ResultColumn(name, _infer_column_type(values), values))
        return QueryResult(columns)

    def _group_layout(self, select: ast.Select, batch: Batch,
                      evaluator: ExpressionEvaluator
                      ) -> tuple[GroupLayout, Sequence[int]]:
        """Factorise the GROUP BY keys into (layout, first-row-per-group).

        Groups are numbered in first-appearance order, matching the ordering
        the per-group dict-based execution produced.
        """
        row_count = batch.row_count
        if not select.group_by:
            # implicit aggregation: one group spanning the whole batch (even
            # when it is empty, so aggregates still produce a row)
            gids = np.zeros(row_count, dtype=np.int64)
            return GroupLayout(gids, 1), ([0] if row_count else [])

        key_columns = [
            evaluator.evaluate(expr).broadcast(row_count)
            for expr in select.group_by
        ]
        if len(key_columns) == 1 and row_count > 0:
            sort_key = _grouping_key_array(key_columns[0])
            if sort_key is not None:
                # one stable key sort yields the factorisation AND the
                # contiguous cluster geometry the reduceat kernels need
                return _layout_from_sort_key(sort_key, row_count)

        columns = [as_value_list(column) for column in key_columns]
        mapping: dict[tuple, int] = {}
        gids = np.empty(row_count, dtype=np.int64)
        rep_indices: list[int] = []
        for row_index, key in enumerate(zip(*columns)):
            gid = mapping.get(key)
            if gid is None:
                gid = len(mapping)
                mapping[key] = gid
                rep_indices.append(row_index)
            gids[row_index] = gid
        return GroupLayout(gids, len(mapping)), rep_indices

    def _grouped_aggregate_column(self, node: ast.FunctionCall,
                                  evaluator: ExpressionEvaluator, batch: Batch,
                                  layout: GroupLayout) -> list[Any]:
        """Evaluate one aggregate call per group (vectorised where possible)."""
        is_star = len(node.args) == 1 and isinstance(node.args[0], ast.Star)
        if is_star or not node.args:
            values: Sequence[Any] = (
                [1] * batch.row_count if node.distinct else [])
        else:
            values = evaluator.evaluate(node.args[0]).broadcast(batch.row_count)
        return grouped_aggregate(node.name, values, layout,
                                 is_star=is_star, distinct=node.distinct)

    def _grouped_needs_per_group(self, select: ast.Select) -> bool:
        """True when grouped execution must run per group (UDF calls)."""
        expressions = [item.expression for item in select.items
                       if not isinstance(item.expression, ast.Star)]
        if select.having is not None:
            expressions.append(select.having)
        expressions.extend(select.group_by)
        return any(
            not is_aggregate(call.name) and not is_builtin_scalar(call.name)
            for expression in expressions
            for call in iter_function_calls(expression)
        )

    def _execute_grouped_per_group(self, select: ast.Select,
                                   batch: Batch) -> QueryResult:
        """Per-group execution: one evaluator per group (UDFs run per group)."""
        evaluator = ExpressionEvaluator(self.database, batch)
        if select.group_by:
            key_columns = [
                as_value_list(evaluator.evaluate(expr).broadcast(batch.row_count))
                for expr in select.group_by
            ]
            groups: dict[tuple, list[int]] = {}
            for row_index in range(batch.row_count):
                key = tuple(column[row_index] for column in key_columns)
                groups.setdefault(key, []).append(row_index)
            group_indices = list(groups.values())
        else:
            group_indices = [list(range(batch.row_count))]

        names: list[str] = []
        first = True
        rows: list[list[Any]] = []
        for indices in group_indices:
            group_batch = batch.take(indices)
            group_evaluator = ExpressionEvaluator(self.database, group_batch,
                                                  allow_aggregates=True)
            if select.having is not None:
                having = group_evaluator.evaluate(select.having)
                keep = having.values[0] if len(having.values) else False
                if not (keep is True or keep == 1):
                    continue
            row: list[Any] = []
            for index, item in enumerate(select.items):
                if isinstance(item.expression, ast.Star):
                    raise ExecutionError("'*' cannot be combined with GROUP BY")
                value_result = group_evaluator.evaluate(item.expression)
                if len(value_result.values):
                    value = python_value(value_result.values[0])
                else:
                    value = None
                row.append(value)
                if first:
                    names.append(item.alias or default_output_name(item.expression, index))
            first = False
            rows.append(row)

        if not names:
            names = [
                item.alias or default_output_name(item.expression, index)
                for index, item in enumerate(select.items)
            ]
        columns = []
        for column_index, name in enumerate(names):
            values = [row[column_index] for row in rows]
            columns.append(ResultColumn(name, _infer_column_type(values), values))
        return QueryResult(columns)

    # -- ORDER BY ------------------------------------------------------------ #
    def _apply_order_by(self, select: ast.Select, result: QueryResult,
                        batch: Batch) -> QueryResult:
        row_count = result.row_count
        keys: list[list[Any]] = []
        for order_item in select.order_by:
            values = self._order_key_values(order_item.expression, result, batch, row_count)
            keys.append(values)
        descending = [order_item.descending for order_item in select.order_by]

        indices = _sorted_indices(keys, descending, row_count)
        columns = [
            ResultColumn(col.name, col.sql_type, [col.values[i] for i in indices])
            for col in result.columns
        ]
        return QueryResult(columns)

    def _order_key_values(self, expression: ast.Expression, result: QueryResult,
                          batch: Batch, row_count: int) -> list[Any]:
        if isinstance(expression, ast.ColumnRef) and expression.table is None:
            lowered = expression.name.lower()
            for column in result.columns:
                if column.name.lower() == lowered:
                    return list(column.values)
        if isinstance(expression, ast.Literal) and isinstance(expression.value, int):
            position = expression.value - 1
            if 0 <= position < result.column_count:
                return list(result.columns[position].values)
        evaluator = ExpressionEvaluator(self.database, batch, allow_aggregates=False)
        values = evaluator.evaluate(expression).broadcast(batch.row_count)
        if len(values) != row_count:
            raise ExecutionError("ORDER BY expression length mismatch")
        return as_value_list(values)

    # ------------------------------------------------------------------ #
    # FROM clause resolution
    # ------------------------------------------------------------------ #
    def _resolve_from(self, from_clause: ast.TableRef | None) -> Batch:
        if from_clause is None:
            return Batch.empty()
        if isinstance(from_clause, ast.NamedTable):
            return self._batch_from_named(from_clause)
        if isinstance(from_clause, ast.SubquerySource):
            result = self.execute_select(from_clause.query)
            return _batch_from_result(result, from_clause.alias)
        if isinstance(from_clause, ast.TableFunctionCall):
            return self._batch_from_table_function(from_clause)
        if isinstance(from_clause, ast.Join):
            return self._batch_from_join(from_clause)
        raise ExecutionError(f"unsupported FROM item {type(from_clause).__name__}")

    def _batch_from_named(self, ref: ast.NamedTable) -> Batch:
        name = ref.name
        alias = ref.alias or name.split(".")[-1]
        virtual = self._virtual_table(name)
        if virtual is not None:
            schema, rows = virtual
            columns = [
                BatchColumn(alias, column_name, sql_type,
                            [row[i] for row in rows])
                for i, (column_name, sql_type) in enumerate(schema)
            ]
            return Batch(columns, row_count=len(rows))
        table = self.storage.table(name)
        return self._batch_from_table(table, alias=alias)

    def _virtual_table(self, name: str) -> tuple[list[tuple[str, SQLType]], list[tuple]] | None:
        lowered = name.lower()
        if lowered in ("sys.functions", "functions"):
            return _SYS_FUNCTIONS_SCHEMA, self.catalog.sys_functions_rows()
        if lowered in ("sys.args", "args"):
            return _SYS_ARGS_SCHEMA, self.catalog.sys_args_rows()
        if lowered in ("sys.tables", "tables"):
            rows = [
                (index, table_name, self.storage.table(table_name).row_count)
                for index, table_name in enumerate(self.storage.table_names())
            ]
            return _SYS_TABLES_SCHEMA, rows
        return None

    @staticmethod
    def _batch_from_table(table: Table, *, alias: str) -> Batch:
        # near-zero-copy scan: share the storage layer's cached (read-only)
        # arrays/vectors instead of copying every column per query
        columns = [
            BatchColumn(alias, column.name, column.sql_type,
                        column.scan_values())
            for column in table.columns
        ]
        return Batch(columns, row_count=table.row_count)

    def _batch_from_table_function(self, ref: ast.TableFunctionCall) -> Batch:
        if not self.catalog.has(ref.name):
            raise CatalogError(f"unknown table function {ref.name!r}")
        signature = self.catalog.get(ref.name).signature
        alias = ref.alias or ref.name

        # Evaluate arguments: subqueries contribute one argument per result
        # column (MonetDB flattens them positionally); scalar expressions are
        # evaluated as constants.
        arg_values: list[Any] = []
        for arg in ref.args:
            if isinstance(arg, ast.Select):
                sub_result = self.execute_select(arg)
                for column in sub_result.columns:
                    arg_values.append(column.to_numpy())
            else:
                evaluator = ExpressionEvaluator(self.database, Batch.empty())
                arg_values.append(evaluator.evaluate(arg).values[0])

        if len(arg_values) != len(signature.parameters):
            raise ExecutionError(
                f"table function {ref.name!r} expects {len(signature.parameters)} "
                f"arguments, got {len(arg_values)}"
            )
        raw = self.database.udf_runtime.invoke(signature, arg_values)

        if signature.returns_table:
            column_data = convert_table_result(signature, raw)
            columns = [
                BatchColumn(alias, column_name, signature.return_columns[i].sql_type,
                            values)
                for i, (column_name, values) in enumerate(column_data.items())
            ]
            row_count = len(columns[0].values) if columns else 0
            return Batch(columns, row_count=row_count)

        # Scalar function used in FROM: expose its result as a one-column table.
        from .udf import convert_scalar_result

        values, _ = convert_scalar_result(signature, raw, 0)
        column = BatchColumn(alias, signature.name,
                             signature.return_type or SQLType.DOUBLE, values)
        return Batch([column], row_count=len(values))

    def _batch_from_join(self, join: ast.Join) -> Batch:
        """Join two batches without ever evaluating a row pair at a time.

        Equi-join conditions (``a.x = b.y``, including AND-of-equalities) run
        as a build/probe hash join; every other condition is evaluated once,
        vectorised, over the materialised cross product.  LEFT JOIN emits its
        unmatched left rows after all matches, as the nested-loop
        implementation did.
        """
        left = self._resolve_from(join.left)
        right = self._resolve_from(join.right)
        join_type = join.join_type.upper()

        if join_type == "CROSS" or join.condition is None:
            left_indices = np.repeat(
                np.arange(left.row_count, dtype=np.intp), right.row_count)
            right_indices = np.tile(
                np.arange(right.row_count, dtype=np.intp), left.row_count)
            unmatched: np.ndarray | None = None
        else:
            equi_keys = self._equi_join_keys(join.condition, left, right)
            if equi_keys is not None:
                left_indices, right_indices, unmatched = self._hash_join_indices(
                    left, right, equi_keys, join_type)
            else:
                left_indices, right_indices, unmatched = self._mask_join_indices(
                    left, right, join.condition, join_type)

        return self._gather_join(left, right, left_indices, right_indices, unmatched)

    def _equi_join_keys(self, condition: ast.Expression, left: Batch, right: Batch
                        ) -> list[tuple[ast.ColumnRef, ast.ColumnRef]] | None:
        """Extract ``left_col = right_col`` pairs from an AND-of-equalities.

        Returns None when any conjunct is not such an equality (including
        ambiguous or unresolvable column references, which the fallback path
        reports with the same errors as before).
        """
        pairs: list[tuple[ast.ColumnRef, ast.ColumnRef]] = []
        for conjunct in _conjuncts(condition):
            if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="
                    and isinstance(conjunct.left, ast.ColumnRef)
                    and isinstance(conjunct.right, ast.ColumnRef)):
                return None
            first_side = _column_side(conjunct.left, left, right)
            second_side = _column_side(conjunct.right, left, right)
            if first_side == "left" and second_side == "right":
                pairs.append((conjunct.left, conjunct.right))
            elif first_side == "right" and second_side == "left":
                pairs.append((conjunct.right, conjunct.left))
            else:
                return None
        return pairs or None

    def _hash_join_indices(self, left: Batch, right: Batch,
                           pairs: Sequence[tuple[ast.ColumnRef, ast.ColumnRef]],
                           join_type: str
                           ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Build on the right input, probe with the left (SQL NULLs never match)."""
        if len(pairs) == 1:
            left_ref, right_ref = pairs[0]
            keys = _join_key_arrays(left.resolve(left_ref.name, left_ref.table).values,
                                    right.resolve(right_ref.name, right_ref.table).values)
            if keys is not None:
                return _vector_equi_join(*keys, join_type=join_type)
        left_keys = [left.resolve(ref.name, ref.table).value_list()
                     for ref, _ in pairs]
        right_keys = [right.resolve(ref.name, ref.table).value_list()
                      for _, ref in pairs]

        build: dict[tuple, list[int]] = {}
        for right_row, key in enumerate(zip(*right_keys)):
            if any(part is None for part in key):
                continue
            build.setdefault(key, []).append(right_row)

        left_out: list[int] = []
        right_out: list[int] = []
        unmatched: list[int] = []
        for left_row, key in enumerate(zip(*left_keys)):
            matches = None
            if not any(part is None for part in key):
                matches = build.get(key)
            if matches:
                left_out.extend([left_row] * len(matches))
                right_out.extend(matches)
            elif join_type == "LEFT":
                unmatched.append(left_row)
        return (np.asarray(left_out, dtype=np.intp),
                np.asarray(right_out, dtype=np.intp),
                np.asarray(unmatched, dtype=np.intp) if join_type == "LEFT" else None)

    def _mask_join_indices(self, left: Batch, right: Batch,
                           condition: ast.Expression, join_type: str
                           ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Evaluate an arbitrary join condition once over the cross product."""
        all_left = np.repeat(np.arange(left.row_count, dtype=np.intp), right.row_count)
        all_right = np.tile(np.arange(right.row_count, dtype=np.intp), left.row_count)
        combined = Batch(
            [BatchColumn(c.table, c.name, c.sql_type, take_values(c.values, all_left))
             for c in left.columns]
            + [BatchColumn(c.table, c.name, c.sql_type, take_values(c.values, all_right))
               for c in right.columns],
            row_count=left.row_count * right.row_count,
        )
        evaluator = ExpressionEvaluator(self.database, combined)
        mask = evaluator.evaluate_mask(condition)
        if isinstance(mask, np.ndarray):
            selected = np.flatnonzero(mask)
        else:
            selected = np.asarray(
                [i for i, keep in enumerate(mask) if keep], dtype=np.intp)
        left_indices = all_left[selected]
        right_indices = all_right[selected]
        if join_type != "LEFT":
            return left_indices, right_indices, None
        matched = np.zeros(left.row_count, dtype=np.bool_)
        matched[left_indices] = True
        return left_indices, right_indices, np.flatnonzero(~matched)

    @staticmethod
    def _gather_join(left: Batch, right: Batch, left_indices: np.ndarray,
                     right_indices: np.ndarray,
                     unmatched: np.ndarray | None) -> Batch:
        """Materialise the joined batch with vectorised gathers."""
        if unmatched is not None and unmatched.size == 0:
            unmatched = None
        row_count = len(left_indices) + (len(unmatched) if unmatched is not None else 0)
        columns: list[BatchColumn] = []
        for column in left.columns:
            if unmatched is None:
                values = take_values(column.values, left_indices)
            else:
                values = take_values(column.values,
                                     np.concatenate([left_indices, unmatched]))
            columns.append(BatchColumn(column.table, column.name,
                                       column.sql_type, values))
        for column in right.columns:
            matched_values = take_values(column.values, right_indices)
            if unmatched is None:
                values = matched_values
            else:
                values = as_value_list(matched_values) + [None] * len(unmatched)
            columns.append(BatchColumn(column.table, column.name,
                                       column.sql_type, values))
        return Batch(columns, row_count=row_count)


# --------------------------------------------------------------------------- #
# grouping / join helpers
# --------------------------------------------------------------------------- #
def _join_key_arrays(left_values: Any, right_values: Any
                     ) -> tuple[np.ndarray, np.ndarray | None,
                                np.ndarray, np.ndarray | None] | None:
    """Normalise both sides of an equi-join key to one comparable space.

    Returns ``(left data, left mask, right data, right mask)`` — integer
    codes for dictionary strings (remapped into one shared dictionary),
    a common numeric dtype otherwise — or ``None`` when the pair cannot
    take the vectorised join (object columns, string-vs-number joins).
    """
    left_parts = vector_parts(left_values)
    right_parts = vector_parts(right_values)
    if left_parts is None or right_parts is None:
        return None
    l_data, l_mask, l_dict = left_parts
    r_data, r_mask, r_dict = right_parts
    if (l_dict is None) != (r_dict is None):
        return None  # string-vs-number join: Python equality semantics apply
    if l_dict is not None:
        l_codes, r_codes = remap_to_shared_dictionary(
            Vector(l_data, l_mask, l_dict), Vector(r_data, r_mask, r_dict))
        return l_codes, l_mask, r_codes, r_mask
    if l_data.dtype.kind not in "biuf" or r_data.dtype.kind not in "biuf":
        return None
    if l_data.dtype.kind == "f" or r_data.dtype.kind == "f":
        # mixed int/float keys compare through float64; integers beyond
        # 2^53 would collide after the cast where exact Python equality
        # would not match, so those stay on the exact per-row path
        for data in (l_data, r_data):
            if data.dtype.kind in "iu" and data.size \
                    and max(abs(int(data.max())), abs(int(data.min()))) > 2 ** 53:
                return None
        common: type = np.float64
    else:
        common = np.int64
    return (l_data.astype(common, copy=False), l_mask,
            r_data.astype(common, copy=False), r_mask)


def _vector_equi_join(left_data: np.ndarray, left_mask: np.ndarray | None,
                      right_data: np.ndarray, right_mask: np.ndarray | None,
                      *, join_type: str
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Vectorised single-key equi-join: sort/searchsorted build + probe.

    The right side is factorised with ``np.unique`` and its rows grouped per
    key; the left side probes with ``searchsorted``.  NULL keys (masked rows)
    are excluded from both build and probe, so they never match — matching
    the three-valued-logic behaviour of the per-row hash join.  Output pair
    order matches the Python loop: left rows ascending, right matches in
    original row order within each key.
    """
    left_count = len(left_data)
    right_rows = (np.flatnonzero(~right_mask) if right_mask is not None
                  else np.arange(len(right_data), dtype=np.intp))
    right_keys = right_data[right_rows]
    unique_keys, right_inverse = np.unique(right_keys, return_inverse=True)
    by_key = np.argsort(right_inverse, kind="stable")
    grouped_rows = right_rows[by_key]
    counts = np.bincount(right_inverse, minlength=len(unique_keys))
    group_starts = np.concatenate(([0], np.cumsum(counts[:-1]))) \
        if len(unique_keys) else np.zeros(0, dtype=np.int64)

    if len(unique_keys):
        positions = np.searchsorted(unique_keys, left_data)
        clipped = np.minimum(positions, len(unique_keys) - 1)
        found = (positions < len(unique_keys)) & (unique_keys[clipped] == left_data)
    else:
        positions = np.zeros(left_count, dtype=np.intp)
        found = np.zeros(left_count, dtype=np.bool_)
    if left_mask is not None:
        found &= ~left_mask

    probe_rows = np.flatnonzero(found)
    probe_keys = positions[probe_rows]
    match_counts = counts[probe_keys]
    total = int(match_counts.sum())
    prefix = np.cumsum(match_counts) - match_counts
    within = np.arange(total, dtype=np.intp) - np.repeat(prefix, match_counts)
    right_out = grouped_rows[np.repeat(group_starts[probe_keys], match_counts)
                             + within] if total else np.zeros(0, dtype=np.intp)
    left_out = np.repeat(probe_rows, match_counts).astype(np.intp, copy=False)
    unmatched = np.flatnonzero(~found) if join_type == "LEFT" else None
    return left_out, np.asarray(right_out, dtype=np.intp), unmatched


def _grouping_key_array(values: Any) -> np.ndarray | None:
    """A sortable key array factorising a GROUP BY column; None = fall back.

    NULLs form their own group (SQL semantics: all NULL keys group together),
    represented by ``NULL_CODE`` — below every valid code/value.  Dictionary
    vectors group on their codes directly; masked numeric vectors factorise
    the valid values with ``np.unique`` so NULLs get a code of their own.
    """
    if is_vector(values):
        return values
    if not isinstance(values, Vector):
        return None
    if values.dictionary is not None:
        if values.mask is None:
            return values.data
        return np.where(values.mask, NULL_CODE, values.data)
    if values.mask is None:
        return values.data
    valid = ~values.mask
    codes = np.full(len(values), NULL_CODE, dtype=np.int64)
    if valid.any():
        _, inverse = np.unique(values.data[valid], return_inverse=True)
        codes[valid] = inverse
    return codes


def _layout_from_sort_key(array: np.ndarray, row_count: int
                          ) -> tuple[GroupLayout, Sequence[int]]:
    """Factorise one key array into (layout, first-row-per-group) geometry."""
    order = np.argsort(array, kind="stable")
    sorted_keys = array[order]
    new_cluster = np.empty(row_count, dtype=np.bool_)
    new_cluster[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new_cluster[1:])
    starts = np.flatnonzero(new_cluster)
    n_groups = int(starts.size)
    # stable sort => the first row of each cluster is its earliest row
    first_rows = order[starts]
    out_perm = np.empty(n_groups, dtype=np.int64)
    out_perm[np.argsort(first_rows, kind="stable")] = \
        np.arange(n_groups, dtype=np.int64)
    cluster_of_sorted_row = np.cumsum(new_cluster) - 1
    gids = np.empty(row_count, dtype=np.int64)
    gids[order] = out_perm[cluster_of_sorted_row]
    layout = GroupLayout(gids, n_groups, order=order, starts=starts,
                         out_perm=out_perm)
    return layout, np.sort(first_rows)


class _GroupedExpressionEvaluator(ExpressionEvaluator):
    """Evaluates select items over one representative row per group.

    Aggregate calls resolve to precomputed per-group columns, so an
    expression like ``SUM(x) / COUNT(*)`` is evaluated once for all groups
    instead of once per group.
    """

    def __init__(self, database: "Database", rep_batch: Batch,
                 aggregate_columns: dict[int, list[Any]]) -> None:
        super().__init__(database, rep_batch, allow_aggregates=True)
        self._aggregate_columns = aggregate_columns

    def _eval_FunctionCall(self, node: ast.FunctionCall) -> EvalResult:
        precomputed = self._aggregate_columns.get(id(node))
        if precomputed is not None:
            return EvalResult(precomputed, constant=False)
        return super()._eval_FunctionCall(node)


def _group_column(result: EvalResult, n_groups: int) -> list[Any]:
    """Align an evaluation over the representative batch to one value per group."""
    if len(result.values) == n_groups:
        return as_value_list(result.values)
    if len(result.values) == 0:
        # non-aggregate expression over the empty implicit group
        return [None] * n_groups
    return as_value_list(result.broadcast(n_groups))


def _collect_aggregates(expression: ast.Expression,
                        out: list[ast.FunctionCall]) -> None:
    """Collect every aggregate call in the tree (not descending into them)."""
    if isinstance(expression, ast.FunctionCall) and is_aggregate(expression.name):
        out.append(expression)
        return
    for child in child_expressions(expression):
        _collect_aggregates(child, out)


def _conjuncts(expression: ast.Expression) -> Iterator[ast.Expression]:
    """Flatten an AND tree into its conjuncts."""
    if isinstance(expression, ast.BinaryOp) and expression.op.upper() == "AND":
        yield from _conjuncts(expression.left)
        yield from _conjuncts(expression.right)
    else:
        yield expression


def _column_side(ref: ast.ColumnRef, left: Batch, right: Batch) -> str | None:
    """Which join input a column reference belongs to ('left'/'right'/None).

    Anything other than exactly one matching column across both inputs —
    unknown names, names ambiguous within one side or across sides — returns
    None so the fallback path raises the same error resolution always did.
    """
    matches_left = len(left.matching_columns(ref.name, ref.table))
    matches_right = len(right.matching_columns(ref.name, ref.table))
    if matches_left == 1 and matches_right == 0:
        return "left"
    if matches_right == 1 and matches_left == 0:
        return "right"
    return None


def _sorted_indices(keys: list[list[Any]], descending: list[bool],
                    row_count: int) -> Sequence[int]:
    """Row ordering for ORDER BY: ``np.lexsort`` for NULL-free numeric keys,
    stable Python sorts otherwise.  NULLs sort last for both ASC and DESC."""
    arrays: list[np.ndarray] | None = []
    for values in keys:
        try:
            array = np.asarray(values)
        except (TypeError, ValueError, OverflowError):
            arrays = None
            break
        if array.dtype.kind not in "biuf" or array.shape != (row_count,):
            arrays = None
            break
        arrays.append(array)

    if arrays:
        sort_keys = []
        for array, desc in zip(arrays, descending):
            if array.dtype.kind in "bu":
                array = array.astype(np.int64)
            sort_keys.append(-array if desc else array)
        # np.lexsort treats its *last* key as primary
        return np.lexsort(tuple(reversed(sort_keys)))

    indices = list(range(row_count))
    for position in range(len(keys) - 1, -1, -1):
        key_values = keys[position]
        if descending[position]:
            indices.sort(
                key=lambda i: (key_values[i] is not None,
                               key_values[i] if key_values[i] is not None else 0),
                reverse=True,
            )
        else:
            indices.sort(
                key=lambda i: (key_values[i] is None,
                               key_values[i] if key_values[i] is not None else 0),
            )
    return indices


# --------------------------------------------------------------------------- #
# result helpers
# --------------------------------------------------------------------------- #
def _infer_column_type(values: Sequence[Any]) -> SQLType:
    sample = next((value for value in values if value is not None), None)
    return infer_sql_type(sample) if sample is not None else SQLType.STRING


def _batch_from_result(result: QueryResult, alias: str | None) -> Batch:
    columns = [
        BatchColumn(alias, column.name, column.sql_type, column.batch_values())
        for column in result.columns
    ]
    return Batch(columns, row_count=result.row_count)


def _distinct(result: QueryResult) -> QueryResult:
    """Tuple-key dedup over the result columns, keeping first occurrences."""
    seen: set[tuple] = set()
    keep_indices: list[int] = []
    for index, key in enumerate(zip(*[col.values for col in result.columns])):
        if key not in seen:
            seen.add(key)
            keep_indices.append(index)
    if len(keep_indices) == result.row_count:
        return result
    columns = [
        ResultColumn(col.name, col.sql_type, [col.values[i] for i in keep_indices])
        for col in result.columns
    ]
    return QueryResult(columns)


def _slice_result(result: QueryResult, offset: int, limit: int | None) -> QueryResult:
    end = None if limit is None else offset + limit
    columns = [
        ResultColumn(col.name, col.sql_type, col.values[offset:end])
        for col in result.columns
    ]
    return QueryResult(columns)
