"""Statement execution: dispatch, DML, and the SELECT plan driver.

The executor turns parsed statements into :class:`QueryResult` objects.  It
preserves the MonetDB-like *semantics* the devUDF workflows need (meta
tables, Python UDF invocation with whole columns, loopback queries,
table-producing UDFs with subquery arguments).

Since the physical-operator refactor, ``SELECT`` execution lives in
:mod:`repro.sqldb.plan` (the planner and morsel driver) and
:mod:`repro.sqldb.operators` (Scan/Filter/HashJoin/HashAggregate/Project/
Sort/Distinct/Limit): this module shrank to the statement dispatcher, the
DML/DDL paths (unchanged), and the ``EXPLAIN`` statement that renders a
plan without running it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from ..errors import ExecutionError
from . import ast_nodes as ast
from .catalog import FunctionCatalog
from .csvio import load_csv_into_table
from .expressions import Batch, ExpressionEvaluator
from .plan import Planner, SelectPlan
from .result import QueryResult, ResultColumn
from .schema import ColumnDef, FunctionSignature, TableSchema
from .storage import Storage, Table
from .types import ColumnType, SQLType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .database import Database


class Executor:
    """Executes parsed statements against a :class:`Database`."""

    def __init__(self, database: "Database") -> None:
        self.database = database
        self.planner = Planner(database)

    # ------------------------------------------------------------------ #
    # shortcuts
    # ------------------------------------------------------------------ #
    @property
    def storage(self) -> Storage:
        return self.database.storage

    @property
    def catalog(self) -> FunctionCatalog:
        return self.database.catalog

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def execute(self, statement: ast.Statement) -> QueryResult:
        if isinstance(statement, ast.Select):
            return self.execute_select(statement)
        if isinstance(statement, ast.Explain):
            return self._execute_explain(statement)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.DropTable):
            self.storage.drop_table(statement.name, if_exists=statement.if_exists)
            return QueryResult.empty(statement_type="DROP TABLE")
        if isinstance(statement, ast.InsertValues):
            return self._execute_insert_values(statement)
        if isinstance(statement, ast.InsertSelect):
            return self._execute_insert_select(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.CreateFunction):
            return self._execute_create_function(statement)
        if isinstance(statement, ast.DropFunction):
            self.catalog.drop(statement.name, if_exists=statement.if_exists)
            self.database.udf_runtime.invalidate(statement.name)
            return QueryResult.empty(statement_type="DROP FUNCTION")
        if isinstance(statement, ast.CopyInto):
            return self._execute_copy(statement)
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    # ------------------------------------------------------------------ #
    # SELECT: planner + morsel driver
    # ------------------------------------------------------------------ #
    def execute_select(self, select: ast.Select) -> QueryResult:
        return self.plan_select(select).execute()

    def plan_select(self, select: ast.Select) -> SelectPlan:
        """Lower a SELECT into an executable physical plan."""
        return self.planner.plan(select)

    def _execute_explain(self, statement: ast.Explain) -> QueryResult:
        lines = self.plan_select(statement.query).explain_lines()
        column = ResultColumn("plan", SQLType.STRING, lines)
        return QueryResult([column], statement_type="EXPLAIN")

    # ------------------------------------------------------------------ #
    # DDL / DML
    # ------------------------------------------------------------------ #
    def _execute_create_table(self, statement: ast.CreateTable) -> QueryResult:
        if statement.as_select is not None:
            result = self.execute_select(statement.as_select)
            columns = [
                ColumnDef(col.name, ColumnType(col.sql_type)) for col in result.columns
            ]
            table = self.storage.create_table(
                TableSchema(statement.name, columns), if_not_exists=statement.if_not_exists
            )
            for row in result.rows():
                table.insert_row(row)
            return QueryResult.empty(affected_rows=result.row_count,
                                     statement_type="CREATE TABLE AS")
        schema = TableSchema(statement.name, list(statement.columns))
        self.storage.create_table(schema, if_not_exists=statement.if_not_exists)
        return QueryResult.empty(statement_type="CREATE TABLE")

    def _execute_insert_values(self, statement: ast.InsertValues) -> QueryResult:
        table = self.storage.table(statement.table)
        evaluator = ExpressionEvaluator(self.database, Batch.empty())
        inserted = 0
        for row_exprs in statement.rows:
            values = [evaluator.evaluate(expr).values[0] for expr in row_exprs]
            full_row = self._align_insert_row(table, statement.columns, values)
            table.insert_row(full_row)
            inserted += 1
        return QueryResult.empty(affected_rows=inserted, statement_type="INSERT")

    def _execute_insert_select(self, statement: ast.InsertSelect) -> QueryResult:
        table = self.storage.table(statement.table)
        result = self.execute_select(statement.query)
        inserted = 0
        for row in result.rows():
            full_row = self._align_insert_row(table, statement.columns, list(row))
            table.insert_row(full_row)
            inserted += 1
        return QueryResult.empty(affected_rows=inserted, statement_type="INSERT")

    @staticmethod
    def _align_insert_row(table: Table, columns: Sequence[str],
                          values: Sequence[Any]) -> list[Any]:
        if not columns:
            if len(values) != len(table.columns):
                raise ExecutionError(
                    f"INSERT into {table.name!r}: expected {len(table.columns)} values, "
                    f"got {len(values)}"
                )
            return list(values)
        if len(columns) != len(values):
            raise ExecutionError("INSERT column list and VALUES length mismatch")
        row: list[Any] = [None] * len(table.columns)
        for column_name, value in zip(columns, values):
            row[table.schema.column_index(column_name)] = value
        return row

    def _execute_delete(self, statement: ast.Delete) -> QueryResult:
        table = self.storage.table(statement.table)
        if statement.where is None:
            removed = table.row_count
            table.truncate()
            return QueryResult.empty(affected_rows=removed, statement_type="DELETE")
        batch = self._batch_from_table(table, alias=table.name)
        evaluator = ExpressionEvaluator(self.database, batch)
        mask = evaluator.evaluate_mask(statement.where)
        if isinstance(mask, np.ndarray):
            keep: Sequence[bool] = ~mask
        else:
            keep = [not selected for selected in mask]
        removed = table.delete_rows(keep)
        return QueryResult.empty(affected_rows=removed, statement_type="DELETE")

    def _execute_update(self, statement: ast.Update) -> QueryResult:
        table = self.storage.table(statement.table)
        batch = self._batch_from_table(table, alias=table.name)
        evaluator = ExpressionEvaluator(self.database, batch)
        if statement.where is not None:
            mask = evaluator.evaluate_mask(statement.where)
        else:
            mask = [True] * table.row_count
        assignments: dict[str, list[Any]] = {}
        for column_name, expression in statement.assignments:
            result = evaluator.evaluate(expression)
            assignments[column_name] = result.broadcast(table.row_count)
        updated = table.update_rows(mask, assignments)
        return QueryResult.empty(affected_rows=updated, statement_type="UPDATE")

    def _execute_create_function(self, statement: ast.CreateFunction) -> QueryResult:
        signature = FunctionSignature(
            name=statement.name,
            parameters=list(statement.parameters),
            returns_table=statement.returns_table,
            return_columns=list(statement.return_columns),
            return_type=statement.return_type,
            language=statement.language,
            body=statement.body,
        )
        self.catalog.register(signature, replace=statement.or_replace)
        self.database.udf_runtime.invalidate(statement.name)
        return QueryResult.empty(statement_type="CREATE FUNCTION")

    def _execute_copy(self, statement: ast.CopyInto) -> QueryResult:
        table = self.storage.table(statement.table)
        loaded = load_csv_into_table(table, statement.path,
                                     delimiter=statement.delimiter,
                                     header=statement.header)
        return QueryResult.empty(affected_rows=loaded, statement_type="COPY INTO")

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _batch_from_table(table: Table, *, alias: str) -> Batch:
        # near-zero-copy scan: share the storage layer's cached (read-only)
        # arrays/vectors instead of copying every column per query
        from .expressions import BatchColumn

        columns = [
            BatchColumn(alias, column.name, column.sql_type,
                        column.scan_values())
            for column in table.columns
        ]
        return Batch(columns, row_count=table.row_count)
