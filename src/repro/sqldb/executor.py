"""Statement execution: the operator-at-a-time query engine.

The executor turns parsed statements into :class:`QueryResult` objects.  It is
deliberately a straightforward columnar interpreter — the devUDF workflows the
paper describes need correct MonetDB-like *semantics* (meta tables, Python UDF
invocation with whole columns, loopback queries, table-producing UDFs with
subquery arguments), not MonetDB-like performance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from ..errors import CatalogError, ExecutionError
from . import ast_nodes as ast
from .catalog import FunctionCatalog
from .csvio import load_csv_into_table
from .expressions import (
    Batch,
    BatchColumn,
    EvalResult,
    ExpressionEvaluator,
    default_output_name,
    expression_contains_aggregate,
)
from .result import QueryResult, ResultColumn
from .schema import ColumnDef, FunctionSignature, TableSchema
from .storage import Storage, Table
from .types import ColumnType, SQLType, infer_sql_type
from .udf import convert_table_result

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .database import Database


#: Schemas of the virtual meta tables exposed by the catalog (Listing 1).
_SYS_FUNCTIONS_SCHEMA = [
    ("id", SQLType.INTEGER),
    ("name", SQLType.STRING),
    ("func", SQLType.STRING),
    ("mod", SQLType.STRING),
    ("language", SQLType.INTEGER),
    ("type", SQLType.INTEGER),
]

_SYS_ARGS_SCHEMA = [
    ("id", SQLType.INTEGER),
    ("func_id", SQLType.INTEGER),
    ("name", SQLType.STRING),
    ("type", SQLType.STRING),
    ("number", SQLType.INTEGER),
    ("inout", SQLType.INTEGER),
]

_SYS_TABLES_SCHEMA = [
    ("id", SQLType.INTEGER),
    ("name", SQLType.STRING),
    ("row_count", SQLType.BIGINT),
]


class Executor:
    """Executes parsed statements against a :class:`Database`."""

    def __init__(self, database: "Database") -> None:
        self.database = database

    # ------------------------------------------------------------------ #
    # shortcuts
    # ------------------------------------------------------------------ #
    @property
    def storage(self) -> Storage:
        return self.database.storage

    @property
    def catalog(self) -> FunctionCatalog:
        return self.database.catalog

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def execute(self, statement: ast.Statement) -> QueryResult:
        if isinstance(statement, ast.Select):
            return self.execute_select(statement)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.DropTable):
            self.storage.drop_table(statement.name, if_exists=statement.if_exists)
            return QueryResult.empty(statement_type="DROP TABLE")
        if isinstance(statement, ast.InsertValues):
            return self._execute_insert_values(statement)
        if isinstance(statement, ast.InsertSelect):
            return self._execute_insert_select(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.CreateFunction):
            return self._execute_create_function(statement)
        if isinstance(statement, ast.DropFunction):
            self.catalog.drop(statement.name, if_exists=statement.if_exists)
            self.database.udf_runtime.invalidate(statement.name)
            return QueryResult.empty(statement_type="DROP FUNCTION")
        if isinstance(statement, ast.CopyInto):
            return self._execute_copy(statement)
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    # ------------------------------------------------------------------ #
    # DDL / DML
    # ------------------------------------------------------------------ #
    def _execute_create_table(self, statement: ast.CreateTable) -> QueryResult:
        if statement.as_select is not None:
            result = self.execute_select(statement.as_select)
            columns = [
                ColumnDef(col.name, ColumnType(col.sql_type)) for col in result.columns
            ]
            table = self.storage.create_table(
                TableSchema(statement.name, columns), if_not_exists=statement.if_not_exists
            )
            for row in result.rows():
                table.insert_row(row)
            return QueryResult.empty(affected_rows=result.row_count,
                                     statement_type="CREATE TABLE AS")
        schema = TableSchema(statement.name, list(statement.columns))
        self.storage.create_table(schema, if_not_exists=statement.if_not_exists)
        return QueryResult.empty(statement_type="CREATE TABLE")

    def _execute_insert_values(self, statement: ast.InsertValues) -> QueryResult:
        table = self.storage.table(statement.table)
        evaluator = ExpressionEvaluator(self.database, Batch.empty())
        inserted = 0
        for row_exprs in statement.rows:
            values = [evaluator.evaluate(expr).values[0] for expr in row_exprs]
            full_row = self._align_insert_row(table, statement.columns, values)
            table.insert_row(full_row)
            inserted += 1
        return QueryResult.empty(affected_rows=inserted, statement_type="INSERT")

    def _execute_insert_select(self, statement: ast.InsertSelect) -> QueryResult:
        table = self.storage.table(statement.table)
        result = self.execute_select(statement.query)
        inserted = 0
        for row in result.rows():
            full_row = self._align_insert_row(table, statement.columns, list(row))
            table.insert_row(full_row)
            inserted += 1
        return QueryResult.empty(affected_rows=inserted, statement_type="INSERT")

    @staticmethod
    def _align_insert_row(table: Table, columns: Sequence[str],
                          values: Sequence[Any]) -> list[Any]:
        if not columns:
            if len(values) != len(table.columns):
                raise ExecutionError(
                    f"INSERT into {table.name!r}: expected {len(table.columns)} values, "
                    f"got {len(values)}"
                )
            return list(values)
        if len(columns) != len(values):
            raise ExecutionError("INSERT column list and VALUES length mismatch")
        row: list[Any] = [None] * len(table.columns)
        for column_name, value in zip(columns, values):
            row[table.schema.column_index(column_name)] = value
        return row

    def _execute_delete(self, statement: ast.Delete) -> QueryResult:
        table = self.storage.table(statement.table)
        if statement.where is None:
            removed = table.row_count
            table.truncate()
            return QueryResult.empty(affected_rows=removed, statement_type="DELETE")
        batch = self._batch_from_table(table, alias=table.name)
        evaluator = ExpressionEvaluator(self.database, batch)
        mask = evaluator.evaluate_mask(statement.where)
        keep = [not selected for selected in mask]
        removed = table.delete_rows(keep)
        return QueryResult.empty(affected_rows=removed, statement_type="DELETE")

    def _execute_update(self, statement: ast.Update) -> QueryResult:
        table = self.storage.table(statement.table)
        batch = self._batch_from_table(table, alias=table.name)
        evaluator = ExpressionEvaluator(self.database, batch)
        if statement.where is not None:
            mask = evaluator.evaluate_mask(statement.where)
        else:
            mask = [True] * table.row_count
        assignments: dict[str, list[Any]] = {}
        for column_name, expression in statement.assignments:
            result = evaluator.evaluate(expression)
            assignments[column_name] = result.broadcast(table.row_count)
        updated = table.update_rows(mask, assignments)
        return QueryResult.empty(affected_rows=updated, statement_type="UPDATE")

    def _execute_create_function(self, statement: ast.CreateFunction) -> QueryResult:
        signature = FunctionSignature(
            name=statement.name,
            parameters=list(statement.parameters),
            returns_table=statement.returns_table,
            return_columns=list(statement.return_columns),
            return_type=statement.return_type,
            language=statement.language,
            body=statement.body,
        )
        self.catalog.register(signature, replace=statement.or_replace)
        self.database.udf_runtime.invalidate(statement.name)
        return QueryResult.empty(statement_type="CREATE FUNCTION")

    def _execute_copy(self, statement: ast.CopyInto) -> QueryResult:
        table = self.storage.table(statement.table)
        loaded = load_csv_into_table(table, statement.path,
                                     delimiter=statement.delimiter,
                                     header=statement.header)
        return QueryResult.empty(affected_rows=loaded, statement_type="COPY INTO")

    # ------------------------------------------------------------------ #
    # SELECT
    # ------------------------------------------------------------------ #
    def execute_select(self, select: ast.Select) -> QueryResult:
        batch = self._resolve_from(select.from_clause)

        if select.where is not None:
            evaluator = ExpressionEvaluator(self.database, batch)
            batch = batch.filter(evaluator.evaluate_mask(select.where))

        has_aggregates = any(
            expression_contains_aggregate(item.expression)
            for item in select.items
            if not isinstance(item.expression, ast.Star)
        ) or (select.having is not None and expression_contains_aggregate(select.having))

        if select.group_by or has_aggregates:
            result = self._execute_grouped(select, batch)
        else:
            result = self._execute_projection(select, batch)

        if select.distinct:
            result = _distinct(result)
        if select.order_by:
            result = self._apply_order_by(select, result, batch)
        if select.offset is not None:
            result = _slice_result(result, select.offset, None)
        if select.limit is not None:
            result = _slice_result(result, 0, select.limit)
        return result

    # -- projection -------------------------------------------------------- #
    def _execute_projection(self, select: ast.Select, batch: Batch) -> QueryResult:
        evaluator = ExpressionEvaluator(self.database, batch)
        names: list[str] = []
        results: list[EvalResult] = []
        for index, item in enumerate(select.items):
            if isinstance(item.expression, ast.Star):
                for column in batch.columns_for(item.expression.table):
                    names.append(column.name)
                    results.append(EvalResult(list(column.values), constant=False,
                                              sql_type=column.sql_type))
                continue
            result = evaluator.evaluate(item.expression)
            names.append(item.alias or default_output_name(item.expression, index))
            results.append(result)

        if not results:
            return QueryResult([])

        non_constant_lengths = [len(r) for r in results if not r.constant]
        if non_constant_lengths:
            output_length = max(non_constant_lengths)
        else:
            output_length = max(len(r) for r in results)
        columns = []
        for name, result in zip(names, results):
            values = result.broadcast(output_length)
            sql_type = result.sql_type or _infer_column_type(values)
            columns.append(ResultColumn(name, sql_type, list(values)))
        return QueryResult(columns)

    # -- grouping ----------------------------------------------------------- #
    def _execute_grouped(self, select: ast.Select, batch: Batch) -> QueryResult:
        evaluator = ExpressionEvaluator(self.database, batch)
        if select.group_by:
            key_columns = [
                evaluator.evaluate(expr).broadcast(batch.row_count)
                for expr in select.group_by
            ]
            groups: dict[tuple, list[int]] = {}
            for row_index in range(batch.row_count):
                key = tuple(column[row_index] for column in key_columns)
                groups.setdefault(key, []).append(row_index)
            group_indices = list(groups.values())
        else:
            group_indices = [list(range(batch.row_count))]

        names: list[str] = []
        first = True
        rows: list[list[Any]] = []
        for indices in group_indices:
            group_batch = batch.take(indices)
            group_evaluator = ExpressionEvaluator(self.database, group_batch,
                                                  allow_aggregates=True)
            if select.having is not None:
                having = group_evaluator.evaluate(select.having)
                keep = having.values[0] if having.values else False
                if not (keep is True or keep == 1):
                    continue
            row: list[Any] = []
            for index, item in enumerate(select.items):
                if isinstance(item.expression, ast.Star):
                    raise ExecutionError("'*' cannot be combined with GROUP BY")
                value_result = group_evaluator.evaluate(item.expression)
                if expression_contains_aggregate(item.expression):
                    value = value_result.values[0]
                else:
                    value = value_result.values[0] if value_result.values else None
                row.append(value)
                if first:
                    names.append(item.alias or default_output_name(item.expression, index))
            first = False
            rows.append(row)

        if not names:
            names = [
                item.alias or default_output_name(item.expression, index)
                for index, item in enumerate(select.items)
            ]
        columns = []
        for column_index, name in enumerate(names):
            values = [row[column_index] for row in rows]
            columns.append(ResultColumn(name, _infer_column_type(values), values))
        return QueryResult(columns)

    # -- ORDER BY ------------------------------------------------------------ #
    def _apply_order_by(self, select: ast.Select, result: QueryResult,
                        batch: Batch) -> QueryResult:
        row_count = result.row_count
        keys: list[list[Any]] = []
        for order_item in select.order_by:
            values = self._order_key_values(order_item.expression, result, batch, row_count)
            keys.append(values)

        indices = list(range(row_count))

        def sort_key(index: int):
            parts = []
            for key_values, order_item in zip(keys, select.order_by):
                value = key_values[index]
                none_rank = 1 if value is None else 0
                parts.append((none_rank, value if value is not None else 0))
            return tuple(parts)

        for position in range(len(select.order_by) - 1, -1, -1):
            order_item = select.order_by[position]
            key_values = keys[position]
            indices.sort(
                key=lambda i: ((key_values[i] is None), key_values[i]
                               if key_values[i] is not None else 0),
                reverse=order_item.descending,
            )
        columns = [
            ResultColumn(col.name, col.sql_type, [col.values[i] for i in indices])
            for col in result.columns
        ]
        return QueryResult(columns)

    def _order_key_values(self, expression: ast.Expression, result: QueryResult,
                          batch: Batch, row_count: int) -> list[Any]:
        if isinstance(expression, ast.ColumnRef) and expression.table is None:
            lowered = expression.name.lower()
            for column in result.columns:
                if column.name.lower() == lowered:
                    return list(column.values)
        if isinstance(expression, ast.Literal) and isinstance(expression.value, int):
            position = expression.value - 1
            if 0 <= position < result.column_count:
                return list(result.columns[position].values)
        evaluator = ExpressionEvaluator(self.database, batch, allow_aggregates=False)
        values = evaluator.evaluate(expression).broadcast(batch.row_count)
        if len(values) != row_count:
            raise ExecutionError("ORDER BY expression length mismatch")
        return values

    # ------------------------------------------------------------------ #
    # FROM clause resolution
    # ------------------------------------------------------------------ #
    def _resolve_from(self, from_clause: ast.TableRef | None) -> Batch:
        if from_clause is None:
            return Batch.empty()
        if isinstance(from_clause, ast.NamedTable):
            return self._batch_from_named(from_clause)
        if isinstance(from_clause, ast.SubquerySource):
            result = self.execute_select(from_clause.query)
            return _batch_from_result(result, from_clause.alias)
        if isinstance(from_clause, ast.TableFunctionCall):
            return self._batch_from_table_function(from_clause)
        if isinstance(from_clause, ast.Join):
            return self._batch_from_join(from_clause)
        raise ExecutionError(f"unsupported FROM item {type(from_clause).__name__}")

    def _batch_from_named(self, ref: ast.NamedTable) -> Batch:
        name = ref.name
        alias = ref.alias or name.split(".")[-1]
        virtual = self._virtual_table(name)
        if virtual is not None:
            schema, rows = virtual
            columns = [
                BatchColumn(alias, column_name, sql_type,
                            [row[i] for row in rows])
                for i, (column_name, sql_type) in enumerate(schema)
            ]
            return Batch(columns, row_count=len(rows))
        table = self.storage.table(name)
        return self._batch_from_table(table, alias=alias)

    def _virtual_table(self, name: str) -> tuple[list[tuple[str, SQLType]], list[tuple]] | None:
        lowered = name.lower()
        if lowered in ("sys.functions", "functions"):
            return _SYS_FUNCTIONS_SCHEMA, self.catalog.sys_functions_rows()
        if lowered in ("sys.args", "args"):
            return _SYS_ARGS_SCHEMA, self.catalog.sys_args_rows()
        if lowered in ("sys.tables", "tables"):
            rows = [
                (index, table_name, self.storage.table(table_name).row_count)
                for index, table_name in enumerate(self.storage.table_names())
            ]
            return _SYS_TABLES_SCHEMA, rows
        return None

    @staticmethod
    def _batch_from_table(table: Table, *, alias: str) -> Batch:
        columns = [
            BatchColumn(alias, column.name, column.sql_type, list(column.values))
            for column in table.columns
        ]
        return Batch(columns, row_count=table.row_count)

    def _batch_from_table_function(self, ref: ast.TableFunctionCall) -> Batch:
        if not self.catalog.has(ref.name):
            raise CatalogError(f"unknown table function {ref.name!r}")
        signature = self.catalog.get(ref.name).signature
        alias = ref.alias or ref.name

        # Evaluate arguments: subqueries contribute one argument per result
        # column (MonetDB flattens them positionally); scalar expressions are
        # evaluated as constants.
        arg_values: list[Any] = []
        for arg in ref.args:
            if isinstance(arg, ast.Select):
                sub_result = self.execute_select(arg)
                for column in sub_result.columns:
                    arg_values.append(column.to_numpy())
            else:
                evaluator = ExpressionEvaluator(self.database, Batch.empty())
                arg_values.append(evaluator.evaluate(arg).values[0])

        if len(arg_values) != len(signature.parameters):
            raise ExecutionError(
                f"table function {ref.name!r} expects {len(signature.parameters)} "
                f"arguments, got {len(arg_values)}"
            )
        raw = self.database.udf_runtime.invoke(signature, arg_values)

        if signature.returns_table:
            column_data = convert_table_result(signature, raw)
            columns = [
                BatchColumn(alias, column_name, signature.return_columns[i].sql_type,
                            values)
                for i, (column_name, values) in enumerate(column_data.items())
            ]
            row_count = len(columns[0].values) if columns else 0
            return Batch(columns, row_count=row_count)

        # Scalar function used in FROM: expose its result as a one-column table.
        from .udf import convert_scalar_result

        values, _ = convert_scalar_result(signature, raw, 0)
        column = BatchColumn(alias, signature.name,
                             signature.return_type or SQLType.DOUBLE, values)
        return Batch([column], row_count=len(values))

    def _batch_from_join(self, join: ast.Join) -> Batch:
        left = self._resolve_from(join.left)
        right = self._resolve_from(join.right)
        join_type = join.join_type.upper()

        left_indices: list[int] = []
        right_indices: list[int | None] = []
        if join_type == "CROSS" or join.condition is None:
            for li in range(left.row_count):
                for ri in range(right.row_count):
                    left_indices.append(li)
                    right_indices.append(ri)
        else:
            matched_left: set[int] = set()
            combined_template = Batch(
                [BatchColumn(c.table, c.name, c.sql_type, []) for c in left.columns]
                + [BatchColumn(c.table, c.name, c.sql_type, []) for c in right.columns],
                row_count=0,
            )
            for li in range(left.row_count):
                for ri in range(right.row_count):
                    row_batch = Batch(
                        [BatchColumn(c.table, c.name, c.sql_type, [c.values[li]])
                         for c in left.columns]
                        + [BatchColumn(c.table, c.name, c.sql_type, [c.values[ri]])
                           for c in right.columns],
                        row_count=1,
                    )
                    evaluator = ExpressionEvaluator(self.database, row_batch)
                    mask = evaluator.evaluate_mask(join.condition)
                    if mask and mask[0]:
                        left_indices.append(li)
                        right_indices.append(ri)
                        matched_left.add(li)
            if join_type == "LEFT":
                for li in range(left.row_count):
                    if li not in matched_left:
                        left_indices.append(li)
                        right_indices.append(None)
            _ = combined_template  # template kept for clarity; not otherwise needed

        columns: list[BatchColumn] = []
        for column in left.columns:
            columns.append(BatchColumn(column.table, column.name, column.sql_type,
                                       [column.values[i] for i in left_indices]))
        for column in right.columns:
            values = [
                None if i is None else column.values[i] for i in right_indices
            ]
            columns.append(BatchColumn(column.table, column.name, column.sql_type, values))
        return Batch(columns, row_count=len(left_indices))


# --------------------------------------------------------------------------- #
# result helpers
# --------------------------------------------------------------------------- #
def _infer_column_type(values: Sequence[Any]) -> SQLType:
    sample = next((value for value in values if value is not None), None)
    return infer_sql_type(sample) if sample is not None else SQLType.STRING


def _batch_from_result(result: QueryResult, alias: str | None) -> Batch:
    columns = [
        BatchColumn(alias, column.name, column.sql_type, list(column.values))
        for column in result.columns
    ]
    return Batch(columns, row_count=result.row_count)


def _distinct(result: QueryResult) -> QueryResult:
    seen: set[tuple] = set()
    keep_indices: list[int] = []
    for index, row in enumerate(result.rows()):
        key = tuple(row)
        if key not in seen:
            seen.add(key)
            keep_indices.append(index)
    columns = [
        ResultColumn(col.name, col.sql_type, [col.values[i] for i in keep_indices])
        for col in result.columns
    ]
    return QueryResult(columns)


def _slice_result(result: QueryResult, offset: int, limit: int | None) -> QueryResult:
    end = None if limit is None else offset + limit
    columns = [
        ResultColumn(col.name, col.sql_type, col.values[offset:end])
        for col in result.columns
    ]
    return QueryResult(columns)
