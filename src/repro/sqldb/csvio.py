"""CSV ingestion (``COPY INTO``) and export helpers.

The demo (§2.5) ingests "several CSV files, located in one directory, with one
column of integers"; the buggy data loader of Scenario B (Listing 5) operates
on exactly such a directory.  These helpers provide the correct loading path
used by the engine and by the reference implementations.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path
from typing import Any, Iterable, Sequence

from ..errors import ExecutionError
from .storage import Table
from .types import SQLType


def _parse_cell(text: str, sql_type: SQLType) -> Any:
    """Parse a CSV cell according to the target column type ('' -> NULL)."""
    stripped = text.strip()
    if stripped == "" or stripped.upper() == "NULL":
        return None
    if sql_type.is_integer:
        return int(stripped)
    if sql_type.is_floating:
        return float(stripped)
    if sql_type is SQLType.BOOLEAN:
        return stripped.lower() in ("true", "t", "1")
    return stripped


def load_csv_into_table(table: Table, path: str | os.PathLike[str], *,
                        delimiter: str = ",", header: bool = False) -> int:
    """Load one CSV file into ``table``; returns the number of rows loaded."""
    file_path = Path(path)
    if not file_path.exists():
        raise ExecutionError(f"COPY INTO: file {file_path} does not exist")
    loaded = 0
    column_types = [column.sql_type for column in table.columns]
    with open(file_path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for row_index, row in enumerate(reader):
            if header and row_index == 0:
                continue
            if not row or all(cell.strip() == "" for cell in row):
                continue
            if len(row) != len(column_types):
                raise ExecutionError(
                    f"COPY INTO {table.name!r}: row {row_index + 1} has {len(row)} "
                    f"fields, expected {len(column_types)}"
                )
            values = [_parse_cell(cell, sql_type)
                      for cell, sql_type in zip(row, column_types)]
            table.insert_row(values)
            loaded += 1
    return loaded


def load_csv_directory_into_table(table: Table, directory: str | os.PathLike[str], *,
                                  delimiter: str = ",", header: bool = False,
                                  pattern: str = "*.csv") -> int:
    """Load every CSV file in a directory (sorted by name) into ``table``.

    This is the *correct* loader the demo compares the buggy Listing 5 loader
    against: it must not skip any file.
    """
    dir_path = Path(directory)
    if not dir_path.is_dir():
        raise ExecutionError(f"{dir_path} is not a directory")
    total = 0
    for file_path in sorted(dir_path.glob(pattern)):
        total += load_csv_into_table(table, file_path, delimiter=delimiter, header=header)
    return total


def write_csv(path: str | os.PathLike[str], column_names: Sequence[str],
              rows: Iterable[Sequence[Any]], *, delimiter: str = ",",
              header: bool = False) -> int:
    """Write rows to a CSV file; returns the number of data rows written."""
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        if header:
            writer.writerow(list(column_names))
        for row in rows:
            # NULLs are written as the literal NULL so single-column rows do
            # not degrade to blank lines (which the loader skips).
            writer.writerow(["NULL" if value is None else value for value in row])
            count += 1
    return count
