"""SQL type system for the embedded column store.

MonetDB's type system is much richer than what devUDF needs; we implement the
subset the paper's UDFs and demo scenarios touch (integers, floating point,
strings, booleans, blobs) plus the coercion rules between them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import TypeMismatchError


class SQLType(enum.Enum):
    """Logical SQL column types supported by the engine."""

    INTEGER = "INTEGER"
    BIGINT = "BIGINT"
    DOUBLE = "DOUBLE"
    REAL = "REAL"
    STRING = "STRING"
    BOOLEAN = "BOOLEAN"
    BLOB = "BLOB"

    @property
    def is_numeric(self) -> bool:
        return self in _NUMERIC_TYPES

    @property
    def is_integer(self) -> bool:
        return self in (SQLType.INTEGER, SQLType.BIGINT)

    @property
    def is_floating(self) -> bool:
        return self in (SQLType.DOUBLE, SQLType.REAL)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_NUMERIC_TYPES = frozenset(
    {SQLType.INTEGER, SQLType.BIGINT, SQLType.DOUBLE, SQLType.REAL}
)

#: Aliases accepted by the SQL parser, mapping to canonical types.
TYPE_ALIASES: dict[str, SQLType] = {
    "INT": SQLType.INTEGER,
    "INTEGER": SQLType.INTEGER,
    "SMALLINT": SQLType.INTEGER,
    "TINYINT": SQLType.INTEGER,
    "BIGINT": SQLType.BIGINT,
    "HUGEINT": SQLType.BIGINT,
    "DOUBLE": SQLType.DOUBLE,
    "FLOAT": SQLType.DOUBLE,
    "REAL": SQLType.REAL,
    "DECIMAL": SQLType.DOUBLE,
    "NUMERIC": SQLType.DOUBLE,
    "STRING": SQLType.STRING,
    "VARCHAR": SQLType.STRING,
    "CHAR": SQLType.STRING,
    "TEXT": SQLType.STRING,
    "CLOB": SQLType.STRING,
    "BOOLEAN": SQLType.BOOLEAN,
    "BOOL": SQLType.BOOLEAN,
    "BLOB": SQLType.BLOB,
}


def parse_type_name(name: str) -> SQLType:
    """Resolve a SQL type name (possibly an alias) to a :class:`SQLType`.

    Raises :class:`TypeMismatchError` for unknown type names.
    """
    canonical = TYPE_ALIASES.get(name.upper())
    if canonical is None:
        raise TypeMismatchError(f"unknown SQL type {name!r}")
    return canonical


@dataclass(frozen=True)
class ColumnType:
    """A column's declared type plus nullability."""

    sql_type: SQLType
    nullable: bool = True

    def __str__(self) -> str:
        suffix = "" if self.nullable else " NOT NULL"
        return f"{self.sql_type}{suffix}"


def coerce_value(value: Any, sql_type: SQLType) -> Any:
    """Coerce a Python value to the representation used for ``sql_type``.

    ``None`` always passes through (SQL NULL).  Raises
    :class:`TypeMismatchError` when the value cannot be represented.
    """
    if value is None:
        return None
    if isinstance(value, np.generic):  # numpy scalar leaked from a kernel
        value = value.item()
    try:
        if sql_type.is_integer:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, float) and not value.is_integer():
                raise TypeMismatchError(
                    f"cannot store non-integral value {value!r} in {sql_type}"
                )
            return int(value)
        if sql_type.is_floating:
            return float(value)
        if sql_type is SQLType.STRING:
            if isinstance(value, bytes):
                return value.decode("utf-8")
            return str(value)
        if sql_type is SQLType.BOOLEAN:
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1"):
                    return True
                if lowered in ("false", "f", "0"):
                    return False
                raise TypeMismatchError(f"cannot parse boolean from {value!r}")
            return bool(value)
        if sql_type is SQLType.BLOB:
            if isinstance(value, str):
                return value.encode("utf-8")
            if isinstance(value, (bytes, bytearray, memoryview)):
                return bytes(value)
            raise TypeMismatchError(f"cannot store {type(value).__name__} as BLOB")
    except TypeMismatchError:
        raise
    except (TypeError, ValueError) as exc:
        raise TypeMismatchError(
            f"cannot coerce {value!r} to {sql_type}: {exc}"
        ) from exc
    raise TypeMismatchError(f"unsupported SQL type {sql_type!r}")


def python_value(value: Any) -> Any:
    """Unwrap a numpy scalar leaked from a vector kernel to its Python value."""
    return value.item() if isinstance(value, np.generic) else value


def infer_sql_type(value: Any) -> SQLType:
    """Infer the narrowest SQL type able to hold a Python ``value``."""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, bool):
        return SQLType.BOOLEAN
    if isinstance(value, int):
        return SQLType.INTEGER if -2**31 <= value < 2**31 else SQLType.BIGINT
    if isinstance(value, float):
        return SQLType.DOUBLE
    if isinstance(value, (bytes, bytearray, memoryview)):
        return SQLType.BLOB
    return SQLType.STRING


def common_type(left: SQLType, right: SQLType) -> SQLType:
    """The result type of combining two operand types in an expression."""
    if left == right:
        return left
    if left.is_numeric and right.is_numeric:
        if left.is_floating or right.is_floating:
            return SQLType.DOUBLE
        if SQLType.BIGINT in (left, right):
            return SQLType.BIGINT
        return SQLType.INTEGER
    if SQLType.STRING in (left, right):
        return SQLType.STRING
    raise TypeMismatchError(f"no common type for {left} and {right}")


#: Map from SQLType to the numpy dtype used when handing columns to UDFs.
NUMPY_DTYPES = {
    SQLType.INTEGER: "int64",
    SQLType.BIGINT: "int64",
    SQLType.DOUBLE: "float64",
    SQLType.REAL: "float64",
    SQLType.BOOLEAN: "bool",
    SQLType.STRING: "object",
    SQLType.BLOB: "object",
}
