"""The unified vector representation flowing through the engine.

A :class:`Vector` is the single currency for nullable and string column data
on the vectorised path: a contiguous typed ``data`` array, an optional
boolean validity ``mask`` (``True`` marks a SQL NULL; the mask — never a
placeholder value in ``data`` — is the *only* source of truth for NULLs),
and, for STRING columns, an optional dictionary encoding: ``data`` holds
``int64`` codes indexing a sorted unique-value ``dictionary`` table.

Because ``np.unique`` produces the dictionary in sorted order, code order
*is* lexicographic string order: equality, ordering comparisons, MIN/MAX and
GROUP BY on strings all run as integer kernels over the codes.  NULL rows
carry code ``-1`` purely as a debugging aid — every consumer must (and does)
consult ``mask`` instead of inspecting codes or placeholder values, which is
what keeps values equal to a NULL placeholder (``""``, ``0``, ``False``)
representable.

NULL-free numeric columns deliberately stay plain ``np.ndarray``s (the PR 1
zero-copy scan format); a ``Vector`` only appears where the engine previously
fell back to object arrays — NULL-bearing columns and strings — which is how
SUM/COUNT/joins/GROUP BY stay vectorised on exactly the inputs that used to
punt to the Python tier.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from .types import NUMPY_DTYPES, SQLType

#: Code stored at NULL positions of a dictionary vector (debugging aid only;
#: the validity mask is authoritative).
NULL_CODE = -1

#: Placeholder stored in the data buffer at masked positions (never read back:
#: the validity mask is the only source of truth for NULLs).
NULL_FILL = {
    SQLType.INTEGER: 0,
    SQLType.BIGINT: 0,
    SQLType.DOUBLE: 0.0,
    SQLType.REAL: 0.0,
    SQLType.BOOLEAN: False,
    SQLType.STRING: "",
    SQLType.BLOB: b"",
}


def combine_masks(*masks: np.ndarray | None) -> np.ndarray | None:
    """Union several validity masks (None means "no NULLs")."""
    present = [mask for mask in masks if mask is not None]
    if not present:
        return None
    if len(present) == 1:
        return present[0]
    out = present[0] | present[1]
    for mask in present[2:]:
        out = out | mask
    return out


class Vector:
    """One column of data: typed values + validity mask + optional dictionary.

    ``data``
        For plain vectors: a typed value array (``int64``/``float64``/
        ``bool``); entries at masked positions hold an arbitrary placeholder.
        For dictionary vectors: an ``int64`` code array indexing
        ``dictionary`` (``NULL_CODE`` at masked positions).
    ``mask``
        Boolean validity mask, ``True`` = NULL; ``None`` when NULL-free.
    ``dictionary``
        Sorted unique-value table (object ndarray) or ``None``.
    """

    __slots__ = ("data", "mask", "dictionary", "sql_type", "_objects")

    def __init__(self, data: np.ndarray, mask: np.ndarray | None = None,
                 dictionary: np.ndarray | None = None,
                 sql_type: SQLType = SQLType.STRING) -> None:
        self.data = data
        self.mask = mask if mask is not None and mask.any() else None
        self.dictionary = dictionary
        self.sql_type = sql_type
        self._objects: np.ndarray | None = None  # cached UDF-format array

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_values(cls, values: Sequence[Any], sql_type: SQLType) -> "Vector":
        """Build a vector from a plain Python value list (Nones = NULLs)."""
        count = len(values)
        if any(value is None for value in values):
            mask = np.fromiter((value is None for value in values),
                               dtype=bool, count=count)
        else:
            mask = None
        if sql_type is SQLType.STRING:
            fill = NULL_FILL[sql_type]
            table = np.empty(count, dtype=object)
            for index, value in enumerate(values):
                table[index] = fill if value is None else value
            if count:
                dictionary, codes = np.unique(table, return_inverse=True)
                codes = codes.astype(np.int64, copy=False)
            else:
                dictionary = np.empty(0, dtype=object)
                codes = np.empty(0, dtype=np.int64)
            if mask is not None:
                codes[mask] = NULL_CODE
            return cls(codes, mask, dictionary, sql_type)
        dtype = NUMPY_DTYPES[sql_type]
        if mask is None:
            data = np.array(list(values), dtype=dtype)
        else:
            fill = NULL_FILL[sql_type]
            data = np.array([fill if value is None else value
                             for value in values], dtype=dtype)
        return cls(data, mask, None, sql_type)

    @classmethod
    def from_codes(cls, codes: np.ndarray, dictionary: np.ndarray,
                   mask: np.ndarray | None = None,
                   sql_type: SQLType = SQLType.STRING) -> "Vector":
        """Wrap an existing (codes, dictionary, mask) triple."""
        return cls(np.asarray(codes, dtype=np.int64), mask,
                   np.asarray(dictionary, dtype=object), sql_type)

    # ------------------------------------------------------------------ #
    # shape / predicates
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.data)

    @property
    def is_dict(self) -> bool:
        return self.dictionary is not None

    def null_count(self) -> int:
        return int(np.count_nonzero(self.mask)) if self.mask is not None else 0

    def valid(self) -> np.ndarray:
        """Validity as a boolean array (True = value present)."""
        if self.mask is None:
            return np.ones(len(self.data), dtype=bool)
        return ~self.mask

    # ------------------------------------------------------------------ #
    # element access (Python-tier fallbacks index vectors directly)
    # ------------------------------------------------------------------ #
    def __getitem__(self, index: int) -> Any:
        if self.mask is not None and self.mask[index]:
            return None
        if self.dictionary is not None:
            return self.dictionary[self.data[index]]
        value = self.data[index]
        return value.item() if isinstance(value, np.generic) else value

    def __iter__(self) -> Iterator[Any]:
        return iter(self.to_list())

    # ------------------------------------------------------------------ #
    # materialisation
    # ------------------------------------------------------------------ #
    def decoded(self) -> np.ndarray:
        """The value array with dictionary codes resolved.

        Masked positions hold placeholders — callers must consult ``mask``.
        """
        if self.dictionary is None:
            return self.data
        if len(self.dictionary):
            codes = self.data if self.mask is None else \
                np.where(self.mask, 0, self.data)
            return self.dictionary[codes]
        return np.full(len(self.data), NULL_FILL[self.sql_type], dtype=object)

    def to_list(self) -> list[Any]:
        """Plain Python values, ``None`` at masked positions."""
        values = self.decoded().tolist()
        if self.mask is not None:
            for index in np.flatnonzero(self.mask):
                values[index] = None
        return values

    def to_numpy(self) -> np.ndarray:
        """The UDF handoff format (matches ``column_to_numpy`` exactly):
        NULL-bearing columns become object arrays holding ``None``; NULL-free
        strings become object arrays; NULL-free numerics stay typed (shared,
        read-only).  The result is cached on the vector.
        """
        if self._objects is None:
            if self.mask is None and self.dictionary is None:
                array = self.data
            elif self.mask is None:
                array = self.decoded().copy()
            else:
                array = np.empty(len(self.data), dtype=object)
                array[:] = self.to_list()
            array.setflags(write=False)
            self._objects = array
        return self._objects

    def buffer_arrays(self) -> tuple[np.ndarray, np.ndarray | None]:
        """Export as the wire-format ``(data array, null mask)`` pair."""
        if self.dictionary is None:
            return self.data, self.mask
        decoded = self.decoded()
        if self.mask is not None:
            decoded = decoded.copy()
            decoded[self.mask] = NULL_FILL[self.sql_type]
        return decoded, self.mask

    # ------------------------------------------------------------------ #
    # row operations
    # ------------------------------------------------------------------ #
    def take(self, indices: Any) -> "Vector":
        """Gather rows at ``indices`` (fancy indexing)."""
        idx = np.asarray(indices, dtype=np.intp)
        mask = self.mask[idx] if self.mask is not None else None
        return Vector(self.data[idx], mask, self.dictionary, self.sql_type)

    def slice(self, start: int, stop: int) -> "Vector":
        """A zero-copy view of rows ``[start, stop)``.

        The data and mask are numpy views of this vector's buffers and the
        dictionary is shared, so morsel-sized slices cost O(1) — this is the
        shape row-range scans hand to the morsel scheduler.
        """
        mask = self.mask[start:stop] if self.mask is not None else None
        return Vector(self.data[start:stop], mask, self.dictionary,
                      self.sql_type)


def slice_column_values(values: Any, start: int, stop: int) -> Any:
    """Row-range slice of column data (zero-copy for arrays and vectors).

    A full-range slice returns the original object, so single-morsel
    execution shares cached scans (and their memoised UDF materialisations)
    exactly like whole-batch execution did.  This is the one slicing rule
    both the storage scan path and the executor batch path use.
    """
    if start == 0 and stop >= len(values):
        return values
    if isinstance(values, Vector):
        return values.slice(start, stop)
    return values[start:stop]


def vector_parts(values: Any) -> tuple[np.ndarray, np.ndarray | None,
                                       np.ndarray | None] | None:
    """Normalise column data to ``(data, mask, dictionary)``; None = no kernel."""
    if isinstance(values, Vector):
        return values.data, values.mask, values.dictionary
    if isinstance(values, np.ndarray) and values.dtype != object:
        return values, None, None
    return None


def remap_to_shared_dictionary(left: Vector, right: Vector
                               ) -> tuple[np.ndarray, np.ndarray]:
    """Translate two dictionary vectors' codes into one shared sorted space.

    Because the shared dictionary is sorted, comparing remapped codes is
    equivalent to comparing the underlying strings (including ordering).
    Masked positions keep arbitrary codes — consult the vectors' masks.
    """
    combined = np.concatenate([left.dictionary, right.dictionary])
    _, inverse = np.unique(combined, return_inverse=True)
    left_map = inverse[:len(left.dictionary)]
    right_map = inverse[len(left.dictionary):]
    left_codes = left.data if left.mask is None else \
        np.where(left.mask, 0, left.data)
    right_codes = right.data if right.mask is None else \
        np.where(right.mask, 0, right.data)
    if len(left_map):
        left_shared = left_map[left_codes]
    else:
        left_shared = np.empty(0, dtype=np.int64)
    if len(right_map):
        right_shared = right_map[right_codes]
    else:
        right_shared = np.empty(0, dtype=np.int64)
    return left_shared, right_shared
