"""Morsel-driven parallel execution: row-range splitting and the worker pool.

The physical operator pipeline (:mod:`repro.sqldb.plan`) executes a query as
a sequence of *morsels* — row-range slices of the input flowing through the
fused per-morsel stage chain.  This module owns the two policy decisions:

* **how to split**: :meth:`MorselScheduler.split` turns a row count into
  ``(start, stop)`` ranges of ``morsel_rows`` rows.  Single-worker mode never
  splits — the whole input is one morsel, so execution takes exactly the
  same whole-batch code path (and produces byte-identical results to) the
  pre-pipeline engine.  Tiny inputs below ``parallel_threshold`` also stay
  whole, so small queries never pay pool overhead.
* **where to run**: :meth:`MorselScheduler.map` evaluates one function per
  morsel, on a shared ``ThreadPoolExecutor`` when parallelism is enabled and
  there is more than one morsel, inline otherwise.  Results always come back
  in morsel order, which is what keeps parallel output row order identical
  to sequential execution.  Threads suit this engine because the hot kernels
  are numpy reductions/gathers over large arrays, which release the GIL.

The scheduler is owned by the :class:`~repro.sqldb.database.Database` and
shared by every query; the pool is created lazily on first parallel use.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Iterator, Sequence, TypeVar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import QueryContext

T = TypeVar("T")
R = TypeVar("R")

#: Default rows per morsel — matches the wire protocol's default chunk size,
#: so one pipeline morsel maps onto one ``result_chunk`` frame.
DEFAULT_MORSEL_ROWS = 65_536

#: Inputs smaller than this never split: the pool round-trip costs more than
#: the work (the "morsel-size threshold" guarding tiny queries).
DEFAULT_PARALLEL_THRESHOLD = 16_384


class MorselScheduler:
    """Splits work into row-range morsels and runs them on a worker pool."""

    def __init__(self, workers: int = 1, *,
                 morsel_rows: int = DEFAULT_MORSEL_ROWS,
                 parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD) -> None:
        self.workers = max(1, int(workers))
        self.morsel_rows = max(1, int(morsel_rows))
        self.parallel_threshold = max(0, int(parallel_threshold))
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        # observability counters, bound by the owning Database (optional)
        self._c_morsels = None
        self._c_pooled = None

    def bind_metrics(self, registry) -> None:  # type: ignore[no-untyped-def]
        """Register scheduler counters on the engine's metrics registry."""
        self._c_morsels = registry.counter("db.morsels_executed")
        self._c_pooled = registry.counter("db.morsels_pooled")

    # ------------------------------------------------------------------ #
    # splitting policy
    # ------------------------------------------------------------------ #
    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def split(self, row_count: int) -> list[tuple[int, int]]:
        """Row ranges covering ``[0, row_count)``; ``[(0, n)]`` if unsplit.

        Splitting requires parallelism to be on, the input to clear the
        tiny-query threshold, and at least two morsels' worth of rows —
        otherwise the whole input is a single morsel and execution is
        exactly the sequential whole-batch path.
        """
        row_count = max(0, int(row_count))
        if (not self.parallel or row_count < self.parallel_threshold
                or row_count <= self.morsel_rows):
            return [(0, row_count)]
        step = self.morsel_rows
        return [(start, min(start + step, row_count))
                for start in range(0, row_count, step)]

    def morsel_count(self, row_count: int) -> int:
        """How many morsels :meth:`split` would produce (for EXPLAIN)."""
        return len(self.split(row_count))

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="morsel-worker")
            return self._pool

    @staticmethod
    def _checked(fn: Callable[[T], R],
                 context: "QueryContext | None") -> Callable[[T], R]:
        """Wrap ``fn`` with a cancellation checkpoint at morsel entry.

        Pool-queued morsels that start *after* a cancel or an expired
        deadline abort immediately instead of doing a full morsel's work —
        this is what bounds abort latency to ~one in-flight morsel.
        """
        if context is None:
            return fn

        def checked(item: T) -> R:
            context.check()
            return fn(item)

        return checked

    def map(self, fn: Callable[[T], R], items: Sequence[T], *,
            context: "QueryContext | None" = None) -> list[R]:
        """Evaluate ``fn`` over ``items``; results in input order.

        Runs inline unless parallelism is enabled and there are at least two
        items.  The first raising item's exception propagates (as with
        sequential execution); remaining futures are left to finish.
        ``context`` adds a cancellation checkpoint before every morsel.
        """
        items = list(items)
        fn = self._checked(fn, context)
        if self._c_morsels is not None:
            self._c_morsels.inc(len(items))
        if not self.parallel or len(items) < 2:
            return [fn(item) for item in items]
        if self._c_pooled is not None:
            self._c_pooled.inc(len(items))
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in items]
        return [future.result() for future in futures]

    def imap(self, fn: Callable[[T], R], items: Sequence[T], *,
             context: "QueryContext | None" = None) -> Iterator[R]:
        """Like :meth:`map` but yields results lazily, still in input order.

        With a pool, all morsels are submitted up front and results stream
        out as each completes — the consumer (e.g. the server's chunked wire
        encoder) can ship morsel *i* while *i + 1* is still executing.  If
        the consumer abandons the iterator, unfinished futures are
        cancelled where possible.  ``context`` adds a cancellation
        checkpoint before every morsel, so a cancel or timeout surfaces at
        the next morsel boundary even mid-stream.
        """
        items = list(items)
        fn = self._checked(fn, context)
        if self._c_morsels is not None:
            self._c_morsels.inc(len(items))
        if not self.parallel or len(items) < 2:
            for item in items:
                yield fn(item)
            return
        if self._c_pooled is not None:
            self._c_pooled.inc(len(items))
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in items]
        try:
            for future in futures:
                yield future.result()
        finally:
            for future in futures:
                future.cancel()

    def shutdown(self) -> None:
        """Tear down the worker pool (idempotent; a later query recreates it)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MorselScheduler(workers={self.workers}, "
                f"morsel_rows={self.morsel_rows}, "
                f"parallel_threshold={self.parallel_threshold})")
