"""Write-ahead log: an append-only, checksummed record stream.

Every SQL-level mutation (DML and DDL) is appended to the log *after* it has
been applied in memory but before the statement's result is returned, so a
crash loses at most the records that were never written — never a record the
caller saw succeed and that a subsequent ``fsync`` confirmed durable.

File layout::

    +----------------------------------------------+
    | header: magic "REPROWAL" | u16 version       |
    |         u16 reserved     | u64 generation    |
    +----------------------------------------------+
    | record: u32 payload length | u32 crc32       |
    |         payload (value-codec encoded dict)   |
    +----------------------------------------------+
    | ...more records...                           |
    +----------------------------------------------+

Records are dictionaries encoded with the shared self-describing value codec
(:func:`repro.netproto.wire.encode_value`) — the same bytes-level codec the
client protocol uses, so the WAL introduces no parallel serialisation scheme.
The crc32 covers the payload only; a torn tail (crash mid-append) is detected
on read as a short header, short payload, or checksum mismatch, and everything
from the first bad record onward is discarded (those statements never
acknowledged durability).

``generation`` ties a log to one checkpoint of the database file: every
checkpoint bumps the generation and resets the log, so a stale log (crash
between the atomic file replace and the log reset) is recognised and ignored
instead of being replayed over a newer checkpoint.

Durability policy: ``fsync_batch`` groups commits — the file is flushed to the
OS on every append (a crash of *this process* loses nothing) but ``fsync`` to
stable storage happens every N records and at every checkpoint/close, which is
the classic group-commit trade between insert throughput and the window a
whole-machine crash can lose.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from time import perf_counter

from ...errors import PersistenceError
from ...netproto.wire import decode_value, encode_value
from ...obs import MetricsRegistry, NULL_REGISTRY
from . import faults
from .records import pack_mask, unpack_mask  # noqa: F401  (record-level API)

WAL_MAGIC = b"REPROWAL"
WAL_VERSION = 1

_HEADER = struct.Struct("<8sHHQ")   # magic, version, reserved, generation
_RECORD = struct.Struct("<II")      # payload length, payload crc32

#: Exposed for recovery's torn-header detection (a crash between the
#: truncate and the header write of a WAL reset leaves a shorter file).
HEADER_SIZE = _HEADER.size

#: fsync to stable storage every N appended records (and on flush/close).
DEFAULT_FSYNC_BATCH = 32

#: Upper bound on a single record payload; a length field beyond this is
#: treated as tail corruption rather than an attempt to allocate gigabytes.
_MAX_RECORD_BYTES = 1 << 30


# --------------------------------------------------------------------------- #
# reading
# --------------------------------------------------------------------------- #
@dataclass
class WalContents:
    """The readable prefix of a write-ahead log."""

    generation: int
    records: list[dict[str, Any]] = field(default_factory=list)
    #: Start offset of each record in ``records`` — recovery truncates back
    #: to a record boundary when it discards an incomplete record group.
    record_offsets: list[int] = field(default_factory=list)
    #: File offset just past the last intact record — the truncation point
    #: appends resume from after a torn tail.
    good_end: int = 0
    #: True when trailing bytes had to be discarded (torn/corrupt tail).
    torn: bool = False


def read_wal(path: str | os.PathLike[str], *,
             fs: faults.FileSystem | None = None) -> WalContents:
    """Read every intact record of a WAL file, discarding a torn tail.

    Raises :class:`PersistenceError` only when the *header* is unreadable —
    that is not a torn append but a file that was never a WAL (or lost its
    first sectors, in which case no record boundary is trustworthy).
    """
    try:
        data = (fs or faults.current_fs()).read_bytes(path)
    except OSError as exc:
        raise PersistenceError(f"WAL {path}: read failed ({exc})") from exc
    if len(data) < _HEADER.size:
        raise PersistenceError(f"WAL {path}: truncated header")
    magic, version, _reserved, generation = _HEADER.unpack_from(data, 0)
    if magic != WAL_MAGIC:
        raise PersistenceError(f"WAL {path}: bad magic {magic!r}")
    if version != WAL_VERSION:
        raise PersistenceError(f"WAL {path}: unsupported version {version}")
    contents = WalContents(generation=generation, good_end=_HEADER.size)
    offset = _HEADER.size
    while offset < len(data):
        if offset + _RECORD.size > len(data):
            contents.torn = True
            break
        length, crc = _RECORD.unpack_from(data, offset)
        payload_start = offset + _RECORD.size
        payload_end = payload_start + length
        if length > _MAX_RECORD_BYTES or payload_end > len(data):
            contents.torn = True
            break
        payload = data[payload_start:payload_end]
        if zlib.crc32(payload) != crc:
            contents.torn = True
            break
        try:
            record = decode_value(payload)
        except Exception:
            contents.torn = True
            break
        if not isinstance(record, dict):
            contents.torn = True
            break
        contents.records.append(record)
        contents.record_offsets.append(offset)
        offset = payload_end
        contents.good_end = offset
    return contents


# --------------------------------------------------------------------------- #
# writing
# --------------------------------------------------------------------------- #
class WriteAheadLog:
    """Append-side handle on a WAL file.

    Opened by recovery (:func:`repro.sqldb.persist.recovery.recover`), which
    decides whether the existing log is replayed, truncated past a torn tail,
    or reset to a new generation.  All methods are thread-safe; the database
    additionally serialises statements under its own lock.
    """

    def __init__(self, path: str | os.PathLike[str], *,
                 fsync_batch: int = DEFAULT_FSYNC_BATCH,
                 fs: faults.FileSystem | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.path = Path(path)
        self.fsync_batch = max(1, int(fsync_batch))
        self._file: Any = None
        self._pending = 0
        self._lock = threading.Lock()
        self.records_appended = 0
        self._fs = fs
        # latency histograms (no-ops on the default disabled registry)
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._h_append = registry.histogram("persist.wal_append_us")
        self._h_fsync = registry.histogram("persist.wal_fsync_us")
        #: Set to the failure reason after an fsync the disk rejected.  A
        #: failed fsync leaves the page cache in an unknown state — the
        #: kernel may already have dropped the dirty pages — so retrying it
        #: and reporting success would claim durability the disk never
        #: confirmed (the "fsyncgate" failure mode).  The log seals instead:
        #: every further append/flush raises until the store is reopened and
        #: recovery re-reads what actually made it to disk.
        self._failed: str | None = None

    @property
    def fs(self) -> faults.FileSystem:
        return self._fs or faults.current_fs()

    @property
    def closed(self) -> bool:
        return self._file is None

    @property
    def failed(self) -> str | None:
        """Why the log sealed itself (``None`` while healthy)."""
        return self._failed

    def _check_usable(self) -> None:
        if self._failed is not None:
            raise PersistenceError(
                f"WAL {self.path} is sealed after a failed fsync "
                f"({self._failed}); durability cannot be re-established "
                "without reopening the database")

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def open_at(self, good_end: int) -> None:
        """Open for appending at ``good_end``, truncating anything beyond it
        (the discarded torn tail must not precede future intact records)."""
        with self._lock:
            if self._file is not None:
                raise PersistenceError(f"WAL {self.path} is already open")
            self._file = self.fs.open(self.path, "r+b")
            self._file.truncate(good_end)
            self._file.seek(good_end)

    def create(self, generation: int) -> None:
        """Create (or overwrite) the log with a fresh header; fsynced."""
        with self._lock:
            if self._file is not None:
                self._file.close()
            self._file = self.fs.open(self.path, "w+b")
            self._write_header(generation)

    def reset(self, generation: int) -> None:
        """Truncate to an empty log for a new checkpoint generation; fsynced.

        A reset that fails — the truncate, the header write, or its fsync —
        seals the log: the file may now hold a dirty mix of old records and
        a half-written header, and no further append could be honestly
        acknowledged against it.  (The store seals itself too: a reset only
        runs after a checkpoint swap, past the point of no return.)
        """
        with self._lock:
            if self._file is None:
                raise PersistenceError(f"WAL {self.path} is closed")
            self._check_usable()
            try:
                self._file.seek(0)
                self._file.truncate(0)
                self._write_header(generation)
            except PersistenceError:
                raise
            except OSError as exc:
                self._failed = f"reset failed: {exc}"
                raise PersistenceError(
                    f"WAL {self.path}: reset to generation {generation} "
                    f"failed ({exc})") from exc
            self._pending = 0

    def _write_header(self, generation: int) -> None:
        self._file.write(_HEADER.pack(WAL_MAGIC, WAL_VERSION, 0, generation))
        self._file.flush()
        self._sync()

    def close(self) -> None:
        """Fsync pending records (when healthy) and release the handle.

        The file handle is closed even when the final fsync fails — the
        caller gets the :class:`PersistenceError`, but never a leaked fd.
        """
        with self._lock:
            if self._file is None:
                return
            try:
                if self._failed is None and self._pending:
                    self._sync()
            finally:
                try:
                    self._file.close()
                except OSError:  # pragma: no cover - close-time disk failure
                    pass
                self._file = None

    # ------------------------------------------------------------------ #
    # appending
    # ------------------------------------------------------------------ #
    def append(self, record: dict[str, Any]) -> None:
        """Append one record; flushed to the OS always, fsynced per batch."""
        self.append_group([record])

    def append_group(self, records: Any) -> None:
        """Append an iterable of records as one all-or-nothing unit.

        Statement groups (chunked bulk loads, CTAS create+rows) must never
        end up partially on disk with a *complete*-looking final record:
        **any** failure — a frame write, the flush, or the batch ``fsync``
        itself — truncates the file back to where the group started, so
        recovery never sees a half group (or an unacknowledged one) that a
        later successful append would make look complete.  (A torn *final*
        frame needs no help — the checksum reader discards it.)

        Records are encoded and written one at a time, so a million-row
        load never holds more than one chunk's frame in memory here.
        """
        with self._lock:
            if self._file is None:
                raise PersistenceError(
                    f"WAL {self.path} is closed (database was closed?)")
            self._check_usable()
            append_started = perf_counter()
            group_start = self._file.tell()
            written = 0
            counted = False
            try:
                for record in records:
                    payload = encode_value(record)
                    if len(payload) > _MAX_RECORD_BYTES:
                        # the reader treats an over-large length as tail
                        # corruption and would silently discard the record
                        # on recovery — fail loudly at write time instead
                        # (callers chunk bulk loads into bounded records,
                        # so hitting this means a bug)
                        raise PersistenceError(
                            f"WAL record of {len(payload)} bytes exceeds "
                            f"the {_MAX_RECORD_BYTES}-byte record limit")
                    self._file.write(
                        _RECORD.pack(len(payload), zlib.crc32(payload))
                        + payload)
                    written += 1
                self._file.flush()
                self.records_appended += written
                self._pending += written
                counted = True
                if self._pending >= self.fsync_batch:
                    self._sync()
                # append latency includes the batch fsync when this group
                # triggered one — that is the latency a committer saw
                self._h_append.observe(perf_counter() - append_started)
            except BaseException as exc:
                if counted:
                    self.records_appended -= written
                    self._pending -= written
                try:
                    self._file.truncate(group_start)
                    self._file.seek(group_start)
                    self._file.flush()
                except OSError:  # pragma: no cover - disk-level failure
                    pass
                if counted and self._failed is not None and not self._pending:
                    # the batch fsync failed but covered ONLY this group's
                    # records, and the whole group was just truncated away:
                    # nothing unacknowledged remains whose durability a
                    # later fsync could falsely claim, so the log may
                    # honestly continue.  (With earlier records pending the
                    # seal stands — their pages may already be dropped.)
                    self._failed = None
                    raise PersistenceError(
                        f"WAL {self.path}: batch fsync failed; the "
                        "unacknowledged group was rolled back (no earlier "
                        "records were pending, so the log remains usable)"
                    ) from exc
                if isinstance(exc, OSError):
                    # EIO / ENOSPC / torn page mid-group: the whole group was
                    # truncated away, so nothing unacknowledged can surface
                    # on recovery and the log stays usable for new appends
                    raise PersistenceError(
                        f"WAL {self.path}: append failed ({exc}); the "
                        "unacknowledged group was rolled back") from exc
                raise

    def flush(self) -> None:
        """Force pending records to stable storage (group-commit barrier).

        Unlike a failed *append* fsync — where the whole unacknowledged
        group can be truncated away — the records behind a flush were
        already appended and acknowledged at flush-to-OS level, so there is
        nothing safe to truncate: a failed flush fsync seals the log.
        """
        with self._lock:
            if self._file is not None:
                self._check_usable()
                self._file.flush()
                if self._pending:
                    self._sync()

    def _sync(self) -> None:
        sync_started = perf_counter()
        try:
            self.fs.fsync(self._file)
        except OSError as exc:
            self._failed = f"fsync failed: {exc}"
            raise PersistenceError(
                f"WAL {self.path}: fsync to stable storage failed ({exc}); "
                "the log is sealed — a retry against the dirty page cache "
                "could claim durability the disk never confirmed") from exc
        self._h_fsync.observe(perf_counter() - sync_started)
        self._pending = 0
