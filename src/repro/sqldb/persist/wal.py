"""Write-ahead log: an append-only, checksummed record stream.

Every SQL-level mutation (DML and DDL) is appended to the log *after* it has
been applied in memory but before the statement's result is returned, so a
crash loses at most the records that were never written — never a record the
caller saw succeed and that a subsequent ``fsync`` confirmed durable.

File layout::

    +----------------------------------------------+
    | header: magic "REPROWAL" | u16 version       |
    |         u16 reserved     | u64 generation    |
    +----------------------------------------------+
    | record: u32 payload length | u32 crc32       |
    |         payload (value-codec encoded dict)   |
    +----------------------------------------------+
    | ...more records...                           |
    +----------------------------------------------+

Records are dictionaries encoded with the shared self-describing value codec
(:func:`repro.netproto.wire.encode_value`) — the same bytes-level codec the
client protocol uses, so the WAL introduces no parallel serialisation scheme.
The crc32 covers the payload only; a torn tail (crash mid-append) is detected
on read as a short header, short payload, or checksum mismatch, and everything
from the first bad record onward is discarded (those statements never
acknowledged durability).

``generation`` ties a log to one checkpoint of the database file: every
checkpoint bumps the generation and resets the log, so a stale log (crash
between the atomic file replace and the log reset) is recognised and ignored
instead of being replayed over a newer checkpoint.

Durability policy: ``fsync_batch`` groups commits — the file is flushed to the
OS on every append (a crash of *this process* loses nothing) but ``fsync`` to
stable storage happens every N records and at every checkpoint/close, which is
the classic group-commit trade between insert throughput and the window a
whole-machine crash can lose.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ...errors import PersistenceError
from ...netproto.wire import decode_value, encode_value
from .records import pack_mask, unpack_mask  # noqa: F401  (record-level API)

WAL_MAGIC = b"REPROWAL"
WAL_VERSION = 1

_HEADER = struct.Struct("<8sHHQ")   # magic, version, reserved, generation
_RECORD = struct.Struct("<II")      # payload length, payload crc32

#: Exposed for recovery's torn-header detection (a crash between the
#: truncate and the header write of a WAL reset leaves a shorter file).
HEADER_SIZE = _HEADER.size

#: fsync to stable storage every N appended records (and on flush/close).
DEFAULT_FSYNC_BATCH = 32

#: Upper bound on a single record payload; a length field beyond this is
#: treated as tail corruption rather than an attempt to allocate gigabytes.
_MAX_RECORD_BYTES = 1 << 30


# --------------------------------------------------------------------------- #
# reading
# --------------------------------------------------------------------------- #
@dataclass
class WalContents:
    """The readable prefix of a write-ahead log."""

    generation: int
    records: list[dict[str, Any]] = field(default_factory=list)
    #: Start offset of each record in ``records`` — recovery truncates back
    #: to a record boundary when it discards an incomplete record group.
    record_offsets: list[int] = field(default_factory=list)
    #: File offset just past the last intact record — the truncation point
    #: appends resume from after a torn tail.
    good_end: int = 0
    #: True when trailing bytes had to be discarded (torn/corrupt tail).
    torn: bool = False


def read_wal(path: str | os.PathLike[str]) -> WalContents:
    """Read every intact record of a WAL file, discarding a torn tail.

    Raises :class:`PersistenceError` only when the *header* is unreadable —
    that is not a torn append but a file that was never a WAL (or lost its
    first sectors, in which case no record boundary is trustworthy).
    """
    data = Path(path).read_bytes()
    if len(data) < _HEADER.size:
        raise PersistenceError(f"WAL {path}: truncated header")
    magic, version, _reserved, generation = _HEADER.unpack_from(data, 0)
    if magic != WAL_MAGIC:
        raise PersistenceError(f"WAL {path}: bad magic {magic!r}")
    if version != WAL_VERSION:
        raise PersistenceError(f"WAL {path}: unsupported version {version}")
    contents = WalContents(generation=generation, good_end=_HEADER.size)
    offset = _HEADER.size
    while offset < len(data):
        if offset + _RECORD.size > len(data):
            contents.torn = True
            break
        length, crc = _RECORD.unpack_from(data, offset)
        payload_start = offset + _RECORD.size
        payload_end = payload_start + length
        if length > _MAX_RECORD_BYTES or payload_end > len(data):
            contents.torn = True
            break
        payload = data[payload_start:payload_end]
        if zlib.crc32(payload) != crc:
            contents.torn = True
            break
        try:
            record = decode_value(payload)
        except Exception:
            contents.torn = True
            break
        if not isinstance(record, dict):
            contents.torn = True
            break
        contents.records.append(record)
        contents.record_offsets.append(offset)
        offset = payload_end
        contents.good_end = offset
    return contents


# --------------------------------------------------------------------------- #
# writing
# --------------------------------------------------------------------------- #
class WriteAheadLog:
    """Append-side handle on a WAL file.

    Opened by recovery (:func:`repro.sqldb.persist.recovery.recover`), which
    decides whether the existing log is replayed, truncated past a torn tail,
    or reset to a new generation.  All methods are thread-safe; the database
    additionally serialises statements under its own lock.
    """

    def __init__(self, path: str | os.PathLike[str], *,
                 fsync_batch: int = DEFAULT_FSYNC_BATCH) -> None:
        self.path = Path(path)
        self.fsync_batch = max(1, int(fsync_batch))
        self._file: Any = None
        self._pending = 0
        self._lock = threading.Lock()
        self.records_appended = 0

    @property
    def closed(self) -> bool:
        return self._file is None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def open_at(self, good_end: int) -> None:
        """Open for appending at ``good_end``, truncating anything beyond it
        (the discarded torn tail must not precede future intact records)."""
        with self._lock:
            if self._file is not None:
                raise PersistenceError(f"WAL {self.path} is already open")
            self._file = open(self.path, "r+b")
            self._file.truncate(good_end)
            self._file.seek(good_end)

    def create(self, generation: int) -> None:
        """Create (or overwrite) the log with a fresh header; fsynced."""
        with self._lock:
            if self._file is not None:
                self._file.close()
            self._file = open(self.path, "w+b")
            self._write_header(generation)

    def reset(self, generation: int) -> None:
        """Truncate to an empty log for a new checkpoint generation; fsynced."""
        with self._lock:
            if self._file is None:
                raise PersistenceError(f"WAL {self.path} is closed")
            self._file.seek(0)
            self._file.truncate(0)
            self._write_header(generation)
            self._pending = 0

    def _write_header(self, generation: int) -> None:
        self._file.write(_HEADER.pack(WAL_MAGIC, WAL_VERSION, 0, generation))
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        with self._lock:
            if self._file is None:
                return
            self._sync()
            self._file.close()
            self._file = None

    # ------------------------------------------------------------------ #
    # appending
    # ------------------------------------------------------------------ #
    def append(self, record: dict[str, Any]) -> None:
        """Append one record; flushed to the OS always, fsynced per batch."""
        self.append_group([record])

    def append_group(self, records: Any) -> None:
        """Append an iterable of records as one all-or-nothing unit.

        Statement groups (chunked bulk loads, CTAS create+rows) must never
        end up partially on disk with a *complete*-looking final record:
        **any** failure — a frame write, the flush, or the batch ``fsync``
        itself — truncates the file back to where the group started, so
        recovery never sees a half group (or an unacknowledged one) that a
        later successful append would make look complete.  (A torn *final*
        frame needs no help — the checksum reader discards it.)

        Records are encoded and written one at a time, so a million-row
        load never holds more than one chunk's frame in memory here.
        """
        with self._lock:
            if self._file is None:
                raise PersistenceError(
                    f"WAL {self.path} is closed (database was closed?)")
            group_start = self._file.tell()
            written = 0
            counted = False
            try:
                for record in records:
                    payload = encode_value(record)
                    if len(payload) > _MAX_RECORD_BYTES:
                        # the reader treats an over-large length as tail
                        # corruption and would silently discard the record
                        # on recovery — fail loudly at write time instead
                        # (callers chunk bulk loads into bounded records,
                        # so hitting this means a bug)
                        raise PersistenceError(
                            f"WAL record of {len(payload)} bytes exceeds "
                            f"the {_MAX_RECORD_BYTES}-byte record limit")
                    self._file.write(
                        _RECORD.pack(len(payload), zlib.crc32(payload))
                        + payload)
                    written += 1
                self._file.flush()
                self.records_appended += written
                self._pending += written
                counted = True
                if self._pending >= self.fsync_batch:
                    self._sync()
            except BaseException:
                if counted:
                    self.records_appended -= written
                    self._pending -= written
                try:
                    self._file.truncate(group_start)
                    self._file.seek(group_start)
                    self._file.flush()
                except OSError:  # pragma: no cover - disk-level failure
                    pass
                raise

    def flush(self) -> None:
        """Force pending records to stable storage (group-commit barrier)."""
        with self._lock:
            if self._file is not None:
                self._file.flush()
                self._sync()

    def _sync(self) -> None:
        os.fsync(self._file.fileno())
        self._pending = 0
