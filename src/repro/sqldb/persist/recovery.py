"""Crash recovery: rebuild in-memory state from the file + write-ahead log.

Open sequence (ARIES reduced to its redo-only core — the engine applies
mutations in memory first and has no steal/no-force pages, so recovery is a
pure replay of logical records over the last checkpoint image):

1. A leftover ``*.tmp`` checkpoint file is deleted — an interrupted
   checkpoint never replaced the real file, so the temp image is garbage.
2. The database file, if present, is loaded through the shared columnar
   decode path (:func:`repro.sqldb.persist.format.read_database`); its
   footer names the checkpoint ``generation``.
3. The WAL, if present and of the *same* generation, is replayed record by
   record.  A torn tail (crash mid-append) is detected by checksum and
   discarded; the log is truncated back to the last intact record so new
   appends never follow garbage.  A WAL of an older generation is a crash
   between checkpoint-replace and log-reset: the image already contains
   everything the log describes, so the log is reset, not replayed.
4. Appending resumes on the recovered log.

Replay applies records through the same storage/catalog entry points the
executor uses (coercion included), with ``if_not_exists``/``if_exists``
semantics so replay is idempotent — re-opening after a crash *during*
recovery-triggered truncation converges to the same state.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ...errors import PersistenceError
from . import faults
from . import format as format_mod
from .wal import HEADER_SIZE, WalContents, WriteAheadLog, read_wal, unpack_mask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..database import Database


@dataclass
class RecoveryReport:
    """What one open did: image load plus WAL replay accounting."""

    generation: int = 0
    image_tables: int = 0
    image_rows: int = 0
    wal_records_replayed: int = 0
    wal_torn_tail: bool = False
    wal_torn_header: bool = False
    wal_was_stale: bool = False
    removed_tmp_file: bool = False
    #: Segments the salvage loader quarantined instead of failing the open
    #: (always empty without ``salvage=True``).
    quarantined_segments: int = 0
    #: WAL records skipped because they target a quarantined table (salvage
    #: only): their row indices refer to data the placeholders cannot carry.
    wal_records_skipped: int = 0


def wal_path_for(path: str | os.PathLike[str]) -> Path:
    return Path(str(path) + ".wal")


def tmp_path_for(path: str | os.PathLike[str]) -> Path:
    return Path(str(path) + ".tmp")


def recover(path: str | os.PathLike[str], database: "Database",
            wal: WriteAheadLog, *, salvage: bool = False,
            fs: faults.FileSystem | None = None) -> RecoveryReport:
    """Load the image, replay the WAL, and leave ``wal`` open for appends.

    ``salvage=True`` quarantines corrupt image segments instead of failing
    the open (see :func:`repro.sqldb.persist.format.read_database`); WAL
    replay still runs — replayed appends land after any quarantined range.
    """
    report = RecoveryReport()
    db_path = Path(path)
    tmp_path = tmp_path_for(path)
    if tmp_path.exists():
        # a checkpoint died before its atomic rename: the half-written image
        # is worthless, the previous image + WAL are still authoritative
        tmp_path.unlink()
        report.removed_tmp_file = True

    if db_path.exists():
        image = format_mod.read_database(db_path, database.storage,
                                         database.catalog,
                                         salvage=salvage, fs=fs)
        report.generation = image.generation
        report.image_tables = image.tables
        report.image_rows = image.rows
        report.quarantined_segments = len(image.quarantined)
        for name in database.catalog.names():
            database.udf_runtime.invalidate(name)

    if wal.path.exists():
        if wal.path.stat().st_size < HEADER_SIZE:
            # a crash between a WAL reset's truncate and its header write
            # leaves a short file; no record can exist past a truncate, so
            # recreating at the image's generation loses nothing
            report.wal_torn_header = True
            wal.create(report.generation)
            return report
        contents = read_wal(wal.path, fs=fs)
        if contents.generation == report.generation:
            good_end = _replay(database, contents, report, salvage=salvage)
            wal.open_at(good_end)
        else:
            # stale log from before the last completed checkpoint (the crash
            # hit between file replace and log reset): its effects are
            # already inside the image
            report.wal_was_stale = True
            wal.create(report.generation)
    else:
        wal.create(report.generation)
    return report


# --------------------------------------------------------------------------- #
# record replay
# --------------------------------------------------------------------------- #
def _replay(database: "Database", contents: WalContents,
            report: RecoveryReport, *, salvage: bool = False) -> int:
    """Replay WAL records statement-atomically; returns the truncation point.

    A bulk statement is logged as a *group* of consecutive records — every
    record but the last carries ``"more": True`` (the executor holds the
    database lock for the whole statement, so groups are never interleaved).
    A group is applied only once its final record is present: a tail that
    ends inside a group is discarded and truncated away exactly like a torn
    record, because replaying a prefix would recover a partially-applied
    statement no committed execution could produce.

    In salvage mode, records that insert into / delete from / update a
    *quarantined* table are skipped: their row indices refer to real values
    the NULL placeholders cannot stand in for.  TRUNCATE and DROP still
    apply — they discard the quarantine along with the data, so records
    after them replay normally.
    """
    pending: list[dict[str, Any]] = []
    pending_start = contents.good_end
    replayed = 0
    skipped = 0

    def _apply(record: dict[str, Any]) -> None:
        nonlocal replayed, skipped
        if salvage and _targets_quarantined(database, record):
            skipped += 1
            return
        apply_record(database, record)
        replayed += 1

    for record, offset in zip(contents.records, contents.record_offsets):
        if record.get("more"):
            if not pending:
                pending_start = offset
            pending.append(record)
            continue
        for part in pending:
            _apply(part)
        pending.clear()
        _apply(record)
    report.wal_records_replayed = replayed
    report.wal_records_skipped = skipped
    report.wal_torn_tail = contents.torn or bool(pending)
    if pending:
        # the group's final record never made it to disk: discard the prefix
        return pending_start
    return contents.good_end


def _targets_quarantined(database: "Database", record: dict[str, Any]) -> bool:
    """Whether a row-level record addresses a table with quarantined rows."""
    if record.get("op") not in ("insert", "delete", "update"):
        return False
    name = str(record.get("table", ""))
    storage = database.storage
    if not storage.has_table(name):
        return False
    return bool(storage.table(name).quarantined)


def apply_record(database: "Database", record: dict[str, Any]) -> None:
    """Apply one logical WAL record to the database's in-memory state.

    Mutations go through the storage layer's public entry points, so cache
    invalidation and value coercion behave exactly as they did when the
    original statement ran.
    """
    op = record.get("op")
    storage = database.storage
    try:
        if op == "create_table":
            storage.create_table(
                format_mod.schema_from_record(record["schema"]),
                if_not_exists=True)
        elif op == "drop_table":
            storage.drop_table(str(record["name"]), if_exists=True)
        elif op == "insert":
            storage.table(str(record["table"])).insert_rows(record["rows"])
        elif op == "delete":
            table = storage.table(str(record["table"]))
            keep = unpack_mask(record["keep"], int(record["count"]))
            table.delete_rows(keep)
        elif op == "truncate":
            storage.table(str(record["table"])).truncate()
        elif op == "update":
            _apply_update(database, record)
        elif op == "create_function":
            signature = format_mod.signature_from_record(record["signature"])
            database.catalog.register(signature, replace=True)
            database.udf_runtime.invalidate(signature.name)
        elif op == "drop_function":
            name = str(record["name"])
            database.catalog.drop(name, if_exists=True)
            database.udf_runtime.invalidate(name)
        else:
            raise PersistenceError(f"unknown WAL record op {op!r}")
    except PersistenceError:
        raise
    except Exception as exc:
        raise PersistenceError(
            f"WAL replay failed on {op!r} record: {exc}") from exc


def _apply_update(database: "Database", record: dict[str, Any]) -> None:
    table = database.storage.table(str(record["table"]))
    count = int(record["count"])
    selected = [int(index) for index in record["indices"]]
    mask = [False] * count
    for index in selected:
        mask[index] = True
    assignments: dict[str, list[Any]] = {}
    for column_name, values in record["columns"].items():
        if len(values) != len(selected):
            raise PersistenceError(
                f"UPDATE record for {record['table']!r}.{column_name!r}: "
                f"{len(values)} values for {len(selected)} selected rows")
        # expand back to a full-length list; unselected slots are never read
        full: list[Any] = [None] * count
        for index, value in zip(selected, values):
            full[index] = value
        assignments[column_name] = full
    table.update_rows(mask, assignments)


def open_wal_contents(path: str | os.PathLike[str]) -> WalContents:
    """Debugging/test helper: the readable contents of a database's WAL."""
    return read_wal(wal_path_for(path))
