"""Checkpointing: rewrite the database image atomically, then reset the WAL.

The sequence is crash-safe at every boundary:

1. The full image (next generation) is written to ``<path>.tmp`` and fsynced.
   A crash here leaves the old image + WAL intact; recovery deletes the temp.
2. ``os.replace`` swaps the temp over the real file — atomic on POSIX and
   Windows — and the directory entry is fsynced so the rename itself is
   durable.  A crash *after* this point leaves a new image with an old-
   generation WAL; recovery sees the generation mismatch and resets the log
   instead of replaying records the image already contains.
3. The WAL is reset to the new generation (truncate + fresh header, fsynced).

Segment encoding reuses the live scan caches, so a checkpoint right after a
big query is mostly I/O; conversely it leaves every cache warm.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from ...errors import CorruptionError, PersistenceError
from . import faults
from . import format as format_mod
from .recovery import tmp_path_for
from .wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..database import Database


@dataclass
class CheckpointStats:
    """Outcome of one checkpoint (surfaced by benchmarks and the server)."""

    generation: int
    seconds: float
    tables: int
    segments: int
    rows: int
    file_bytes: int
    wal_records_truncated: int
    #: Time spent writing + fsyncing the temp image (the bulk of the work;
    #: the remainder of ``seconds`` is the atomic swap + WAL reset).
    prepare_seconds: float = 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "generation": self.generation,
            "seconds": round(self.seconds, 6),
            "prepare_seconds": round(self.prepare_seconds, 6),
            "tables": self.tables,
            "segments": self.segments,
            "rows": self.rows,
            "file_bytes": self.file_bytes,
            "wal_records_truncated": self.wal_records_truncated,
        }


@dataclass
class PreparedCheckpoint:
    """A fully-written, fsynced temp image awaiting the atomic swap.

    Until :func:`commit_checkpoint` runs, nothing durable has changed: a
    failure while preparing (ENOSPC, encode error) leaves the old image and
    WAL authoritative, so the caller may simply retry later.  Failures
    *after* the swap are the dangerous ones — see the module docstring.
    """

    generation: int
    tmp_path: Path
    stats: format_mod.WriteStats
    started: float
    #: ``perf_counter`` reading when the temp image finished (fsync done).
    prepared_at: float = 0.0


def prepare_checkpoint(path: str | os.PathLike[str], database: "Database", *,
                       generation: int,
                       segment_rows: int = format_mod.DEFAULT_SEGMENT_ROWS,
                       codec: str = format_mod.DEFAULT_CODEC,
                       fs: faults.FileSystem | None = None
                       ) -> PreparedCheckpoint:
    """Write and fsync the next-generation image to ``<path>.tmp``."""
    started = time.perf_counter()
    fs = fs or faults.current_fs()
    quarantined = _quarantined_tables(database)
    if quarantined:
        # writing an image from a salvaged database would launder its NULL
        # placeholder rows into a "healthy" file; the corruption must be
        # dropped (DROP/TRUNCATE the affected tables) before a new image
        raise CorruptionError(
            f"cannot write a database image while tables have quarantined "
            f"row ranges: {', '.join(sorted(quarantined))} (drop or "
            "truncate them first)", table=sorted(quarantined)[0])
    tmp_path = tmp_path_for(path)
    try:
        with fs.open(tmp_path, "wb") as handle:
            stats = format_mod.write_database(
                handle, database.storage, database.catalog,
                generation=generation, segment_rows=segment_rows, codec=codec)
            handle.flush()
            fs.fsync(handle)
    except BaseException as exc:
        # nothing durable changed; don't leave a half-written temp around
        try:
            tmp_path.unlink()
        except OSError:
            pass
        if isinstance(exc, OSError):
            raise PersistenceError(
                f"checkpoint image write to {tmp_path} failed ({exc}); the "
                "previous image and WAL remain authoritative — retryable"
            ) from exc
        raise
    return PreparedCheckpoint(generation=generation, tmp_path=tmp_path,
                              stats=stats, started=started,
                              prepared_at=time.perf_counter())


def _quarantined_tables(database: "Database") -> set[str]:
    storage = database.storage
    return {name for name in storage.table_names()
            if getattr(storage.table(name), "quarantined", None)}


def swap_image(path: str | os.PathLike[str],
               prepared: PreparedCheckpoint, *,
               fs: faults.FileSystem | None = None) -> None:
    """Atomically install the prepared image over the database file.

    This is the point of no return: before it, a failure leaves the old
    image + WAL authoritative (retryable); after it, the WAL is one
    generation behind the image and must be reset before any new append.
    """
    db_path = Path(path)
    fs = fs or faults.current_fs()
    try:
        fs.replace(prepared.tmp_path, db_path)
    except BaseException as exc:
        # nothing durable changed; drop the temp so recovery has no
        # leftovers to clean (best-effort: it may be what failed)
        try:
            prepared.tmp_path.unlink()
        except OSError:
            pass
        if isinstance(exc, OSError):
            raise PersistenceError(
                f"atomic swap of {prepared.tmp_path} over {db_path} failed "
                f"({exc}); the previous image remains authoritative"
            ) from exc
        raise
    _fsync_directory(db_path.parent)


def reset_wal(prepared: PreparedCheckpoint,
              wal: WriteAheadLog) -> CheckpointStats:
    """Reset the WAL to the new image's generation (post-swap step)."""
    truncated = wal.records_appended
    wal.reset(prepared.generation)
    wal.records_appended = 0
    stats = prepared.stats
    return CheckpointStats(
        generation=prepared.generation,
        seconds=time.perf_counter() - prepared.started,
        tables=stats.tables,
        segments=stats.segments,
        rows=stats.rows,
        file_bytes=stats.file_bytes,
        wal_records_truncated=truncated,
        prepare_seconds=max(0.0, prepared.prepared_at - prepared.started),
    )


def commit_checkpoint(path: str | os.PathLike[str],
                      prepared: PreparedCheckpoint,
                      wal: WriteAheadLog) -> CheckpointStats:
    """Atomically swap the prepared image in, then reset the WAL."""
    swap_image(path, prepared)
    return reset_wal(prepared, wal)


def write_checkpoint(path: str | os.PathLike[str], database: "Database",
                     wal: WriteAheadLog, *, generation: int,
                     segment_rows: int = format_mod.DEFAULT_SEGMENT_ROWS,
                     codec: str = format_mod.DEFAULT_CODEC) -> CheckpointStats:
    """Convenience: prepare + commit in one call (tooling/tests)."""
    prepared = prepare_checkpoint(path, database, generation=generation,
                                  segment_rows=segment_rows, codec=codec)
    return commit_checkpoint(path, prepared, wal)


@dataclass
class BackupStats:
    """Outcome of one online backup (``BACKUP TO`` / ``Database.backup``)."""

    path: str
    generation: int
    seconds: float
    tables: int
    segments: int
    rows: int
    file_bytes: int

    def as_dict(self) -> dict[str, float | int | str]:
        return {
            "path": self.path,
            "generation": self.generation,
            "seconds": round(self.seconds, 6),
            "tables": self.tables,
            "segments": self.segments,
            "rows": self.rows,
            "file_bytes": self.file_bytes,
        }


def backup_to(target: str | os.PathLike[str], database: "Database", *,
              generation: int,
              segment_rows: int = format_mod.DEFAULT_SEGMENT_ROWS,
              codec: str = format_mod.DEFAULT_CODEC,
              fs: faults.FileSystem | None = None) -> BackupStats:
    """Write a consistent standalone image of ``database`` at ``target``.

    Exactly the checkpoint machinery pointed at a different path: the image
    is prepared at ``<target>.tmp`` (fsynced), then atomically renamed into
    place with the directory entry fsynced — so a crash mid-backup leaves
    either no target file or a complete one, never a half image that looks
    restorable, and the orphaned ``.tmp`` follows the same naming convention
    recovery already cleans up.  The backup carries the *next* generation:
    if it is ever copied over the live file, a leftover same-path WAL is
    recognised as stale and reset instead of being replayed over newer data.
    The live image, WAL, and store state are never touched — a failed backup
    leaves the store fully usable.
    """
    prepared = prepare_checkpoint(target, database, generation=generation,
                                  segment_rows=segment_rows, codec=codec,
                                  fs=fs)
    swap_image(target, prepared, fs=fs)
    stats = prepared.stats
    return BackupStats(
        path=str(target),
        generation=generation,
        seconds=time.perf_counter() - prepared.started,
        tables=stats.tables,
        segments=stats.segments,
        rows=stats.rows,
        file_bytes=stats.file_bytes,
    )


def _fsync_directory(directory: Path) -> None:
    """Make the rename durable; best-effort where directories can't be opened."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)
