"""Disk fault injection — the storage-side twin of :mod:`repro.netproto.chaos`.

Every byte the persist subsystem moves goes through a :class:`FileSystem`
hook (``open`` / ``fsync`` / ``replace`` / ``read_bytes``) instead of the
builtins.  The default hook is a passthrough; tests install a
:class:`FaultyFS` — either globally with :func:`injected` (so a plain
``Database(path=...)`` open runs under faults) or per-store via the ``fs``
parameter threaded through ``wal.py`` / ``checkpoint.py`` / ``format.py``.

Faults follow the chaos-proxy discipline: they are keyed on *byte offsets*
and *1-indexed call counts*, never timers, so every failure is deterministic
and lands on the same write every run.  The menu mirrors what real disks do:

* ``fail_read_at_call`` / ``fail_write_at_call`` — EIO on the Nth call.
* ``enospc_at_byte``   — writes fail with ENOSPC once the file would grow
  past this many bytes (disk full mid-image); nothing of the failing block
  is written.
* ``torn_write_at_call`` — the Nth write stores only the first half of its
  buffer, then raises EIO (a torn page: power loss mid-write).
* ``short_write_at_call`` — the Nth write silently drops the second half of
  its buffer (a lying disk: only a later checksum can catch it).
* ``corrupt_at_byte``  — the byte at this absolute file offset is XOR'd with
  0xFF as it is written (bit flip on the write path).
* ``corrupt_read_at_byte`` — the byte at this offset is flipped as the file
  is read back (bit rot caught at verify/open time).
* ``fail_fsync_at_call`` — the Nth fsync raises EIO, *and every later one
  too* until :meth:`FaultyFS.heal` — after a failed fsync the page cache is
  in an unknown state, so pretending a retry could succeed would defeat the
  fsyncgate semantics the WAL is hardened against.
* ``fail_replace``     — ``os.replace`` (the checkpoint/backup atomic swap)
  raises EIO.

Like :class:`~repro.netproto.chaos.FaultyTransport`, none of this is
imported by production code paths beyond the passthrough default.
"""

from __future__ import annotations

import errno
import os
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "DiskFaultSpec",
    "FaultyFS",
    "FaultyFile",
    "FileSystem",
    "current_fs",
    "injected",
    "install_fs",
    "reset_fs",
]


class FileSystem:
    """The passthrough file-system hook the persist layer writes through."""

    def open(self, path: str | os.PathLike[str], mode: str) -> Any:
        return open(path, mode)

    def fsync(self, handle: Any) -> None:
        os.fsync(handle.fileno())

    def replace(self, source: str | os.PathLike[str],
                target: str | os.PathLike[str]) -> None:
        os.replace(source, target)

    def read_bytes(self, path: str | os.PathLike[str]) -> bytes:
        return Path(path).read_bytes()


#: The active hook.  Modules resolve it per operation (never cached at
#: construction), so installing a FaultyFS affects already-open stores too.
_ACTIVE: FileSystem = FileSystem()


def current_fs() -> FileSystem:
    """The hook persist operations are currently routed through."""
    return _ACTIVE


def install_fs(fs: FileSystem) -> FileSystem:
    """Install ``fs`` as the process-wide hook; returns it for chaining."""
    global _ACTIVE
    _ACTIVE = fs
    return fs


def reset_fs() -> None:
    """Restore the passthrough hook."""
    install_fs(FileSystem())


@contextmanager
def injected(fs: "FileSystem") -> Iterator["FileSystem"]:
    """Run a block with ``fs`` installed, restoring the previous hook after."""
    previous = current_fs()
    install_fs(fs)
    try:
        yield fs
    finally:
        install_fs(previous)


@dataclass
class DiskFaultSpec:
    """What a :class:`FaultyFS` does to files whose name contains ``match``.

    Call counts are 1-indexed across the filesystem's lifetime and counted
    per fault point (reads, writes, fsyncs each have their own counter);
    byte offsets are absolute file positions.
    """

    #: Only files whose path contains this substring are faulted
    #: (e.g. ``".wal"``, ``".tmp"``); ``None`` faults every file.
    match: str | None = None
    #: Raise EIO on the Nth read / write call (``None`` disables).
    fail_read_at_call: int | None = None
    fail_write_at_call: int | None = None
    #: Writes fail with ENOSPC once the file would grow past this offset.
    enospc_at_byte: int | None = None
    #: The Nth write stores half its buffer, then raises EIO (torn page).
    torn_write_at_call: int | None = None
    #: The Nth write silently drops the second half of its buffer.
    short_write_at_call: int | None = None
    #: XOR the byte at this absolute offset with 0xFF as it is written.
    corrupt_at_byte: int | None = None
    #: XOR the byte at this absolute offset with 0xFF as it is read back.
    corrupt_read_at_byte: int | None = None
    #: The Nth fsync raises EIO — and every later one, until healed.
    fail_fsync_at_call: int | None = None
    #: ``os.replace`` (atomic swap) raises EIO.
    fail_replace: bool = False

    def matches(self, path: str | os.PathLike[str]) -> bool:
        return self.match is None or self.match in str(path)


def _eio(operation: str) -> OSError:
    return OSError(errno.EIO, f"injected I/O error on {operation}")


class FaultyFile:
    """Wraps one file handle, applying the spec's write/read faults."""

    def __init__(self, inner: Any, fs: "FaultyFS") -> None:
        self._inner = inner
        self._fs = fs

    def write(self, data: bytes) -> int:
        fs, spec = self._fs, self._fs.spec
        fs.writes += 1
        position = self._inner.tell()
        if spec.fail_write_at_call is not None \
                and fs.writes == spec.fail_write_at_call:
            fs.faults_fired += 1
            raise _eio("write")
        if spec.enospc_at_byte is not None \
                and position + len(data) > spec.enospc_at_byte:
            fs.faults_fired += 1
            raise OSError(errno.ENOSPC, "injected disk full")
        if spec.torn_write_at_call is not None \
                and fs.writes == spec.torn_write_at_call:
            fs.faults_fired += 1
            self._inner.write(data[:len(data) // 2])
            self._inner.flush()
            raise _eio("write (torn)")
        if spec.short_write_at_call is not None \
                and fs.writes == spec.short_write_at_call:
            fs.faults_fired += 1
            self._inner.write(data[:len(data) // 2])
            return len(data)  # the lie a bad disk tells
        if spec.corrupt_at_byte is not None \
                and position <= spec.corrupt_at_byte < position + len(data):
            fs.faults_fired += 1
            index = spec.corrupt_at_byte - position
            data = data[:index] + bytes([data[index] ^ 0xFF]) + data[index + 1:]
        return self._inner.write(data)

    def read(self, *args: Any) -> bytes:
        fs, spec = self._fs, self._fs.spec
        fs.reads += 1
        if spec.fail_read_at_call is not None \
                and fs.reads == spec.fail_read_at_call:
            fs.faults_fired += 1
            raise _eio("read")
        return self._inner.read(*args)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._inner.close()


class FaultyFS(FileSystem):
    """A :class:`FileSystem` that injects :class:`DiskFaultSpec` faults."""

    def __init__(self, spec: DiskFaultSpec | None = None) -> None:
        self.spec = spec or DiskFaultSpec()
        self.reads = 0
        self.writes = 0
        self.fsyncs = 0
        self.faults_fired = 0

    def heal(self) -> None:
        """Clear every pending fault; subsequent calls pass through."""
        self.spec = DiskFaultSpec(match=self.spec.match)

    def open(self, path: str | os.PathLike[str], mode: str) -> Any:
        handle = open(path, mode)
        if not self.spec.matches(path):
            return handle
        return FaultyFile(handle, self)

    def fsync(self, handle: Any) -> None:
        name = getattr(handle, "name", "")
        if not self.spec.matches(name):
            os.fsync(handle.fileno())
            return
        self.fsyncs += 1
        spec = self.spec
        if spec.fail_fsync_at_call is not None \
                and self.fsyncs >= spec.fail_fsync_at_call:
            # a failed fsync stays failed: the kernel may have dropped the
            # dirty pages, so no later fsync can honestly claim durability
            self.faults_fired += 1
            raise _eio("fsync")
        os.fsync(handle.fileno())

    def replace(self, source: str | os.PathLike[str],
                target: str | os.PathLike[str]) -> None:
        if self.spec.fail_replace and (self.spec.matches(source)
                                       or self.spec.matches(target)):
            self.faults_fired += 1
            raise _eio("replace")
        os.replace(source, target)

    def read_bytes(self, path: str | os.PathLike[str]) -> bytes:
        data = Path(path).read_bytes()
        if not self.spec.matches(path):
            return data
        spec = self.spec
        self.reads += 1
        if spec.fail_read_at_call is not None \
                and self.reads == spec.fail_read_at_call:
            self.faults_fired += 1
            raise _eio("read")
        offset = spec.corrupt_read_at_byte
        if offset is not None and 0 <= offset < len(data):
            self.faults_fired += 1
            data = data[:offset] + bytes([data[offset] ^ 0xFF]) + data[offset + 1:]
        return data
