"""Single-file columnar database format.

One database = one file.  The paper's lesson for the wire — serialise columns
as contiguous typed buffers so cost scales with bytes, not Python objects —
is exactly the right segment format for disk, so segments *are* columnar
chunk blobs produced by the shared :mod:`repro.netproto.columnar` encoders
(typed buffers, null bitmaps, dictionary-encoded strings, per-column
compression).  There is deliberately no second codec: a segment read back
from disk goes through the very same ``decode_chunk`` path a wire chunk does.

File layout::

    +--------------------------------------------------+
    | header:  magic "REPRODB1" | u16 version          |
    |          u16 flags        | u32 reserved         |
    +--------------------------------------------------+
    | segment: columnar chunk blob (self-contained:    |
    |          dictionaries inlined per segment)       |
    +--------------------------------------------------+
    | ...one blob per `segment_rows` rows per table... |
    +--------------------------------------------------+
    | footer:  value-codec catalog (schemas, function  |
    |          signatures, per-segment index entries   |
    |          {offset, length, rows, crc32})          |
    +--------------------------------------------------+
    | tail:    u64 footer offset | u32 footer length   |
    |          u32 footer crc32  | magic "REPRODB1"    |
    +--------------------------------------------------+

The fixed-size tail makes open cost proportional to the catalog, not the
data: seek to the end, verify the magic, read the footer, and the segment
index tells you where every block lives (cf. block-grid storage indexes).
Every segment carries its own crc32 so corruption is pinned to a block and
reported precisely instead of surfacing as a numpy shape error three layers
later.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, BinaryIO

from ...errors import CorruptionError, PersistenceError
from ...netproto import compression as compression_mod
from ...netproto.columnar import ChunkEncoder, decode_chunk
from ...netproto.wire import decode_value, encode_value
from ..catalog import FunctionCatalog
from ..result import QueryResult, ResultColumn
from ..storage import QuarantinedRange, Storage
from ..vector import Vector
from . import faults
from .records import (
    schema_from_record,
    schema_to_record,
    signature_from_record,
    signature_to_record,
)

DB_MAGIC = b"REPRODB1"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<8sHHI")    # magic, version, flags, reserved
_TAIL = struct.Struct("<QII8s")      # footer offset, footer length, crc, magic

#: Rows per on-disk segment.  Matches the wire default chunk size: reopen
#: decodes block-at-a-time with the same cost profile as result streaming.
DEFAULT_SEGMENT_ROWS = 65536

#: Segments are compressed per column through the shared codec layer.
DEFAULT_CODEC = compression_mod.CODEC_ZLIB


# --------------------------------------------------------------------------- #
# writing
# --------------------------------------------------------------------------- #
@dataclass
class WriteStats:
    """What one database image write produced (checkpoint reporting)."""

    tables: int = 0
    segments: int = 0
    rows: int = 0
    file_bytes: int = 0
    segment_bytes: int = 0
    raw_bytes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "tables": self.tables, "segments": self.segments,
            "rows": self.rows, "file_bytes": self.file_bytes,
            "segment_bytes": self.segment_bytes, "raw_bytes": self.raw_bytes,
        }


def _table_result(table: Any) -> QueryResult:
    """A table's columns as a :class:`QueryResult` for the chunk encoder.

    Vector-backed columns reuse the storage layer's cached scans, so a
    checkpoint shares buffers with query execution instead of re-converting
    every value; the string dictionary in particular ships zero-copy.
    """
    return QueryResult([
        ResultColumn.from_vector(column.name, column.sql_type,
                                 column.to_vector())
        for column in table.columns
    ])


def write_database(file: BinaryIO, storage: Storage, catalog: FunctionCatalog,
                   *, generation: int,
                   segment_rows: int = DEFAULT_SEGMENT_ROWS,
                   codec: str = DEFAULT_CODEC) -> WriteStats:
    """Write a complete database image to ``file``; returns write stats.

    Atomicity is the caller's problem (see
    :mod:`repro.sqldb.persist.checkpoint` — write to a temp file, fsync,
    rename); this function only defines the bytes.
    """
    segment_rows = max(1, int(segment_rows))
    stats = WriteStats()
    file.write(_HEADER.pack(DB_MAGIC, FORMAT_VERSION, 0, 0))
    offset = _HEADER.size
    tables_meta: list[dict[str, Any]] = []
    for name in storage.table_names():
        table = storage.table(name)
        result = _table_result(table)
        row_count = table.row_count
        # A fresh shipped-dictionaries map per encoder would still share the
        # dictionary across this table's segments; clearing it per segment
        # forces the dictionary inline into *every* blob so each segment is
        # independently decodable (cold reads need no sibling segment).
        shipped: dict[int, Any] = {}
        encoder = ChunkEncoder(result, codec=codec, allow_dict=True,
                               shipped_dictionaries=shipped)
        segments: list[dict[str, int]] = []
        for start in range(0, row_count, segment_rows) or [0]:
            stop = min(start + segment_rows, row_count)
            shipped.clear()
            blob, raw = encoder.encode(start, stop)
            file.write(blob)
            segments.append({
                "offset": offset, "length": len(blob),
                "rows": stop - start, "crc": zlib.crc32(blob),
            })
            offset += len(blob)
            stats.segments += 1
            stats.segment_bytes += len(blob)
            stats.raw_bytes += raw
        tables_meta.append({
            "schema": schema_to_record(table.schema),
            "row_count": row_count,
            "segments": segments,
        })
        stats.tables += 1
        stats.rows += row_count
    footer = encode_value({
        "format_version": FORMAT_VERSION,
        "generation": int(generation),
        "segment_rows": segment_rows,
        "codec": codec,
        "tables": tables_meta,
        "functions": [signature_to_record(entry.signature)
                      for entry in _catalog_entries(catalog)],
    })
    file.write(footer)
    file.write(_TAIL.pack(offset, len(footer), zlib.crc32(footer), DB_MAGIC))
    stats.file_bytes = offset + len(footer) + _TAIL.size
    return stats


def _catalog_entries(catalog: FunctionCatalog) -> list[Any]:
    return [entry for entry in catalog.functions() if not entry.is_builtin]


# --------------------------------------------------------------------------- #
# reading
# --------------------------------------------------------------------------- #
@dataclass
class DatabaseImage:
    """The decoded footer of a database file plus load bookkeeping."""

    generation: int
    segment_rows: int
    tables: int = 0
    rows: int = 0
    functions: int = 0
    segments: int = 0
    table_meta: list[dict[str, Any]] = field(default_factory=list)
    #: Row ranges the salvage loader pinned a bad checksum to (empty on a
    #: clean load; only ever populated when ``salvage=True``).
    quarantined: list[QuarantinedRange] = field(default_factory=list)


def read_footer(data: bytes, path: str | os.PathLike[str]) -> dict[str, Any]:
    """Verify header + tail and return the decoded footer catalog."""
    if len(data) < _HEADER.size + _TAIL.size:
        raise PersistenceError(f"database file {path}: too short")
    magic, version, _flags, _reserved = _HEADER.unpack_from(data, 0)
    if magic != DB_MAGIC:
        raise PersistenceError(f"database file {path}: bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise PersistenceError(
            f"database file {path}: unsupported format version {version}")
    footer_offset, footer_len, footer_crc, tail_magic = _TAIL.unpack_from(
        data, len(data) - _TAIL.size)
    if tail_magic != DB_MAGIC:
        raise PersistenceError(
            f"database file {path}: bad tail magic (truncated file?)")
    footer_end = footer_offset + footer_len
    if footer_end != len(data) - _TAIL.size:
        raise PersistenceError(f"database file {path}: footer bounds mismatch")
    footer_bytes = data[footer_offset:footer_end]
    if zlib.crc32(footer_bytes) != footer_crc:
        raise PersistenceError(f"database file {path}: footer checksum mismatch")
    footer = decode_value(footer_bytes)
    if not isinstance(footer, dict):
        raise PersistenceError(f"database file {path}: footer is not a catalog")
    return footer


def _segment_fault(segment: dict[str, Any], data: bytes,
                   blob: bytes | None = None) -> str | None:
    """The integrity problem with one indexed segment, or ``None`` if sound."""
    seg_offset, seg_len = int(segment["offset"]), int(segment["length"])
    if blob is None:
        blob = data[seg_offset:seg_offset + seg_len]
    if len(blob) != seg_len:
        return (f"segment out of bounds ({seg_offset}+{seg_len} > "
                f"{len(data)} file bytes)")
    if zlib.crc32(blob) != int(segment["crc"]):
        return "segment checksum mismatch"
    return None


def read_database(path: str | os.PathLike[str], storage: Storage,
                  catalog: FunctionCatalog, *, salvage: bool = False,
                  fs: faults.FileSystem | None = None) -> DatabaseImage:
    """Load a database file into ``storage``/``catalog``; returns the image.

    ``storage`` is expected to be empty (a fresh open).  Segment checksums
    are verified before decode; decoding itself is the shared
    :func:`repro.netproto.columnar.decode_chunk` wire path.

    A corrupt segment normally fails the open with a
    :class:`~repro.errors.CorruptionError` naming the table, the segment's
    row range, and the file offset.  With ``salvage=True`` the bad segment
    is *quarantined* instead: its row range is filled with NULL placeholder
    rows (so later segments keep their row positions), recorded on the
    table, and every healthy table and segment still loads — touching the
    quarantined table then raises the same structured error at access time.
    The footer itself (and the fixed tail) cannot be salvaged: without a
    trustworthy segment index there are no row ranges to pin faults to.
    """
    try:
        data = (fs or faults.current_fs()).read_bytes(path)
    except OSError as exc:
        raise PersistenceError(
            f"database file {path}: read failed ({exc})") from exc
    footer = read_footer(data, path)
    image = DatabaseImage(generation=int(footer.get("generation", 0)),
                          segment_rows=int(footer.get("segment_rows",
                                                      DEFAULT_SEGMENT_ROWS)))
    image.table_meta = list(footer.get("tables", []))
    for table_meta in image.table_meta:
        schema = schema_from_record(table_meta["schema"])
        table = storage.create_table(schema)
        loaded = 0
        for segment in table_meta.get("segments", []):
            seg_offset = int(segment["offset"])
            seg_rows = int(segment["rows"])
            row_range = (loaded, loaded + seg_rows)
            blob = data[seg_offset:seg_offset + int(segment["length"])]
            fault = _segment_fault(segment, data, blob)
            if fault is None:
                try:
                    decoded_rows = _load_segment(table, blob, path)
                except PersistenceError as exc:
                    fault = str(exc)
                else:
                    loaded += decoded_rows
                    image.segments += 1
                    continue
            message = (f"database file {path}: {fault} "
                       f"(table {schema.name!r}, "
                       f"rows {row_range[0]}..{row_range[1]}, "
                       f"offset {seg_offset})")
            if not salvage:
                raise CorruptionError(message, table=schema.name,
                                      row_range=row_range, offset=seg_offset)
            # quarantine: NULL placeholders keep later segments' rows at
            # their original positions; the range is sealed on the table
            for column in table.columns:
                column.values.extend([None] * seg_rows)
                column.mark_dirty()
            table.quarantine(QuarantinedRange(
                table=schema.name, start_row=row_range[0],
                stop_row=row_range[1], offset=seg_offset, reason=message))
            image.quarantined.append(table.quarantined[-1])
            loaded += seg_rows
            image.segments += 1
        if loaded != int(table_meta.get("row_count", loaded)):
            raise PersistenceError(
                f"database file {path}: table {schema.name!r} row count "
                f"mismatch ({loaded} loaded)")
        image.tables += 1
        image.rows += loaded
    for record in footer.get("functions", []):
        signature = signature_from_record(record)
        catalog.register(signature, replace=True)
        image.functions += 1
    return image


def _load_segment(table: Any, blob: bytes,
                  path: str | os.PathLike[str]) -> int:
    """Decode one segment blob through the shared wire path into ``table``.

    Decode is two-phase: every column's value list is materialised before
    any column is touched, so a decode failure in column k can never leave
    columns 0..k-1 one segment longer than the rest (the salvage loader
    relies on a failed segment leaving the table exactly as it was).
    """
    try:
        row_count, decoded = decode_chunk(blob)
    except Exception as exc:
        raise PersistenceError(f"segment decode failed: {exc}") from exc
    names = [column.name.lower() for column in table.columns]
    if [c.name.lower() for c in decoded] != names:
        raise PersistenceError(
            f"database file {path}: segment columns do not match schema of "
            f"table {table.name!r}")
    column_values: list[list[Any]] = []
    for column, piece in zip(table.columns, decoded):
        data, mask = piece.materialise()
        if isinstance(data, Vector):
            values = data.to_list()
        elif isinstance(data, list):
            values = data if mask is None else _apply_mask(data, mask)
        else:  # ndarray
            values = data.tolist()
            if mask is not None:
                values = _apply_mask(values, mask)
        if len(values) != row_count:
            raise PersistenceError(
                f"database file {path}: segment column {column.name!r} "
                f"length mismatch")
        column_values.append(values)
    for column, values in zip(table.columns, column_values):
        # values came out of the storage layer once already (coerced on the
        # original insert), so they append verbatim; the scan caches of a
        # freshly created column are empty, but mark dirty anyway so partial
        # loads after a raised error can never serve a stale materialisation
        column.values.extend(values)
        column.mark_dirty()
    return row_count


def _apply_mask(values: list[Any], mask: Any) -> list[Any]:
    return [None if null else value for value, null in zip(values, mask)]


# --------------------------------------------------------------------------- #
# verification (the image half of the VERIFY statement)
# --------------------------------------------------------------------------- #
@dataclass
class TableVerify:
    """Per-table outcome of an image scrub."""

    name: str
    rows: int = 0
    segments: int = 0
    corrupt_segments: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.corrupt_segments == 0 and not self.errors


@dataclass
class ImageVerifyReport:
    """Outcome of re-checking every checksum of one database image."""

    path: str
    generation: int = 0
    segment_rows: int = 0
    #: Fatal file-level problem (bad magic, torn tail, footer checksum):
    #: nothing below the footer could be checked.
    error: str | None = None
    tables: list[TableVerify] = field(default_factory=list)
    #: Structured locations of every corrupt segment found.
    faults: list[QuarantinedRange] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None and all(t.ok for t in self.tables)


def verify_image(path: str | os.PathLike[str], *,
                 fs: faults.FileSystem | None = None) -> ImageVerifyReport:
    """Re-check header, tail, footer crc, and every segment crc of a file.

    Pure reads over the on-disk bytes — nothing is decoded into storage and
    no lock is taken, so a scrub can run next to live readers.  Faults are
    reported with the same (table, row range, offset) pinning the salvage
    loader uses.
    """
    report = ImageVerifyReport(path=str(path))
    try:
        data = (fs or faults.current_fs()).read_bytes(path)
        footer = read_footer(data, path)
    except (OSError, PersistenceError) as exc:
        report.error = str(exc)
        return report
    report.generation = int(footer.get("generation", 0))
    report.segment_rows = int(footer.get("segment_rows", DEFAULT_SEGMENT_ROWS))
    for table_meta in footer.get("tables", []):
        try:
            name = schema_from_record(table_meta["schema"]).name
        except Exception:  # footer passed crc, so this is a format bug
            name = "?"
        entry = TableVerify(name=name,
                            rows=int(table_meta.get("row_count", 0)))
        start_row = 0
        for segment in table_meta.get("segments", []):
            seg_rows = int(segment["rows"])
            fault = _segment_fault(segment, data)
            entry.segments += 1
            if fault is not None:
                entry.corrupt_segments += 1
                entry.errors.append(
                    f"{fault} (rows {start_row}..{start_row + seg_rows}, "
                    f"offset {int(segment['offset'])})")
                report.faults.append(QuarantinedRange(
                    table=name, start_row=start_row,
                    stop_row=start_row + seg_rows,
                    offset=int(segment["offset"]), reason=fault))
            start_row += seg_rows
        report.tables.append(entry)
    return report
