"""``repro.sqldb.persist`` — durable single-file storage for the engine.

The subsystem has four layers, glued together by :class:`PersistentStore`:

* :mod:`~repro.sqldb.persist.format`    — the single-file columnar image
  (segments are wire-format chunk blobs; footer carries catalog + index).
* :mod:`~repro.sqldb.persist.wal`       — the append-only checksummed
  write-ahead log with group-commit fsync batching.
* :mod:`~repro.sqldb.persist.checkpoint` — atomic image rewrite + WAL reset.
* :mod:`~repro.sqldb.persist.recovery`  — the open sequence: load image,
  replay the same-generation WAL, discard torn tails, resume appending.

``Database(path="file.db")`` owns one store; everything here is usable
standalone for tooling (offline inspection, backup verification).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING, Any

from dataclasses import dataclass

from ...errors import CorruptionError, PersistenceError
from ...obs import MetricsRegistry, NULL_REGISTRY
from . import faults
from .checkpoint import (
    BackupStats,
    CheckpointStats,
    backup_to,
    commit_checkpoint,
    prepare_checkpoint,
    reset_wal,
    swap_image,
    write_checkpoint,
)
from .format import (
    DEFAULT_CODEC,
    DEFAULT_SEGMENT_ROWS,
    ImageVerifyReport,
    TableVerify,
    read_database,
    verify_image,
    write_database,
)
from .recovery import RecoveryReport, recover, tmp_path_for, wal_path_for
from .wal import DEFAULT_FSYNC_BATCH, WriteAheadLog, read_wal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..database import Database

__all__ = [
    "BackupStats",
    "CheckpointStats",
    "CorruptionError",
    "DEFAULT_CODEC",
    "DEFAULT_FSYNC_BATCH",
    "DEFAULT_SEGMENT_ROWS",
    "ImageVerifyReport",
    "PersistenceError",
    "PersistentStore",
    "RecoveryReport",
    "TableVerify",
    "VerifyReport",
    "WriteAheadLog",
    "backup_to",
    "faults",
    "read_database",
    "read_wal",
    "recover",
    "tmp_path_for",
    "verify_image",
    "wal_path_for",
    "write_checkpoint",
    "write_database",
]


@dataclass
class VerifyReport:
    """Outcome of one ``VERIFY`` scrub: the image report plus the WAL's."""

    image: ImageVerifyReport
    wal_records: int = 0
    wal_torn: bool = False
    wal_error: str | None = None
    generation: int = 0

    @property
    def ok(self) -> bool:
        return self.image.ok and not self.wal_torn and self.wal_error is None

    @property
    def corrupt_segments(self) -> int:
        return len(self.image.faults)


class PersistentStore:
    """One database's durable state: the image file plus its WAL.

    Created by :class:`repro.sqldb.Database` when a ``path`` is given.
    ``open()`` runs recovery; :meth:`log` appends one logical mutation
    record; :meth:`checkpoint` rewrites the image and resets the log;
    :meth:`close` checkpoints once more and releases the file handles.
    """

    def __init__(self, path: str | os.PathLike[str], database: "Database", *,
                 segment_rows: int = DEFAULT_SEGMENT_ROWS,
                 codec: str = DEFAULT_CODEC,
                 fsync_batch: int = DEFAULT_FSYNC_BATCH,
                 salvage: bool = False,
                 fs: faults.FileSystem | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.path = Path(path)
        self.database = database
        self.segment_rows = max(1, int(segment_rows))
        self.codec = codec
        self.generation = 0
        self.salvage = bool(salvage)
        self._fs = fs
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._h_checkpoint = registry.histogram("persist.checkpoint_us")
        self.wal = WriteAheadLog(wal_path_for(self.path),
                                 fsync_batch=fsync_batch, fs=fs,
                                 metrics=metrics)
        self.last_recovery: RecoveryReport | None = None
        self.last_checkpoint: CheckpointStats | None = None
        self.last_verify: "VerifyReport | None" = None
        self.last_backup: BackupStats | None = None
        #: Fault-observability counters surfaced by ``SHOW STATS``.
        self.verify_runs = 0
        self.corruption_detected = 0
        self.backups_taken = 0
        self._closed = False
        self._lock_file: Any = None

    @property
    def fs(self) -> faults.FileSystem:
        return self._fs or faults.current_fs()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def open(self) -> RecoveryReport:
        """Run the recovery sequence and leave the WAL open for appends."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._acquire_lock()
        try:
            report = recover(self.path, self.database, self.wal,
                             salvage=self.salvage, fs=self._fs)
        except BaseException:
            self._release_lock()
            raise
        self.generation = report.generation
        self.last_recovery = report
        self.corruption_detected += report.quarantined_segments
        return report

    def _acquire_lock(self) -> None:
        """Take an exclusive advisory lock on ``<path>.lock``.

        Two live handles on the same file would append to one WAL and
        checkpoint over each other's images, silently losing acknowledged
        writes.  ``flock`` is released by the kernel when the process dies,
        so a crash never leaves a stale lock behind.  Platforms without
        ``fcntl`` (Windows) skip the guard rather than lose durability.
        """
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX
            return
        lock_path = Path(str(self.path) + ".lock")
        handle = open(lock_path, "a+b")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            raise PersistenceError(
                f"database file {self.path} is locked by another process "
                "(one writer per database file)") from None
        self._lock_file = handle

    def _release_lock(self) -> None:
        if self._lock_file is not None:
            try:
                self._lock_file.close()  # closing drops the flock
            finally:
                self._lock_file = None

    def close(self, *, checkpoint: bool = True) -> None:
        """Flush, optionally checkpoint, and release the WAL handle.

        A salvaged store with live quarantined ranges skips the closing
        checkpoint (writing an image would launder placeholder NULLs into a
        clean-looking file) and just flushes the WAL.  The handle and lock
        are released even when the final flush/checkpoint fails — the error
        still propagates, but nothing leaks.
        """
        if self._closed:
            return
        try:
            if checkpoint and not self.quarantined_tables():
                self.checkpoint()
            elif self.wal.failed is None:
                # a sealed log already reported its failure once; close
                # must not raise it again on the way out
                self.wal.flush()
        finally:
            self._closed = True
            try:
                self.wal.close()
            finally:
                self._release_lock()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------ #
    # logging + checkpointing
    # ------------------------------------------------------------------ #
    def log(self, record: dict[str, Any]) -> None:
        """Append one logical mutation record to the WAL."""
        self.log_group([record])

    def log_group(self, records: Any) -> None:
        """Append one statement's records (any iterable, consumed lazily)
        as an all-or-nothing group."""
        if self._closed:
            raise PersistenceError(
                f"database file {self.path} is closed; no further writes "
                "can be made durable")
        self.wal.append_group(records)

    def checkpoint(self) -> CheckpointStats:
        """Write a fresh image (next generation) and reset the WAL."""
        if self._closed:
            raise PersistenceError(f"database file {self.path} is closed")
        self.wal.flush()
        # failures while preparing or swapping leave the old image + WAL
        # fully intact (temp files are removed), so the store stays usable
        # and the checkpoint can simply be retried
        prepared = prepare_checkpoint(
            self.path, self.database, generation=self.generation + 1,
            segment_rows=self.segment_rows, codec=self.codec, fs=self._fs)
        swap_image(self.path, prepared, fs=self._fs)
        try:
            stats = reset_wal(prepared, self.wal)
        except BaseException:
            # past the point of no return: the new image is installed but
            # the WAL still carries the old generation.  Appending further
            # records there would make recovery classify them as stale and
            # drop them silently — seal the store instead.  The on-disk
            # pair (new image + stale WAL) is consistent.
            self._closed = True
            self.wal.close()
            self._release_lock()
            raise
        self.generation = stats.generation
        self.last_checkpoint = stats
        self._h_checkpoint.observe(stats.seconds)
        return stats

    # ------------------------------------------------------------------ #
    # integrity: scrub, quarantine inspection, backup
    # ------------------------------------------------------------------ #
    def verify(self) -> "VerifyReport":
        """Re-check every checksum of the image and WAL (online scrub).

        Reads only the on-disk bytes — no storage decode, no database lock —
        so it can run next to live readers.  The WAL half tolerates a torn
        tail only when it is the live, *open* log (an append may genuinely
        be in flight); on a closed store a torn tail is a fault.
        """
        if os.path.exists(self.path):
            image = verify_image(self.path, fs=self._fs)
        else:
            # the image file is created lazily by the first checkpoint —
            # a store that has never checkpointed is new, not corrupt
            image = ImageVerifyReport(path=str(self.path),
                                      generation=self.generation)
        report = VerifyReport(image=image, generation=image.generation)
        wal_path = self.wal.path
        if wal_path.exists():
            try:
                contents = read_wal(wal_path, fs=self._fs)
            except PersistenceError as exc:
                report.wal_error = str(exc)
            else:
                report.wal_records = len(contents.records)
                report.wal_torn = contents.torn
                if contents.generation != image.generation \
                        and image.error is None and not self._closed:
                    report.wal_error = (
                        f"WAL generation {contents.generation} does not "
                        f"match image generation {image.generation}")
        self.verify_runs += 1
        if not report.ok:
            self.corruption_detected += len(image.faults) or 1
        self.last_verify = report
        return report

    def quarantined_tables(self) -> dict[str, list[Any]]:
        """Live tables with quarantined row ranges (salvage leftovers)."""
        storage = self.database.storage
        result: dict[str, list[Any]] = {}
        for name in storage.table_names():
            quarantined = getattr(storage.table(name), "quarantined", None)
            if quarantined:
                result[name] = list(quarantined)
        return result

    def backup(self, target: str | os.PathLike[str]) -> BackupStats:
        """Write a consistent standalone image at ``target`` (online backup).

        Uses the checkpoint prepare/swap machinery against the target path
        (``<target>.tmp`` + fsync + atomic rename + directory fsync); the
        live image, WAL and generation are untouched, so any failure leaves
        the store fully usable.  The result is a plain database file —
        restore is simply ``Database(path=target)``.
        """
        if self._closed:
            raise PersistenceError(f"database file {self.path} is closed")
        target = Path(target)
        if target.resolve() == self.path.resolve():
            raise PersistenceError(
                "BACKUP target must differ from the live database path")
        self.wal.flush()
        stats = backup_to(target, self.database,
                          generation=self.generation + 1,
                          segment_rows=self.segment_rows, codec=self.codec,
                          fs=self._fs)
        self.backups_taken += 1
        self.last_backup = stats
        return stats

    def stats_snapshot(self) -> dict[str, int]:
        """Durability counters for ``SHOW STATS`` / the ``stats`` message."""
        return {
            "generation": self.generation,
            "wal_records": self.wal.records_appended,
            "wal_sealed": int(self.wal.failed is not None),
            "verify_runs": self.verify_runs,
            "corruption_detected": self.corruption_detected,
            "backups_taken": self.backups_taken,
            "quarantined_tables": len(self.quarantined_tables()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PersistentStore({str(self.path)!r}, "
                f"generation={self.generation}, closed={self._closed})")
