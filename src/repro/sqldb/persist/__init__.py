"""``repro.sqldb.persist`` — durable single-file storage for the engine.

The subsystem has four layers, glued together by :class:`PersistentStore`:

* :mod:`~repro.sqldb.persist.format`    — the single-file columnar image
  (segments are wire-format chunk blobs; footer carries catalog + index).
* :mod:`~repro.sqldb.persist.wal`       — the append-only checksummed
  write-ahead log with group-commit fsync batching.
* :mod:`~repro.sqldb.persist.checkpoint` — atomic image rewrite + WAL reset.
* :mod:`~repro.sqldb.persist.recovery`  — the open sequence: load image,
  replay the same-generation WAL, discard torn tails, resume appending.

``Database(path="file.db")`` owns one store; everything here is usable
standalone for tooling (offline inspection, backup verification).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ...errors import PersistenceError
from .checkpoint import (
    CheckpointStats,
    commit_checkpoint,
    prepare_checkpoint,
    reset_wal,
    swap_image,
    write_checkpoint,
)
from .format import (
    DEFAULT_CODEC,
    DEFAULT_SEGMENT_ROWS,
    read_database,
    write_database,
)
from .recovery import RecoveryReport, recover, wal_path_for
from .wal import DEFAULT_FSYNC_BATCH, WriteAheadLog, read_wal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..database import Database

__all__ = [
    "CheckpointStats",
    "DEFAULT_CODEC",
    "DEFAULT_FSYNC_BATCH",
    "DEFAULT_SEGMENT_ROWS",
    "PersistenceError",
    "PersistentStore",
    "RecoveryReport",
    "WriteAheadLog",
    "read_database",
    "read_wal",
    "recover",
    "wal_path_for",
    "write_checkpoint",
    "write_database",
]


class PersistentStore:
    """One database's durable state: the image file plus its WAL.

    Created by :class:`repro.sqldb.Database` when a ``path`` is given.
    ``open()`` runs recovery; :meth:`log` appends one logical mutation
    record; :meth:`checkpoint` rewrites the image and resets the log;
    :meth:`close` checkpoints once more and releases the file handles.
    """

    def __init__(self, path: str | os.PathLike[str], database: "Database", *,
                 segment_rows: int = DEFAULT_SEGMENT_ROWS,
                 codec: str = DEFAULT_CODEC,
                 fsync_batch: int = DEFAULT_FSYNC_BATCH) -> None:
        self.path = Path(path)
        self.database = database
        self.segment_rows = max(1, int(segment_rows))
        self.codec = codec
        self.generation = 0
        self.wal = WriteAheadLog(wal_path_for(self.path),
                                 fsync_batch=fsync_batch)
        self.last_recovery: RecoveryReport | None = None
        self.last_checkpoint: CheckpointStats | None = None
        self._closed = False
        self._lock_file: Any = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def open(self) -> RecoveryReport:
        """Run the recovery sequence and leave the WAL open for appends."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._acquire_lock()
        try:
            report = recover(self.path, self.database, self.wal)
        except BaseException:
            self._release_lock()
            raise
        self.generation = report.generation
        self.last_recovery = report
        return report

    def _acquire_lock(self) -> None:
        """Take an exclusive advisory lock on ``<path>.lock``.

        Two live handles on the same file would append to one WAL and
        checkpoint over each other's images, silently losing acknowledged
        writes.  ``flock`` is released by the kernel when the process dies,
        so a crash never leaves a stale lock behind.  Platforms without
        ``fcntl`` (Windows) skip the guard rather than lose durability.
        """
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX
            return
        lock_path = Path(str(self.path) + ".lock")
        handle = open(lock_path, "a+b")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            raise PersistenceError(
                f"database file {self.path} is locked by another process "
                "(one writer per database file)") from None
        self._lock_file = handle

    def _release_lock(self) -> None:
        if self._lock_file is not None:
            try:
                self._lock_file.close()  # closing drops the flock
            finally:
                self._lock_file = None

    def close(self, *, checkpoint: bool = True) -> None:
        """Flush, optionally checkpoint, and release the WAL handle."""
        if self._closed:
            return
        try:
            if checkpoint:
                self.checkpoint()
            else:
                self.wal.flush()
        finally:
            self.wal.close()
            self._release_lock()
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------ #
    # logging + checkpointing
    # ------------------------------------------------------------------ #
    def log(self, record: dict[str, Any]) -> None:
        """Append one logical mutation record to the WAL."""
        self.log_group([record])

    def log_group(self, records: Any) -> None:
        """Append one statement's records (any iterable, consumed lazily)
        as an all-or-nothing group."""
        if self._closed:
            raise PersistenceError(
                f"database file {self.path} is closed; no further writes "
                "can be made durable")
        self.wal.append_group(records)

    def checkpoint(self) -> CheckpointStats:
        """Write a fresh image (next generation) and reset the WAL."""
        if self._closed:
            raise PersistenceError(f"database file {self.path} is closed")
        self.wal.flush()
        # failures while preparing or swapping leave the old image + WAL
        # fully intact (temp files are removed), so the store stays usable
        # and the checkpoint can simply be retried
        prepared = prepare_checkpoint(
            self.path, self.database, generation=self.generation + 1,
            segment_rows=self.segment_rows, codec=self.codec)
        swap_image(self.path, prepared)
        try:
            stats = reset_wal(prepared, self.wal)
        except BaseException:
            # past the point of no return: the new image is installed but
            # the WAL still carries the old generation.  Appending further
            # records there would make recovery classify them as stale and
            # drop them silently — seal the store instead.  The on-disk
            # pair (new image + stale WAL) is consistent.
            self._closed = True
            self.wal.close()
            self._release_lock()
            raise
        self.generation = stats.generation
        self.last_checkpoint = stats
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PersistentStore({str(self.path)!r}, "
                f"generation={self.generation}, closed={self._closed})")
