"""Logical WAL/catalog record helpers shared by the executor and the store.

This module deliberately imports nothing from :mod:`repro.netproto`: the
executor (loaded with :mod:`repro.sqldb.database`) builds records with these
helpers, and pulling the wire stack in at that point would create an import
cycle (``netproto.server`` imports the database).  The byte-level encoding
of records lives in :mod:`repro.sqldb.persist.wal`.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ...errors import PersistenceError
from ..schema import ColumnDef, FunctionParameter, FunctionSignature, TableSchema
from ..types import ColumnType, SQLType


# --------------------------------------------------------------------------- #
# schema + function-signature records
# --------------------------------------------------------------------------- #
def schema_to_record(schema: TableSchema) -> dict[str, Any]:
    return {
        "name": schema.name,
        "columns": [[col.name, col.sql_type.value, col.col_type.nullable]
                    for col in schema.columns],
    }


def schema_from_record(record: dict[str, Any]) -> TableSchema:
    try:
        columns = [
            ColumnDef(name, ColumnType(SQLType(type_name), bool(nullable)))
            for name, type_name, nullable in record["columns"]
        ]
        return TableSchema(str(record["name"]), columns)
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"invalid table schema record: {exc}") from exc


def signature_to_record(signature: FunctionSignature) -> dict[str, Any]:
    return {
        "name": signature.name,
        "parameters": [[p.name, p.sql_type.value, p.number]
                       for p in signature.parameters],
        "returns_table": signature.returns_table,
        "return_columns": [[c.name, c.sql_type.value, c.col_type.nullable]
                           for c in signature.return_columns],
        "return_type": signature.return_type.value
        if signature.return_type is not None else None,
        "language": signature.language,
        "body": signature.body,
    }


def signature_from_record(record: dict[str, Any]) -> FunctionSignature:
    try:
        return FunctionSignature(
            name=str(record["name"]),
            parameters=[FunctionParameter(name, SQLType(type_name), int(number))
                        for name, type_name, number in record["parameters"]],
            returns_table=bool(record["returns_table"]),
            return_columns=[
                ColumnDef(name, ColumnType(SQLType(type_name), bool(nullable)))
                for name, type_name, nullable in record["return_columns"]
            ],
            return_type=SQLType(record["return_type"])
            if record["return_type"] is not None else None,
            language=str(record["language"]),
            body=str(record["body"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"invalid function signature record: {exc}") from exc


# --------------------------------------------------------------------------- #
# row-mask packing (DELETE keep-masks and UPDATE selection masks)
# --------------------------------------------------------------------------- #
def pack_mask(mask: Sequence[bool]) -> bytes:
    """Pack a boolean row mask into a bitmap for a WAL record payload."""
    return np.packbits(np.asarray(mask, dtype=bool)).tobytes()


def unpack_mask(data: bytes, count: int) -> list[bool]:
    """Inverse of :func:`pack_mask` (``count`` restores the exact length)."""
    bitmap = np.frombuffer(data, dtype=np.uint8)
    return np.unpackbits(bitmap, count=count).astype(bool).tolist()
