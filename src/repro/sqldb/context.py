"""Cooperative query cancellation and statement timeouts.

A :class:`QueryContext` is the per-statement control block threaded from
:meth:`repro.sqldb.database.Database.execute` through the plan driver down
to the morsel scheduler.  Execution is *cooperative*: the engine calls
:meth:`QueryContext.check` at every morsel boundary, so a cancelled or
timed-out statement aborts within roughly one morsel's worth of work —
numpy kernels are never interrupted mid-array.

The context is intentionally tiny and lock-free on the hot path: ``cancel``
may be called from any thread (the wire server's ``cancel`` message handler,
a signal handler, a watchdog) while worker threads are inside ``check``.
"""

from __future__ import annotations

import threading
import time

from ..errors import QueryCancelledError, QueryTimeoutError


class QueryContext:
    """Deadline + cancel flag for one statement's execution.

    ``timeout`` is seconds from construction; ``deadline`` (monotonic clock)
    wins when both are given and tighter.  A context without either still
    provides cancellation points — the server attaches one to every query so
    a wire-level ``cancel`` can abort it mid-pipeline.

    The context also carries the query's observability identity: a
    ``trace_id`` (returned to clients in result headers for correlation)
    and, when the front end decided to trace this query, the root
    :class:`repro.obs.trace.TraceSpan` under which the engine records its
    parse/plan/execute/encode phase boundaries.  Both default to ``None``
    and cost nothing when unused.
    """

    __slots__ = ("timeout", "deadline", "_cancelled", "_reason",
                 "trace_id", "trace")

    def __init__(self, *, timeout: float | None = None,
                 deadline: float | None = None,
                 trace_id: str | None = None) -> None:
        self.timeout = None if timeout is None else max(0.0, float(timeout))
        if self.timeout is not None:
            timeout_deadline = time.monotonic() + self.timeout
            deadline = (timeout_deadline if deadline is None
                        else min(deadline, timeout_deadline))
        self.deadline = deadline
        self._cancelled = threading.Event()
        self._reason: str | None = None
        self.trace_id = trace_id
        #: Root span for this query's phase breakdown (``None`` = untraced).
        self.trace = None

    @classmethod
    def resolve(cls, context: "QueryContext | None",
                timeout: float | None) -> "QueryContext | None":
        """Combine the two ways callers express a limit into one context."""
        if context is None:
            return cls(timeout=timeout) if timeout is not None else None
        if timeout is not None:
            deadline = time.monotonic() + max(0.0, float(timeout))
            if context.deadline is None or deadline < context.deadline:
                context.deadline = deadline
                context.timeout = float(timeout)
        return context

    # ------------------------------------------------------------------ #
    # cancellation
    # ------------------------------------------------------------------ #
    def cancel(self, reason: str | None = None) -> None:
        """Request cooperative abort; safe to call from any thread."""
        # the reason is published before the flag so check() never reads a
        # set flag with a missing message
        self._reason = reason
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    # ------------------------------------------------------------------ #
    # deadline
    # ------------------------------------------------------------------ #
    def remaining(self) -> float | None:
        """Seconds until the deadline; ``None`` when there is no deadline."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    # ------------------------------------------------------------------ #
    # the morsel-boundary checkpoint
    # ------------------------------------------------------------------ #
    def check(self) -> None:
        """Raise if the statement should stop; called at morsel boundaries."""
        if self._cancelled.is_set():
            raise QueryCancelledError(self._reason or "query cancelled")
        if self.expired:
            if self.timeout is not None:
                raise QueryTimeoutError(
                    f"statement timed out after {self.timeout:g}s")
            raise QueryTimeoutError("statement deadline exceeded")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "running"
        return (f"QueryContext(timeout={self.timeout}, "
                f"remaining={self.remaining()}, {state})")
