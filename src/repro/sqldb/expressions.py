"""Vectorised (column-at-a-time) expression evaluation.

The evaluator works on a :class:`Batch` — the columnar intermediate produced
by the FROM clause — and returns one value column per expression.  Batch
columns may be backed by plain Python lists, by shared numpy arrays (the
zero-copy scan format produced by the storage layer), or by
:class:`repro.sqldb.vector.Vector`s (typed values + validity mask + optional
string dictionary).  Comparison, arithmetic and logical operators run as
whole-array numpy kernels whenever the operands are numeric arrays, masked
vectors or dictionary vectors: NULLs propagate by mask union (Kleene
three-valued logic for AND/OR), string comparisons and LIKE run over the
dictionary codes, and only genuinely object-typed data (BLOBs, mixed-type
columns) falls back to the per-element interpreter.  Scalar Python UDFs
referenced in expressions are invoked **once per operator call** with whole
columns, which is the MonetDB operator-at-a-time behaviour the paper's §2.4
contrasts with tuple-at-a-time engines.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Sequence

import numpy as np

from ..errors import ExecutionError
from . import ast_nodes as ast
from .aggregates import call_aggregate, is_aggregate
from .functions import call_builtin_scalar, is_builtin_scalar
from .types import SQLType, infer_sql_type, python_value
from .udf import columns_to_udf_args, convert_scalar_result
from .vector import (
    Vector,
    combine_masks,
    remap_to_shared_dictionary,
    slice_column_values,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .database import Database


# --------------------------------------------------------------------------- #
# value-sequence helpers (lists and numpy arrays are both valid column data)
# --------------------------------------------------------------------------- #
def as_value_list(values: Any) -> list[Any]:
    """A plain Python list of Python values.

    ``ndarray.tolist`` already yields Python scalars; list inputs are
    sanitised element-wise because per-element fallback paths (CASE over a
    vector column, builtins over array arguments) can leave numpy scalars
    behind.
    """
    if isinstance(values, Vector):
        return values.to_list()
    if isinstance(values, np.ndarray):
        return values.tolist()
    return [python_value(value) for value in values]


def is_vector(values: Any) -> bool:
    """True for numpy-array-backed column data with a computable dtype."""
    return isinstance(values, np.ndarray) and values.dtype != object


def _python_elements(values: Any) -> Any:
    """Detach a typed array / vector into Python values for per-element
    evaluation; lists and object arrays already hold Python objects and pass
    through."""
    if isinstance(values, Vector):
        return values.to_list()
    if isinstance(values, np.ndarray) and values.dtype != object:
        return values.tolist()
    return values


def take_values(values: Any, indices: Any) -> Any:
    """Gather ``values`` at ``indices`` (fancy indexing for arrays/vectors)."""
    if isinstance(values, Vector):
        return values.take(indices)
    if isinstance(values, np.ndarray):
        return values[np.asarray(indices, dtype=np.intp)]
    return [values[index] for index in indices]


#: Row-range slice of column data (the one slicing rule, shared with the
#: storage layer's ``Column.scan_vector``).
slice_values = slice_column_values


def concat_values(pieces: Sequence[Any]) -> Any:
    """Concatenate per-morsel column data back into one column.

    Vector pieces sharing one dictionary stay dictionary-encoded; typed
    arrays concatenate as arrays; anything else falls back to one Python
    list.  Single pieces pass through untouched, which is what keeps the
    single-morsel (``workers=1``) path byte-identical to whole-batch
    execution.
    """
    pieces = list(pieces)
    if len(pieces) == 1:
        return pieces[0]
    if not pieces:
        return []
    if all(isinstance(piece, Vector) for piece in pieces):
        first = pieces[0]
        same_dict = all(piece.dictionary is first.dictionary
                        for piece in pieces)
        same_type = all(piece.sql_type is first.sql_type for piece in pieces)
        if same_dict and same_type:
            data = np.concatenate([piece.data for piece in pieces])
            if any(piece.mask is not None for piece in pieces):
                mask = np.concatenate([
                    piece.mask if piece.mask is not None
                    else np.zeros(len(piece), dtype=bool)
                    for piece in pieces
                ])
            else:
                mask = None
            return Vector(data, mask, first.dictionary, first.sql_type)
    if all(isinstance(piece, np.ndarray) and piece.dtype != object
           for piece in pieces):
        dtypes = {piece.dtype for piece in pieces}
        if len(dtypes) == 1:
            return np.concatenate(pieces)
    merged: list[Any] = []
    for piece in pieces:
        merged.extend(as_value_list(piece))
    return merged


# --------------------------------------------------------------------------- #
# Batch: the columnar intermediate
# --------------------------------------------------------------------------- #
@dataclass
class BatchColumn:
    """One column inside a batch, qualified by its source table alias.

    ``values`` is either a Python list or a (possibly shared, treat-as-
    read-only) numpy array produced by the storage layer's cached scan.
    """

    table: str | None
    name: str
    sql_type: SQLType
    values: Any = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.values)

    def value_list(self) -> list[Any]:
        return as_value_list(self.values)


class Batch:
    """A set of equally-long columns flowing between operators."""

    def __init__(self, columns: Sequence[BatchColumn] | None = None,
                 row_count: int | None = None) -> None:
        self.columns: list[BatchColumn] = list(columns or [])
        if row_count is not None:
            self.row_count = row_count
        else:
            self.row_count = len(self.columns[0]) if self.columns else 0
        for column in self.columns:
            if len(column) != self.row_count:
                raise ExecutionError(
                    f"batch column {column.name!r} has {len(column)} rows, "
                    f"expected {self.row_count}"
                )

    # -- construction ---------------------------------------------------- #
    @classmethod
    def empty(cls) -> "Batch":
        """A batch with no columns and a single row (for FROM-less SELECTs)."""
        return cls([], row_count=1)

    def add_column(self, column: BatchColumn) -> None:
        if self.columns and len(column) != self.row_count:
            raise ExecutionError("column length mismatch when extending batch")
        if not self.columns:
            self.row_count = len(column)
        self.columns.append(column)

    # -- name resolution -------------------------------------------------- #
    def matching_columns(self, name: str, table: str | None = None) -> list[BatchColumn]:
        """All columns matching a (possibly qualified) name, case-insensitively."""
        lowered = name.lower()
        table_lowered = table.lower() if table else None
        return [
            column for column in self.columns
            if column.name.lower() == lowered
            and (table_lowered is None or (column.table or "").lower() == table_lowered)
        ]

    def resolve(self, name: str, table: str | None = None) -> BatchColumn:
        matches = self.matching_columns(name, table)
        if not matches:
            qualifier = f"{table}." if table else ""
            raise ExecutionError(f"unknown column {qualifier}{name!r}")
        if len(matches) > 1 and table is None:
            tables = sorted({column.table or "?" for column in matches})
            raise ExecutionError(f"ambiguous column {name!r} (found in {tables})")
        return matches[0]

    def columns_for(self, table: str | None = None) -> list[BatchColumn]:
        if table is None:
            return list(self.columns)
        lowered = table.lower()
        selected = [c for c in self.columns if (c.table or "").lower() == lowered]
        if not selected:
            raise ExecutionError(f"unknown table alias {table!r}")
        return selected

    # -- row operations --------------------------------------------------- #
    def slice(self, start: int, stop: int) -> "Batch":
        """A row-range view of this batch (zero-copy for array columns)."""
        stop = min(stop, self.row_count)
        columns = [
            BatchColumn(c.table, c.name, c.sql_type,
                        slice_values(c.values, start, stop))
            for c in self.columns
        ]
        return Batch(columns, row_count=max(stop - start, 0))

    def take(self, indices: Sequence[int]) -> "Batch":
        columns = [
            BatchColumn(c.table, c.name, c.sql_type, take_values(c.values, indices))
            for c in self.columns
        ]
        return Batch(columns, row_count=len(indices))

    def filter(self, mask: Sequence[Any]) -> "Batch":
        if isinstance(mask, np.ndarray):
            indices: Sequence[int] = np.flatnonzero(mask)
        else:
            indices = [index for index, keep in enumerate(mask)
                       if keep is True or keep == 1]
        return self.take(indices)

    def row(self, index: int) -> tuple[Any, ...]:
        return tuple(column.values[index] for column in self.columns)


# --------------------------------------------------------------------------- #
# Evaluation results
# --------------------------------------------------------------------------- #
@dataclass
class EvalResult:
    """The outcome of evaluating one expression over a batch.

    ``values`` is either a Python list or a numpy array (vectorised path).
    """

    values: Any
    constant: bool = False
    sql_type: SQLType | None = None

    def __len__(self) -> int:
        return len(self.values)

    def broadcast(self, length: int) -> Any:
        if len(self.values) == length:
            return self.values
        if len(self.values) == 1:
            if isinstance(self.values, np.ndarray):
                return np.repeat(self.values, length)
            return self.values * length
        raise ExecutionError(
            f"cannot broadcast column of length {len(self.values)} to {length}"
        )

    def value_list(self) -> list[Any]:
        return as_value_list(self.values)


def _like_to_regex(pattern: str) -> re.Pattern[str]:
    # re.escape leaves '%' and '_' alone on modern Pythons but escaped them on
    # older ones; handle both spellings before substituting the wildcards.
    escaped = re.escape(pattern)
    escaped = escaped.replace(r"\%", "%").replace(r"\_", "_")
    escaped = escaped.replace("%", ".*").replace("_", ".")
    return re.compile(f"^{escaped}$", re.DOTALL)


def _int_magnitude(operand: Any) -> int | None:
    """Largest absolute value of an integer operand; None if not integral."""
    if isinstance(operand, np.ndarray):
        if operand.dtype.kind not in "iu":
            return None
        if operand.size == 0:
            return 0
        return max(abs(int(np.max(operand))), abs(int(np.min(operand))))
    if isinstance(operand, int):
        return abs(operand)
    return None


def _int_arith_may_overflow(op: str, left: Any, right: Any) -> bool:
    """Whether +, - or * on integer operands could exceed int64 and wrap."""
    if op not in ("+", "-", "*"):
        return False
    left_mag = _int_magnitude(left)
    right_mag = _int_magnitude(right)
    if left_mag is None or right_mag is None:
        return False  # a float operand promotes to float64, which saturates
    if op == "*":
        return left_mag * right_mag >= 2 ** 63
    return left_mag + right_mag >= 2 ** 63


#: Comparison spelled from the other operand's point of view (a op b == b op' a).
_SWAPPED_COMPARE = {
    "=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<=",
}


def _numeric_result_type(left: SQLType | None, right: SQLType | None, op: str) -> SQLType:
    if op == "/":
        return SQLType.DOUBLE
    if left is not None and right is not None and left.is_numeric and right.is_numeric:
        if left.is_floating or right.is_floating:
            return SQLType.DOUBLE
        return SQLType.BIGINT
    return SQLType.DOUBLE


class ExpressionEvaluator:
    """Evaluates expressions over a batch, with optional aggregate support."""

    def __init__(self, database: "Database", batch: Batch, *,
                 allow_aggregates: bool = False) -> None:
        self.database = database
        self.batch = batch
        self.allow_aggregates = allow_aggregates

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def evaluate(self, expression: ast.Expression) -> EvalResult:
        method = getattr(self, f"_eval_{type(expression).__name__}", None)
        if method is None:
            raise ExecutionError(
                f"unsupported expression node {type(expression).__name__}"
            )
        return method(expression)

    def evaluate_mask(self, expression: ast.Expression) -> Sequence[bool]:
        """Evaluate a predicate and return a boolean mask over the batch rows.

        Array-backed predicates yield a numpy bool array (NULL is impossible
        there); list-backed predicates yield a Python list with SQL's
        NULL-is-not-true semantics applied.
        """
        result = self.evaluate(expression)
        values = result.broadcast(self.batch.row_count)
        if isinstance(values, Vector) and values.dictionary is None:
            data = values.data if values.data.dtype == np.bool_ else values.data == 1
            if values.mask is not None:
                data = data & ~values.mask  # NULL is not true
            return data
        if isinstance(values, np.ndarray) and values.dtype != object:
            if values.dtype == np.bool_:
                return values
            return values == 1
        return [value is True or value == 1 for value in as_value_list(values)]

    def contains_aggregate(self, expression: ast.Expression) -> bool:
        return expression_contains_aggregate(expression)

    def _element_length(self, results: Sequence[EvalResult]) -> int:
        """Output length for the per-element tier: the longest operand, at
        least 1 — except over an empty batch with a row-aligned (non-
        constant) empty operand, where the result is empty too instead of
        broadcasting a zero-length column up to a constant's length (a
        morsel whose filter kept no rows must evaluate to no rows)."""
        if self.batch.row_count == 0 and any(
                not result.constant and len(result) == 0
                for result in results):
            return 0
        return max([1] + [len(result) for result in results])

    # ------------------------------------------------------------------ #
    # leaf nodes
    # ------------------------------------------------------------------ #
    def _eval_Literal(self, node: ast.Literal) -> EvalResult:
        sql_type = infer_sql_type(node.value) if node.value is not None else None
        return EvalResult([node.value], constant=True, sql_type=sql_type)

    def _eval_ColumnRef(self, node: ast.ColumnRef) -> EvalResult:
        column = self.batch.resolve(node.name, node.table)
        # Share the column data (array or list) instead of copying; downstream
        # consumers never mutate evaluation results in place.
        return EvalResult(column.values, constant=False, sql_type=column.sql_type)

    def _eval_Star(self, node: ast.Star) -> EvalResult:
        raise ExecutionError("'*' is only valid inside COUNT(*) or a select list")

    def _eval_Parameter(self, node: ast.Parameter) -> EvalResult:
        raise ExecutionError(
            "unbound '?' placeholder; use PREPARE name AS ... and "
            "EXECUTE name (args)")

    # ------------------------------------------------------------------ #
    # operators
    # ------------------------------------------------------------------ #
    def _eval_UnaryOp(self, node: ast.UnaryOp) -> EvalResult:
        operand = self.evaluate(node.operand)
        if node.op == "-":
            if is_vector(operand.values) and operand.values.dtype != np.bool_ \
                    and not _int_arith_may_overflow("-", 0, operand.values):
                return EvalResult(-operand.values, operand.constant, operand.sql_type)
            if isinstance(operand.values, Vector) \
                    and operand.values.dictionary is None \
                    and operand.values.data.dtype != np.bool_ \
                    and not _int_arith_may_overflow("-", 0, operand.values.data):
                negated = Vector(-operand.values.data, operand.values.mask,
                                 None, operand.values.sql_type)
                return EvalResult(negated, operand.constant, operand.sql_type)
            values = [None if v is None else -v
                      for v in _python_elements(operand.values)]
            return EvalResult(values, operand.constant, operand.sql_type)
        if node.op == "NOT":
            if is_vector(operand.values):
                return EvalResult(~operand.values.astype(np.bool_),
                                  operand.constant, SQLType.BOOLEAN)
            if isinstance(operand.values, Vector) \
                    and operand.values.dictionary is None:
                inverted = Vector(
                    ~self._as_bool_array(operand.values.data),
                    operand.values.mask, None, SQLType.BOOLEAN)
                return EvalResult(inverted, operand.constant, SQLType.BOOLEAN)
            values = [None if v is None else (not bool(v)) for v in operand.values]
            return EvalResult(values, operand.constant, SQLType.BOOLEAN)
        raise ExecutionError(f"unsupported unary operator {node.op!r}")

    def _eval_BinaryOp(self, node: ast.BinaryOp) -> EvalResult:
        op = node.op.upper()
        left = self.evaluate(node.left)
        right = self.evaluate(node.right)
        constant = left.constant and right.constant

        fast = self._vector_binary(op, left, right, constant)
        if fast is not None:
            return fast

        length = max(len(left), len(right))
        if not left.constant or not right.constant:
            length = self._element_length([left, right])
        # per-element tier: operate on Python values, never numpy scalars —
        # Python ints are unbounded where int64 elements would silently wrap
        left_values = _python_elements(left.broadcast(length))
        right_values = _python_elements(right.broadcast(length))

        if op in ("AND", "OR"):
            values = [self._logical(op, l, r) for l, r in zip(left_values, right_values)]
            return EvalResult(values, constant, SQLType.BOOLEAN)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            values = [self._compare(op, l, r) for l, r in zip(left_values, right_values)]
            return EvalResult(values, constant, SQLType.BOOLEAN)
        if op == "||":
            values = [
                None if l is None or r is None else str(l) + str(r)
                for l, r in zip(left_values, right_values)
            ]
            return EvalResult(values, constant, SQLType.STRING)
        if op in ("+", "-", "*", "/", "%"):
            values = [self._arith(op, l, r) for l, r in zip(left_values, right_values)]
            sql_type = _numeric_result_type(left.sql_type, right.sql_type, op)
            return EvalResult(values, constant, sql_type)
        raise ExecutionError(f"unsupported binary operator {node.op!r}")

    _COMPARE_UFUNCS = {
        "=": np.equal, "<>": np.not_equal, "<": np.less,
        "<=": np.less_equal, ">": np.greater, ">=": np.greater_equal,
    }
    _ARITH_UFUNCS = {
        "+": np.add, "-": np.subtract, "*": np.multiply,
        "/": np.true_divide, "%": np.mod,
    }

    def _vector_binary(self, op: str, left: EvalResult, right: EvalResult,
                       constant: bool) -> EvalResult | None:
        """Whole-array kernel over arrays, masked vectors and dictionary
        vectors; ``None`` = fall back to the per-element tier.

        NULLs propagate by mask union (Kleene logic for AND/OR); string
        equality/ordering against a constant or another dictionary vector
        runs on the dictionary codes.
        """
        lk = self._kernel_operand(left, allow_strings=True)
        rk = self._kernel_operand(right, allow_strings=True)
        if lk is None or rk is None:
            return None
        l_data, l_mask, l_dict = lk
        r_data, r_mask, r_dict = rk
        l_is_array = isinstance(l_data, np.ndarray)
        r_is_array = isinstance(r_data, np.ndarray)
        if not (l_is_array or r_is_array):
            return None  # two scalar constants: the generic path is cheap
        length = len(l_data) if l_is_array else len(r_data)

        if op in self._COMPARE_UFUNCS:
            return self._vector_compare(op, lk, rk, length, constant)
        if op in ("AND", "OR"):
            return self._vector_logical(op, lk, rk, length, constant)
        if op in self._ARITH_UFUNCS:
            if l_dict is not None or r_dict is not None \
                    or isinstance(l_data, str) or isinstance(r_data, str):
                return None  # string arithmetic: per-element errors apply
            return self._vector_arith(op, left, right, lk, rk, length, constant)
        return None  # e.g. '||' — concatenation stays on the Python tier

    def _vector_compare(self, op: str, lk: tuple, rk: tuple, length: int,
                        constant: bool) -> EvalResult | None:
        l_data, l_mask, l_dict = lk
        r_data, r_mask, r_dict = rk
        if l_data is None or r_data is None:  # NULL literal operand
            return self._all_null_result(length, SQLType.BOOLEAN, constant)
        if l_dict is not None and r_dict is not None:
            # two dictionary vectors: remap into one shared *sorted* space —
            # code order is string order, so every comparison works on codes
            l_codes, r_codes = remap_to_shared_dictionary(
                Vector(l_data, l_mask, l_dict), Vector(r_data, r_mask, r_dict))
            data = self._COMPARE_UFUNCS[op](l_codes, r_codes)
        elif l_dict is not None or r_dict is not None:
            if l_dict is not None:
                codes, mask, dictionary, other = l_data, l_mask, l_dict, r_data
                ufunc_op = op
            else:
                codes, mask, dictionary, other = r_data, r_mask, r_dict, l_data
                ufunc_op = _SWAPPED_COMPARE[op]
            if not isinstance(other, str):
                return None  # string vs non-string: per-element semantics
            # evaluate the comparison once per dictionary entry, then gather
            entries = np.fromiter(
                (self._compare(ufunc_op, entry, other)
                 for entry in dictionary.tolist()),
                dtype=bool, count=len(dictionary))
            safe_codes = codes if mask is None else np.where(mask, 0, codes)
            if len(entries):
                data = entries[safe_codes]
            else:
                data = np.zeros(length, dtype=np.bool_)
        else:
            if isinstance(l_data, str) or isinstance(r_data, str):
                return None  # string vs numeric array: per-element semantics
            data = self._COMPARE_UFUNCS[op](l_data, r_data)
        mask_out = combine_masks(l_mask, r_mask)
        return self._masked_result(np.asarray(data), mask_out,
                                   SQLType.BOOLEAN, constant)

    def _vector_logical(self, op: str, lk: tuple, rk: tuple, length: int,
                        constant: bool) -> EvalResult | None:
        l_data, l_mask, l_dict = lk
        r_data, r_mask, r_dict = rk
        if l_dict is not None or r_dict is not None \
                or isinstance(l_data, str) or isinstance(r_data, str):
            return None
        # a NULL literal behaves as an all-NULL operand in Kleene logic
        if l_data is None:
            l_data, l_mask = False, np.ones(length, dtype=np.bool_)
        if r_data is None:
            r_data, r_mask = False, np.ones(length, dtype=np.bool_)
        lb = self._as_bool_array(l_data)
        rb = self._as_bool_array(r_data)
        if l_mask is None and r_mask is None:
            combine = np.logical_and if op == "AND" else np.logical_or
            return EvalResult(np.asarray(combine(lb, rb)), constant, SQLType.BOOLEAN)
        # Python bools must become numpy bools: ``~False`` is the *integer*
        # -1, which would poison the known_true/known_false masks below
        if not isinstance(lb, np.ndarray):
            lb = np.bool_(lb)
        if not isinstance(rb, np.ndarray):
            rb = np.bool_(rb)
        l_true = lb if l_mask is None else lb & ~l_mask
        l_false = ~lb if l_mask is None else ~lb & ~l_mask
        r_true = rb if r_mask is None else rb & ~r_mask
        r_false = ~rb if r_mask is None else ~rb & ~r_mask
        if op == "AND":
            known_true = np.asarray(l_true & r_true)
            known_false = np.asarray(l_false | r_false)
        else:
            known_true = np.asarray(l_true | r_true)
            known_false = np.asarray(l_false & r_false)
        mask_out = ~(known_true | known_false)
        return self._masked_result(known_true, mask_out, SQLType.BOOLEAN, constant)

    def _vector_arith(self, op: str, left: EvalResult, right: EvalResult,
                      lk: tuple, rk: tuple, length: int,
                      constant: bool) -> EvalResult | None:
        l_data, l_mask, _ = lk
        r_data, r_mask, _ = rk
        sql_type = _numeric_result_type(left.sql_type, right.sql_type, op)
        if l_data is None or r_data is None:  # NULL literal operand
            return self._all_null_result(length, sql_type, constant)
        left_num = self._as_numeric_array(l_data)
        right_num = self._as_numeric_array(r_data)
        mask_out = combine_masks(l_mask, r_mask)
        if op in ("/", "%"):
            divisor = right_num
            if mask_out is not None and isinstance(divisor, np.ndarray):
                # a zero divisor on a NULL row produces NULL, not an error
                divisor = np.where(mask_out, 1, divisor)
            elif mask_out is not None and divisor == 0:
                if bool(mask_out.all()):
                    divisor = 1  # every row is NULL: nothing is divided
            if np.any(np.asarray(divisor) == 0):
                raise ExecutionError(
                    "division by zero" if op == "/" else "modulo by zero")
            right_num = divisor
        if _int_arith_may_overflow(op, left_num, right_num):
            return None  # Python ints are unbounded; int64 would wrap
        values = self._ARITH_UFUNCS[op](left_num, right_num)
        return self._masked_result(np.asarray(values), mask_out, sql_type, constant)

    @staticmethod
    def _masked_result(data: np.ndarray, mask: np.ndarray | None,
                       sql_type: SQLType, constant: bool) -> EvalResult:
        if mask is None or not mask.any():
            return EvalResult(data, constant, sql_type)
        return EvalResult(Vector(data, mask, None, sql_type), constant, sql_type)

    @staticmethod
    def _all_null_result(length: int, sql_type: SQLType,
                         constant: bool) -> EvalResult:
        dtype = np.bool_ if sql_type is SQLType.BOOLEAN else np.float64
        vector = Vector(np.zeros(length, dtype=dtype),
                        np.ones(length, dtype=np.bool_), None, sql_type)
        return EvalResult(vector, constant, sql_type)

    @staticmethod
    def _kernel_operand(result: EvalResult, *, allow_strings: bool = False
                        ) -> tuple[Any, np.ndarray | None, np.ndarray | None] | None:
        """Normalise an operand to ``(data, mask, dictionary)`` for a kernel.

        ``data`` is an ndarray (typed values or dictionary codes), a Python
        scalar, or ``None`` for a NULL literal.  Returns ``None`` (no tuple)
        when the operand cannot participate in a vector kernel.
        """
        values = result.values
        if isinstance(values, Vector):
            return values.data, values.mask, values.dictionary
        if is_vector(values):
            return values, None, None
        if result.constant and len(values) == 1:
            value = values[0]
            if value is None:
                return None, None, None
            if isinstance(value, bool) or isinstance(value, (int, float)):
                return value, None, None
            if allow_strings and isinstance(value, str):
                return value, None, None
        return None

    @staticmethod
    def _as_bool_array(operand: Any) -> Any:
        if isinstance(operand, np.ndarray):
            return operand if operand.dtype == np.bool_ else operand.astype(np.bool_)
        return bool(operand)

    @staticmethod
    def _as_numeric_array(operand: Any) -> Any:
        # bool + bool must be 0/1 arithmetic (Python semantics), not logical OR
        if isinstance(operand, np.ndarray) and operand.dtype == np.bool_:
            return operand.astype(np.int64)
        if isinstance(operand, bool):
            return int(operand)
        return operand

    @staticmethod
    def _logical(op: str, left: Any, right: Any) -> Any:
        lb = None if left is None else bool(left)
        rb = None if right is None else bool(right)
        if op == "AND":
            if lb is False or rb is False:
                return False
            if lb is None or rb is None:
                return None
            return True
        if lb is True or rb is True:
            return True
        if lb is None or rb is None:
            return None
        return False

    @staticmethod
    def _compare(op: str, left: Any, right: Any) -> Any:
        if left is None or right is None:
            return None
        try:
            if op == "=":
                return left == right
            if op == "<>":
                return left != right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            return left >= right
        except TypeError as exc:
            raise ExecutionError(f"cannot compare {left!r} and {right!r}") from exc

    @staticmethod
    def _arith(op: str, left: Any, right: Any) -> Any:
        if left is None or right is None:
            return None
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    raise ExecutionError("division by zero")
                return left / right
            if right == 0:
                raise ExecutionError("modulo by zero")
            return left % right
        except TypeError as exc:
            raise ExecutionError(
                f"invalid operands for {op!r}: {left!r}, {right!r}"
            ) from exc

    # ------------------------------------------------------------------ #
    # predicates and conditionals
    # ------------------------------------------------------------------ #
    def _eval_IsNull(self, node: ast.IsNull) -> EvalResult:
        operand = self.evaluate(node.operand)
        if isinstance(operand.values, Vector):
            # the validity mask *is* the IS NULL answer
            vector = operand.values
            if vector.mask is None:
                values = np.full(len(vector), node.negated, dtype=np.bool_)
            else:
                values = ~vector.mask if node.negated else vector.mask.copy()
            return EvalResult(values, operand.constant, SQLType.BOOLEAN)
        if is_vector(operand.values):
            # a non-object array cannot contain NULLs
            values = np.full(len(operand.values), node.negated, dtype=np.bool_)
            return EvalResult(values, operand.constant, SQLType.BOOLEAN)
        values = [(v is None) != node.negated for v in operand.values]
        return EvalResult(values, operand.constant, SQLType.BOOLEAN)

    def _eval_InList(self, node: ast.InList) -> EvalResult:
        operand = self.evaluate(node.operand)
        item_results = [self.evaluate(item) for item in node.items]
        if is_vector(operand.values) and all(
            result.constant and len(result.values) == 1
            and result.values[0] is not None
            and isinstance(result.values[0], (bool, int, float))
            for result in item_results
        ):
            members = [result.values[0] for result in item_results]
            found = np.isin(operand.values, members)
            return EvalResult(found != node.negated, constant=False,
                              sql_type=SQLType.BOOLEAN)
        length = self._element_length([operand] + item_results)
        operand_values = operand.broadcast(length)
        item_columns = [r.broadcast(length) for r in item_results]
        values: list[Any] = []
        for index, value in enumerate(operand_values):
            if value is None:
                values.append(None)
                continue
            members = [col[index] for col in item_columns]
            found = any(member is not None and member == value for member in members)
            values.append(found != node.negated)
        constant = operand.constant and all(r.constant for r in item_results)
        return EvalResult(values, constant, SQLType.BOOLEAN)

    def _eval_Between(self, node: ast.Between) -> EvalResult:
        operand = self.evaluate(node.operand)
        lower = self.evaluate(node.lower)
        upper = self.evaluate(node.upper)
        kernel_args = [self._kernel_operand(r) for r in (operand, lower, upper)]
        if all(arg is not None for arg in kernel_args) and any(
                isinstance(arg[0], np.ndarray) for arg in kernel_args) and all(
                arg[0] is not None and arg[2] is None for arg in kernel_args):
            (value_arr, value_mask, _), (low_arr, low_mask, _), \
                (high_arr, high_mask, _) = kernel_args
            inside = np.logical_and(low_arr <= value_arr, value_arr <= high_arr)
            mask_out = combine_masks(value_mask, low_mask, high_mask)
            return self._masked_result(np.asarray(inside != node.negated),
                                       mask_out, SQLType.BOOLEAN, constant=False)
        length = self._element_length([operand, lower, upper])
        ov = operand.broadcast(length)
        lv = lower.broadcast(length)
        uv = upper.broadcast(length)
        values: list[Any] = []
        for value, low, high in zip(ov, lv, uv):
            if value is None or low is None or high is None:
                values.append(None)
            else:
                values.append((low <= value <= high) != node.negated)
        constant = operand.constant and lower.constant and upper.constant
        return EvalResult(values, constant, SQLType.BOOLEAN)

    def _eval_Like(self, node: ast.Like) -> EvalResult:
        operand = self.evaluate(node.operand)
        pattern = self.evaluate(node.pattern)
        if (isinstance(operand.values, Vector) and operand.values.is_dict
                and pattern.constant and len(pattern.values) == 1
                and isinstance(pattern.values[0], str)):
            # match each *distinct* string once, then gather by code
            vector = operand.values
            regex = _like_to_regex(pattern.values[0])
            entries = np.fromiter(
                (bool(regex.match(str(entry))) != node.negated
                 for entry in vector.dictionary.tolist()),
                dtype=bool, count=len(vector.dictionary))
            codes = vector.data if vector.mask is None else \
                np.where(vector.mask, 0, vector.data)
            if len(entries):
                data = entries[codes]
            else:
                data = np.zeros(len(vector), dtype=np.bool_)
            return self._masked_result(data, vector.mask, SQLType.BOOLEAN,
                                       operand.constant)
        length = self._element_length([operand, pattern])
        ov = operand.broadcast(length)
        pv = pattern.broadcast(length)
        values: list[Any] = []
        for value, pat in zip(ov, pv):
            if value is None or pat is None:
                values.append(None)
            else:
                values.append(bool(_like_to_regex(str(pat)).match(str(value))) != node.negated)
        return EvalResult(values, operand.constant and pattern.constant, SQLType.BOOLEAN)

    def _eval_CaseExpression(self, node: ast.CaseExpression) -> EvalResult:
        when_results = [(self.evaluate(cond), self.evaluate(result))
                        for cond, result in node.whens]
        default = self.evaluate(node.default) if node.default is not None else None
        parts = [part for pair in when_results for part in pair]
        if default is not None:
            parts.append(default)
        length = self._element_length(parts)
        if not all(c.constant and r.constant for c, r in when_results):
            length = max(length, self.batch.row_count)
        values: list[Any] = []
        for index in range(length):
            chosen: Any = None
            matched = False
            for cond, result in when_results:
                cond_value = cond.broadcast(length)[index]
                if cond_value is True or cond_value == 1:
                    chosen = result.broadcast(length)[index]
                    matched = True
                    break
            if not matched and default is not None:
                chosen = default.broadcast(length)[index]
            values.append(chosen)
        return EvalResult(values, constant=False)

    def _eval_Cast(self, node: ast.Cast) -> EvalResult:
        from .types import coerce_value

        operand = self.evaluate(node.operand)
        if is_vector(operand.values) and node.target_type.is_floating \
                and operand.values.dtype.kind in "bif":
            return EvalResult(operand.values.astype(np.float64),
                              operand.constant, node.target_type)
        if isinstance(operand.values, Vector) \
                and operand.values.dictionary is None \
                and node.target_type.is_floating \
                and operand.values.data.dtype.kind in "bif":
            vector = operand.values
            cast = Vector(vector.data.astype(np.float64), vector.mask,
                          None, node.target_type)
            return EvalResult(cast, operand.constant, node.target_type)
        values = [coerce_value(value, node.target_type)
                  for value in _python_elements(operand.values)]
        return EvalResult(values, operand.constant, node.target_type)

    # ------------------------------------------------------------------ #
    # subqueries
    # ------------------------------------------------------------------ #
    def _eval_ScalarSubquery(self, node: ast.ScalarSubquery) -> EvalResult:
        result = self.database.execute_select(node.query)
        if result.column_count != 1:
            raise ExecutionError("scalar subquery must return exactly one column")
        if result.row_count > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        value = result.columns[0].values[0] if result.row_count == 1 else None
        return EvalResult([value], constant=True,
                          sql_type=result.columns[0].sql_type if result.columns else None)

    def _eval_ExistsSubquery(self, node: ast.ExistsSubquery) -> EvalResult:
        result = self.database.execute_select(node.query)
        exists = result.row_count > 0
        return EvalResult([exists != node.negated], constant=True, sql_type=SQLType.BOOLEAN)

    def _eval_InSubquery(self, node: ast.InSubquery) -> EvalResult:
        result = self.database.execute_select(node.query)
        if result.column_count != 1:
            raise ExecutionError("IN subquery must return exactly one column")
        members = set(value for value in result.columns[0].values if value is not None)
        operand = self.evaluate(node.operand)
        values = [
            None if value is None else ((value in members) != node.negated)
            for value in operand.values
        ]
        return EvalResult(values, operand.constant, SQLType.BOOLEAN)

    # ------------------------------------------------------------------ #
    # function calls (built-ins, aggregates, Python UDFs)
    # ------------------------------------------------------------------ #
    def _eval_FunctionCall(self, node: ast.FunctionCall) -> EvalResult:
        name = node.name
        if is_aggregate(name):
            return self._eval_aggregate(node)
        if is_builtin_scalar(name):
            return self._eval_builtin(node)
        catalog = self.database.catalog
        if catalog.has(name):
            return self._eval_python_udf(node)
        raise ExecutionError(f"unknown function {name!r}")

    def _eval_builtin(self, node: ast.FunctionCall) -> EvalResult:
        arg_results = [self.evaluate(arg) for arg in node.args]
        length = self._element_length(arg_results)
        if not all(result.constant for result in arg_results):
            length = max(length, self.batch.row_count)
        columns = [result.broadcast(length) for result in arg_results]
        values = [
            call_builtin_scalar(node.name, [column[index] for column in columns])
            for index in range(length)
        ]
        constant = all(result.constant for result in arg_results)
        return EvalResult(values, constant)

    def _eval_aggregate(self, node: ast.FunctionCall) -> EvalResult:
        if not self.allow_aggregates:
            raise ExecutionError(
                f"aggregate {node.name!r} is not allowed in this context"
            )
        is_star = len(node.args) == 1 and isinstance(node.args[0], ast.Star)
        if is_star or not node.args:
            values: Sequence[Any] = [1] * self.batch.row_count
        else:
            arg = self.evaluate(node.args[0])
            values = arg.broadcast(self.batch.row_count)
        result = call_aggregate(node.name, values, is_star=is_star,
                                distinct=node.distinct)
        return EvalResult([result], constant=True)

    def _eval_python_udf(self, node: ast.FunctionCall) -> EvalResult:
        """Invoke a scalar Python UDF operator-at-a-time over the batch."""
        entry = self.database.catalog.get(node.name)
        signature = entry.signature
        if signature.returns_table:
            raise ExecutionError(
                f"table-returning function {node.name!r} must be used in the FROM clause"
            )
        if len(node.args) != len(signature.parameters):
            raise ExecutionError(
                f"function {node.name!r} expects {len(signature.parameters)} arguments, "
                f"got {len(node.args)}"
            )
        arg_results = [self.evaluate(arg) for arg in node.args]
        arg_values: list[Any] = []
        arg_is_column: list[bool] = []
        sql_types: list[SQLType] = []
        for result, parameter in zip(arg_results, signature.parameters):
            if result.constant and len(result) == 1:
                arg_values.append(result.values[0])
                arg_is_column.append(False)
            else:
                arg_values.append(result.broadcast(self.batch.row_count))
                arg_is_column.append(True)
            sql_types.append(result.sql_type or parameter.sql_type)
        udf_args = columns_to_udf_args(arg_values, arg_is_column, sql_types)
        raw = self.database.udf_runtime.invoke(signature, udf_args)
        input_length = self.batch.row_count if any(arg_is_column) else 1
        values, row_aligned = convert_scalar_result(signature, raw, input_length)
        return EvalResult(values, constant=not row_aligned,
                          sql_type=signature.return_type)


# --------------------------------------------------------------------------- #
# helpers used by the executor
# --------------------------------------------------------------------------- #
def child_expressions(expression: ast.Expression) -> "Iterator[ast.Expression]":
    """The direct sub-expressions of a node (the one canonical AST walk;
    subqueries are deliberately opaque, matching historical behaviour)."""
    if isinstance(expression, ast.FunctionCall):
        yield from expression.args
    elif isinstance(expression, ast.BinaryOp):
        yield expression.left
        yield expression.right
    elif isinstance(expression, ast.UnaryOp):
        yield expression.operand
    elif isinstance(expression, ast.CaseExpression):
        for condition, value in expression.whens:
            yield condition
            yield value
        if expression.default is not None:
            yield expression.default
    elif isinstance(expression, ast.InList):
        yield expression.operand
        yield from expression.items
    elif isinstance(expression, ast.Between):
        yield expression.operand
        yield expression.lower
        yield expression.upper
    elif isinstance(expression, (ast.IsNull, ast.Like, ast.Cast)):
        yield expression.operand


def iter_function_calls(expression: ast.Expression) -> "Iterator[ast.FunctionCall]":
    """Every function call in the tree, including aggregate arguments."""
    if isinstance(expression, ast.FunctionCall):
        yield expression
    for child in child_expressions(expression):
        yield from iter_function_calls(child)


def expression_contains_aggregate(expression: ast.Expression) -> bool:
    """True when the expression tree contains an aggregate function call."""
    return any(is_aggregate(call.name) for call in iter_function_calls(expression))


def default_output_name(expression: ast.Expression, index: int) -> str:
    """Derive the output column name MonetDB-style (column name / function name)."""
    if isinstance(expression, ast.ColumnRef):
        return expression.name
    if isinstance(expression, ast.FunctionCall):
        return expression.name.lower()
    if isinstance(expression, ast.Cast):
        return default_output_name(expression.operand, index)
    if isinstance(expression, ast.Literal):
        return f"single_value" if index == 0 else f"col{index}"
    return f"col{index}"
