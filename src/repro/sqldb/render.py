"""Render parsed SQL ASTs back to SQL text.

The devUDF extract-query rewriter (paper §2.2) takes the user's debug query,
replaces the call to the UDF with an extract function, and sends the rewritten
query to the server.  That requires turning (modified) ASTs back into SQL.
"""

from __future__ import annotations

from typing import Any

from ..errors import ExecutionError
from . import ast_nodes as ast


def render_literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, (int, float)):
        return str(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def render_expression(node: ast.Expression) -> str:
    if isinstance(node, ast.Literal):
        return render_literal(node.value)
    if isinstance(node, ast.ColumnRef):
        return f"{node.table}.{node.name}" if node.table else node.name
    if isinstance(node, ast.Star):
        return f"{node.table}.*" if node.table else "*"
    if isinstance(node, ast.UnaryOp):
        if node.op.upper() == "NOT":
            return f"NOT ({render_expression(node.operand)})"
        return f"{node.op}({render_expression(node.operand)})"
    if isinstance(node, ast.BinaryOp):
        return (f"({render_expression(node.left)} {node.op} "
                f"{render_expression(node.right)})")
    if isinstance(node, ast.FunctionCall):
        args = ", ".join(render_expression(arg) for arg in node.args)
        distinct = "DISTINCT " if node.distinct else ""
        return f"{node.name}({distinct}{args})"
    if isinstance(node, ast.CaseExpression):
        parts = ["CASE"]
        for condition, result in node.whens:
            parts.append(f"WHEN {render_expression(condition)} THEN {render_expression(result)}")
        if node.default is not None:
            parts.append(f"ELSE {render_expression(node.default)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(node, ast.InList):
        items = ", ".join(render_expression(item) for item in node.items)
        keyword = "NOT IN" if node.negated else "IN"
        return f"{render_expression(node.operand)} {keyword} ({items})"
    if isinstance(node, ast.InSubquery):
        keyword = "NOT IN" if node.negated else "IN"
        return f"{render_expression(node.operand)} {keyword} ({render_select(node.query)})"
    if isinstance(node, ast.Between):
        keyword = "NOT BETWEEN" if node.negated else "BETWEEN"
        return (f"{render_expression(node.operand)} {keyword} "
                f"{render_expression(node.lower)} AND {render_expression(node.upper)}")
    if isinstance(node, ast.IsNull):
        keyword = "IS NOT NULL" if node.negated else "IS NULL"
        return f"{render_expression(node.operand)} {keyword}"
    if isinstance(node, ast.Like):
        keyword = "NOT LIKE" if node.negated else "LIKE"
        return f"{render_expression(node.operand)} {keyword} {render_expression(node.pattern)}"
    if isinstance(node, ast.Cast):
        return f"CAST({render_expression(node.operand)} AS {node.target_type})"
    if isinstance(node, ast.ScalarSubquery):
        return f"({render_select(node.query)})"
    if isinstance(node, ast.ExistsSubquery):
        keyword = "NOT EXISTS" if node.negated else "EXISTS"
        return f"{keyword} ({render_select(node.query)})"
    raise ExecutionError(f"cannot render expression node {type(node).__name__}")


def render_table_ref(node: ast.TableRef) -> str:
    if isinstance(node, ast.NamedTable):
        alias = f" AS {node.alias}" if node.alias else ""
        return f"{node.name}{alias}"
    if isinstance(node, ast.SubquerySource):
        alias = f" AS {node.alias}" if node.alias else ""
        return f"({render_select(node.query)}){alias}"
    if isinstance(node, ast.TableFunctionCall):
        args = []
        for arg in node.args:
            if isinstance(arg, ast.Select):
                args.append(f"({render_select(arg)})")
            else:
                args.append(render_expression(arg))
        alias = f" AS {node.alias}" if node.alias else ""
        return f"{node.name}({', '.join(args)}){alias}"
    if isinstance(node, ast.Join):
        left = render_table_ref(node.left)
        right = render_table_ref(node.right)
        if node.join_type == "CROSS" or node.condition is None:
            return f"{left} CROSS JOIN {right}"
        keyword = "LEFT JOIN" if node.join_type == "LEFT" else "JOIN"
        return f"{left} {keyword} {right} ON {render_expression(node.condition)}"
    raise ExecutionError(f"cannot render table reference {type(node).__name__}")


def render_select(select: ast.Select) -> str:
    parts = ["SELECT"]
    if select.distinct:
        parts.append("DISTINCT")
    items = []
    for item in select.items:
        text = render_expression(item.expression)
        if item.alias:
            text += f" AS {item.alias}"
        items.append(text)
    parts.append(", ".join(items))
    if select.from_clause is not None:
        parts.append("FROM " + render_table_ref(select.from_clause))
    if select.where is not None:
        parts.append("WHERE " + render_expression(select.where))
    if select.group_by:
        parts.append("GROUP BY " + ", ".join(render_expression(e) for e in select.group_by))
    if select.having is not None:
        parts.append("HAVING " + render_expression(select.having))
    if select.order_by:
        rendered = []
        for order in select.order_by:
            text = render_expression(order.expression)
            if order.descending:
                text += " DESC"
            rendered.append(text)
        parts.append("ORDER BY " + ", ".join(rendered))
    if select.limit is not None:
        parts.append(f"LIMIT {select.limit}")
    if select.offset is not None:
        parts.append(f"OFFSET {select.offset}")
    return " ".join(parts)
