"""SELECT planning and the morsel-driven plan driver.

:class:`Planner` lowers a parsed ``SELECT`` into a tree of physical
operators (:mod:`repro.sqldb.operators`); :class:`SelectPlan` then drives
execution:

* **prepare** (under the database lock): bind scan sources — snapshot
  storage-table scans, execute FROM-clause subqueries / table functions /
  virtual meta tables — and materialise every join's build side.
* **run**: split the pipeline source into row-range morsels
  (:class:`~repro.sqldb.parallel.MorselScheduler` policy) and push each
  morsel through the fused stage chain (join probes, filter) into the sink
  (projection or aggregation) — on the worker pool when parallelism is
  enabled and the statement is parallel-safe, inline otherwise.  LEFT-join
  unmatched rows are deferred per stage and flushed, in arrival order,
  after the morsel phase — reproducing the sequential engine's
  matches-first output order.
* **finish**: concatenate projection pieces or merge aggregation partials,
  then apply the pipeline breakers (DISTINCT → ORDER BY → OFFSET/LIMIT) in
  the clause order the engine always used.

Single-worker execution is one morsel through the same code the
clause-at-a-time engine ran, so its results are byte-identical.  The plan
also renders itself (:meth:`SelectPlan.explain_lines`) for ``EXPLAIN``.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from ..errors import CatalogError, ExecutionError
from . import ast_nodes as ast
from .aggregates import is_aggregate
from .expressions import (
    Batch,
    BatchColumn,
    ExpressionEvaluator,
    child_expressions,
    expression_contains_aggregate,
)
from .functions import is_builtin_scalar
from .operators import (
    Distinct,
    Filter,
    HashAggregate,
    HashJoin,
    Limit,
    PhysicalOperator,
    Project,
    Scan,
    Sort,
    batch_from_result,
    concat_batches,
    concat_result_pieces,
    slice_result,
    statement_expressions,
)
from .result import QueryResult
from .schema import FunctionSignature
from .types import SQLType
from .udf import convert_table_result

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import QueryContext
    from .database import Database
    from .parallel import MorselScheduler


#: Schemas of the virtual meta tables exposed by the catalog (Listing 1).
_SYS_FUNCTIONS_SCHEMA = [
    ("id", SQLType.INTEGER),
    ("name", SQLType.STRING),
    ("func", SQLType.STRING),
    ("mod", SQLType.STRING),
    ("language", SQLType.INTEGER),
    ("type", SQLType.INTEGER),
]

_SYS_ARGS_SCHEMA = [
    ("id", SQLType.INTEGER),
    ("func_id", SQLType.INTEGER),
    ("name", SQLType.STRING),
    ("type", SQLType.STRING),
    ("number", SQLType.INTEGER),
    ("inout", SQLType.INTEGER),
]

_SYS_TABLES_SCHEMA = [
    ("id", SQLType.INTEGER),
    ("name", SQLType.STRING),
    ("row_count", SQLType.BIGINT),
]


def virtual_table(database: "Database", name: str
                  ) -> tuple[list[tuple[str, SQLType]], list[tuple]] | None:
    lowered = name.lower()
    if lowered in ("sys.functions", "functions"):
        return _SYS_FUNCTIONS_SCHEMA, database.catalog.sys_functions_rows()
    if lowered in ("sys.args", "args"):
        return _SYS_ARGS_SCHEMA, database.catalog.sys_args_rows()
    if lowered in ("sys.tables", "tables"):
        rows = [
            (index, table_name, database.storage.table(table_name).row_count)
            for index, table_name in enumerate(database.storage.table_names())
        ]
        return _SYS_TABLES_SCHEMA, rows
    return None


def table_function_batch(database: "Database",
                         ref: ast.TableFunctionCall) -> Batch:
    """Materialise a table-producing UDF called in the FROM clause."""
    if not database.catalog.has(ref.name):
        raise CatalogError(f"unknown table function {ref.name!r}")
    signature: FunctionSignature = database.catalog.get(ref.name).signature
    alias = ref.alias or ref.name

    # Evaluate arguments: subqueries contribute one argument per result
    # column (MonetDB flattens them positionally); scalar expressions are
    # evaluated as constants.
    arg_values: list[Any] = []
    for arg in ref.args:
        if isinstance(arg, ast.Select):
            sub_result = database.execute_select(arg)
            for column in sub_result.columns:
                arg_values.append(column.to_numpy())
        else:
            evaluator = ExpressionEvaluator(database, Batch.empty())
            arg_values.append(evaluator.evaluate(arg).values[0])

    if len(arg_values) != len(signature.parameters):
        raise ExecutionError(
            f"table function {ref.name!r} expects {len(signature.parameters)} "
            f"arguments, got {len(arg_values)}"
        )
    raw = database.udf_runtime.invoke(signature, arg_values)

    if signature.returns_table:
        column_data = convert_table_result(signature, raw)
        columns = [
            BatchColumn(alias, column_name,
                        signature.return_columns[i].sql_type, values)
            for i, (column_name, values) in enumerate(column_data.items())
        ]
        row_count = len(columns[0].values) if columns else 0
        return Batch(columns, row_count=row_count)

    # Scalar function used in FROM: expose its result as a one-column table.
    from .udf import convert_scalar_result

    values, _ = convert_scalar_result(signature, raw, 0)
    column = BatchColumn(alias, signature.name,
                         signature.return_type or SQLType.DOUBLE, values)
    return Batch([column], row_count=len(values))


# --------------------------------------------------------------------------- #
# parallel-safety analysis
# --------------------------------------------------------------------------- #
def _walk_expression(expression: ast.Expression) -> Iterator[ast.Expression]:
    yield expression
    if isinstance(expression, ast.InSubquery):
        yield from _walk_expression(expression.operand)
        return
    for child in child_expressions(expression):
        yield from _walk_expression(child)


def _expression_parallel_safe(expression: ast.Expression) -> bool:
    """Safe to evaluate per morsel, possibly on worker threads.

    Scalar subqueries (re-executed per evaluation) and Python UDFs (invoked
    once per whole column, an observable count) force whole-batch execution.
    """
    for node in _walk_expression(expression):
        if isinstance(node, (ast.ScalarSubquery, ast.ExistsSubquery,
                             ast.InSubquery)):
            return False
        if isinstance(node, ast.FunctionCall):
            if not is_aggregate(node.name) and not is_builtin_scalar(node.name):
                return False
    return True


def _from_clause_conditions(from_clause: ast.TableRef | None
                            ) -> Iterator[ast.Expression]:
    if isinstance(from_clause, ast.Join):
        if from_clause.condition is not None:
            yield from_clause.condition
        yield from _from_clause_conditions(from_clause.left)
        yield from _from_clause_conditions(from_clause.right)


def statement_parallel_safe(select: ast.Select) -> bool:
    expressions = statement_expressions(select)
    expressions.extend(_from_clause_conditions(select.from_clause))
    return all(_expression_parallel_safe(expr) for expr in expressions)


# --------------------------------------------------------------------------- #
# planner
# --------------------------------------------------------------------------- #
class Planner:
    """Lowers a ``SELECT`` AST into a :class:`SelectPlan`."""

    def __init__(self, database: "Database") -> None:
        self.database = database

    def plan(self, select: ast.Select) -> "SelectPlan":
        source, stages = self._lower_from(select.from_clause)
        if select.where is not None:
            stages.append(Filter(self.database, select.where))

        has_aggregates = any(
            expression_contains_aggregate(item.expression)
            for item in select.items
            if not isinstance(item.expression, ast.Star)
        ) or (select.having is not None
              and expression_contains_aggregate(select.having))

        sink: Project | HashAggregate
        if select.group_by or has_aggregates:
            sink = HashAggregate(self.database, select)
        else:
            sink = Project(self.database, select.items)

        distinct = Distinct() if select.distinct else None
        sort = Sort(self.database, select) if select.order_by else None
        limit = None
        if select.limit is not None or select.offset is not None:
            limit = Limit(select.limit, select.offset)
        return SelectPlan(self.database, select, source, stages, sink,
                          distinct=distinct, sort=sort, limit=limit)

    def _lower_from(self, from_clause: ast.TableRef | None
                    ) -> tuple[Scan, list[PhysicalOperator]]:
        """Lower a FROM tree into (pipeline source, probe/filter stages)."""
        if from_clause is None:
            return Scan("(no table)"), []
        if isinstance(from_clause, ast.NamedTable):
            name = from_clause.name
            alias = from_clause.alias or name.split(".")[-1]
            scan = Scan(name, alias)
            scan.source_ast = from_clause
            return scan, []
        if isinstance(from_clause, ast.SubquerySource):
            scan = Scan("(subquery)", from_clause.alias)
            scan.source_ast = from_clause
            return scan, []
        if isinstance(from_clause, ast.TableFunctionCall):
            scan = Scan(f"{from_clause.name}()", from_clause.alias)
            scan.source_ast = from_clause
            return scan, []
        if isinstance(from_clause, ast.Join):
            source, stages = self._lower_from(from_clause.left)
            build_source, build_stages = self._lower_from(from_clause.right)
            join = HashJoin(self.database, from_clause.join_type,
                            from_clause.condition)
            join.build_source = build_source
            join.build_stages = build_stages
            stages.append(join)
            return source, stages
        raise ExecutionError(
            f"unsupported FROM item {type(from_clause).__name__}")


# --------------------------------------------------------------------------- #
# per-operator actuals (EXPLAIN ANALYZE)
# --------------------------------------------------------------------------- #
class PlanMetrics:
    """Actual rows / batches / wall time per plan node, one execution.

    Morsels run concurrently on the worker pool, so every sample — one
    ``(rows, batches, seconds)`` increment per operator per morsel — is
    merged under a single lock keyed by operator identity.  Wall times are
    *cumulative across workers*: with ``workers=4`` an operator's ``time``
    can legitimately exceed the query's elapsed time.
    """

    __slots__ = ("_lock", "_stats")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: ``id(operator) -> [rows, batches, seconds]``
        self._stats: dict[int, list[Any]] = {}

    def record(self, operator: PhysicalOperator, rows: int, seconds: float,
               batches: int = 1) -> None:
        key = id(operator)
        with self._lock:
            entry = self._stats.get(key)
            if entry is None:
                self._stats[key] = [rows, batches, seconds]
            else:
                entry[0] += rows
                entry[1] += batches
                entry[2] += seconds

    def stats_for(self, operator: PhysicalOperator
                  ) -> tuple[int, int, float] | None:
        entry = self._stats.get(id(operator))
        if entry is None:
            return None
        return entry[0], entry[1], entry[2]


# --------------------------------------------------------------------------- #
# the plan driver
# --------------------------------------------------------------------------- #
class SelectPlan:
    """An executable physical plan for one SELECT statement."""

    def __init__(self, database: "Database", select: ast.Select, source: Scan,
                 stages: list[PhysicalOperator],
                 sink: Project | HashAggregate, *,
                 distinct: Distinct | None, sort: Sort | None,
                 limit: Limit | None) -> None:
        self.database = database
        self.select = select
        self.source = source
        self.stages = stages
        self.sink = sink
        self.distinct = distinct
        self.sort = sort
        self.limit = limit
        self.parallel_safe = statement_parallel_safe(select)
        #: Cooperative cancellation/timeout control block; ``None`` runs
        #: unchecked (the pre-resilience behaviour).  Set by the executor
        #: before :meth:`prepare`.
        self.context: "QueryContext | None" = None
        #: Per-operator actuals collector (EXPLAIN ANALYZE).  ``None`` — the
        #: default — takes the untimed hot paths; the executor installs a
        #: fresh :class:`PlanMetrics` for one instrumented run and clears it
        #: afterwards (plans can be cached and re-run bare).
        self.plan_metrics: PlanMetrics | None = None
        self._prepared = False
        self.root = self._link_tree()

    @property
    def scheduler(self) -> "MorselScheduler":
        return self.database.scheduler

    # -- plan-tree shape (EXPLAIN) ---------------------------------------- #
    def _link_tree(self) -> PhysicalOperator:
        def pipeline_root(source: Scan,
                          stages: Sequence[PhysicalOperator]) -> PhysicalOperator:
            node: PhysicalOperator = source
            for stage in stages:
                if isinstance(stage, HashJoin):
                    build_root = pipeline_root(stage.build_source,
                                               stage.build_stages)
                    stage.children = [node, build_root]
                else:
                    stage.children = [node]
                node = stage
            return node

        node = pipeline_root(self.source, self.stages)
        self.sink.children = [node]
        node = self.sink
        for breaker in (self.distinct, self.sort, self.limit):
            if breaker is not None:
                breaker.children = [node]
                node = breaker
        return node

    @property
    def streamable(self) -> bool:
        """Whether morsel results can leave before execution finishes.

        Projection pipelines only: aggregation, DISTINCT and ORDER BY are
        pipeline breakers, and statements that are not parallel-safe (UDF
        calls, scalar subqueries) must run whole-batch under the database
        lock.
        """
        return (isinstance(self.sink, Project) and self.distinct is None
                and self.sort is None and self.parallel_safe)

    # -- preparation ------------------------------------------------------- #
    def prepare(self) -> None:
        """Bind sources and join build sides (run under the database lock)."""
        if self._prepared:
            return
        if self.context is not None:
            self.context.check()
        self._template = self._prepare_pipeline(self.source, self.stages)
        self._prepared = True

    def _prepare_pipeline(self, source: Scan,
                          stages: Sequence[PhysicalOperator]) -> Batch:
        self._prepare_scan(source)
        template = source.batch_slice(0, 0)
        for stage in stages:
            if isinstance(stage, HashJoin):
                self._prepare_pipeline(stage.build_source, stage.build_stages)
                right_batch = self._run_pipeline_whole(stage.build_source,
                                                       stage.build_stages)
                if self.plan_metrics is None:
                    template = stage.prepare(template, right_batch)
                else:
                    started = perf_counter()
                    template = stage.prepare(template, right_batch)
                    # build time counts toward the join, but not as a batch:
                    # ``batches`` stays the number of probed morsels
                    self.plan_metrics.record(stage, 0,
                                             perf_counter() - started, 0)
            # Filter is schema-preserving: the template passes through
            # unevaluated (predicates only run over real morsels)
        return template

    def _prepare_scan(self, scan: Scan) -> None:
        source_ast = getattr(scan, "source_ast", None)
        if source_ast is None:
            scan.bind_batch(Batch.empty())
            return
        if isinstance(source_ast, ast.NamedTable):
            virtual = virtual_table(self.database, source_ast.name)
            if virtual is not None:
                schema, rows = virtual
                alias = scan.alias or source_ast.name
                columns = [
                    BatchColumn(alias, column_name, sql_type,
                                [row[i] for row in rows])
                    for i, (column_name, sql_type) in enumerate(schema)
                ]
                scan.bind_batch(Batch(columns, row_count=len(rows)))
                return
            table = self.database.storage.table(source_ast.name)
            # quarantined (salvaged) row ranges must fail the query with a
            # structured CorruptionError, never scan as placeholder NULLs
            table.check_readable()
            scan.bind_table(table)
            return
        if isinstance(source_ast, ast.SubquerySource):
            result = self.database.execute_select(source_ast.query)
            scan.bind_batch(batch_from_result(result, source_ast.alias))
            return
        if isinstance(source_ast, ast.TableFunctionCall):
            scan.bind_batch(table_function_batch(self.database, source_ast))
            return
        raise ExecutionError(
            f"unsupported FROM item {type(source_ast).__name__}")

    def _run_pipeline_whole(self, source: Scan,
                            stages: Sequence[PhysicalOperator]) -> Batch:
        """Materialise a build-side pipeline as one batch (single morsel)."""
        outputs: list[Batch] = []
        deferred: dict[int, list[Batch]] = {}
        batch = self._scan_slice(source, 0, source.row_count)
        outputs.append(self._push(batch, stages, 0, deferred))
        self._flush_deferred(stages, deferred, outputs)
        return concat_batches(outputs)

    # -- stage-chain execution --------------------------------------------- #
    @staticmethod
    def _push_stages(batch: Batch, stages: Sequence[PhysicalOperator],
                     from_index: int,
                     deferred: dict[int, list[Batch]]) -> Batch:
        """Push one batch through ``stages[from_index:]``.

        LEFT-join unmatched rows are recorded per stage index in
        ``deferred`` (processed later by :meth:`_flush_deferred`)."""
        for index in range(from_index, len(stages)):
            stage = stages[index]
            if isinstance(stage, HashJoin):
                batch, extra = stage.probe(batch)
                if extra is not None:
                    deferred.setdefault(index, []).append(extra)
            else:
                batch = stage.process(batch)
        return batch

    def _push_stages_timed(self, batch: Batch,
                           stages: Sequence[PhysicalOperator],
                           from_index: int,
                           deferred: dict[int, list[Batch]]) -> Batch:
        """:meth:`_push_stages` recording per-stage rows/batches/time."""
        metrics = self.plan_metrics
        assert metrics is not None
        for index in range(from_index, len(stages)):
            stage = stages[index]
            started = perf_counter()
            if isinstance(stage, HashJoin):
                batch, extra = stage.probe(batch)
                if extra is not None:
                    deferred.setdefault(index, []).append(extra)
            else:
                batch = stage.process(batch)
            metrics.record(stage, batch.row_count, perf_counter() - started)
        return batch

    def _push(self, batch: Batch, stages: Sequence[PhysicalOperator],
              from_index: int, deferred: dict[int, list[Batch]]) -> Batch:
        if self.plan_metrics is None:
            return self._push_stages(batch, stages, from_index, deferred)
        return self._push_stages_timed(batch, stages, from_index, deferred)

    def _scan_slice(self, source: Scan, start: int, stop: int) -> Batch:
        metrics = self.plan_metrics
        if metrics is None:
            return source.batch_slice(start, stop)
        started = perf_counter()
        batch = source.batch_slice(start, stop)
        metrics.record(source, batch.row_count, perf_counter() - started)
        return batch

    def _morsel_batch(self, span: tuple[int, int],
                      deferred: dict[int, list[Batch]]) -> Batch:
        """Scan one morsel and push it through the full stage chain."""
        return self._push(self._scan_slice(self.source, *span),
                          self.stages, 0, deferred)

    def _project_piece(self, sink: Project,
                       batch: Batch) -> tuple[QueryResult, bool]:
        metrics = self.plan_metrics
        if metrics is None:
            return sink.project(batch)
        started = perf_counter()
        piece, constant = sink.project(batch)
        metrics.record(sink, piece.row_count, perf_counter() - started)
        return piece, constant

    def _flush_deferred(self, stages: Sequence[PhysicalOperator],
                        deferred: dict[int, list[Batch]],
                        outputs: list[Batch]) -> None:
        """Push deferred LEFT-join rows through the remaining stages.

        A flush can defer new rows at later stages; the ascending scan picks
        those up, so arrival order (the sequential output order) holds."""
        for index in range(len(stages)):
            extras = deferred.pop(index, None)
            if extras:
                batch = concat_batches(extras)
                outputs.append(
                    self._push(batch, stages, index + 1, deferred))

    # -- execution ---------------------------------------------------------- #
    def _split_ranges(self, max_rows: int | None = None
                      ) -> list[tuple[int, int]]:
        row_count = self.source.row_count
        if not self.parallel_safe:
            return [(0, row_count)]
        if max_rows is None and self.context is not None:
            # a cancellable statement needs morsel boundaries (= cancellation
            # points) even single-worker, where the scheduler would otherwise
            # run the whole input as one morsel
            max_rows = self.scheduler.morsel_rows
        if max_rows is not None:
            step = max(1, min(max_rows, self.scheduler.morsel_rows))
            if row_count > step:
                return [(start, min(start + step, row_count))
                        for start in range(0, row_count, step)]
            return [(0, row_count)]
        return self.scheduler.split(row_count)

    def execute(self) -> QueryResult:
        """Run the plan to a complete :class:`QueryResult`."""
        self.prepare()
        ranges = self._split_ranges()
        keep_batches = self.sort is not None
        out_batches: list[Batch] = []

        if isinstance(self.sink, HashAggregate):
            result = self._run_aggregate(ranges, out_batches, keep_batches)
        else:
            result = self._run_projection(ranges, out_batches, keep_batches)

        if self.context is not None:
            # last checkpoint before the pipeline breakers (sort etc.) run
            self.context.check()
        if self.distinct is not None:
            result = self._apply_breaker(
                self.distinct, lambda: self.distinct.apply(result))
        if self.sort is not None:
            result = self._apply_breaker(
                self.sort,
                lambda: self.sort.apply(result, concat_batches(out_batches)))
        if self.limit is not None:
            result = self._apply_breaker(
                self.limit, lambda: self.limit.apply(result))
        return result

    def _apply_breaker(self, operator: PhysicalOperator,
                       apply: Any) -> QueryResult:
        metrics = self.plan_metrics
        if metrics is None:
            return apply()
        started = perf_counter()
        result = apply()
        metrics.record(operator, result.row_count, perf_counter() - started)
        return result

    def _run_projection(self, ranges: list[tuple[int, int]],
                        out_batches: list[Batch],
                        keep_batches: bool) -> QueryResult:
        sink = self.sink
        assert isinstance(sink, Project)
        stages = self.stages
        stop_after = None
        if (self.limit is not None and self.distinct is None
                and self.sort is None):
            stop_after = self.limit.stop_after

        def task(span: tuple[int, int]
                 ) -> tuple[QueryResult, bool, Batch, dict[int, list[Batch]]]:
            deferred: dict[int, list[Batch]] = {}
            batch = self._morsel_batch(span, deferred)
            piece, constant = self._project_piece(sink, batch)
            return piece, constant, batch, deferred

        pieces: list[QueryResult] = []
        all_constant = True
        deferred: dict[int, list[Batch]] = {}
        produced = 0
        stopped_early = False
        for piece, constant, batch, task_deferred in \
                self.scheduler.imap(task, ranges, context=self.context):
            for index, extras in task_deferred.items():
                deferred.setdefault(index, []).extend(extras)
            pieces.append(piece)
            all_constant = all_constant and constant
            if keep_batches:
                out_batches.append(batch)
            produced += piece.row_count
            if (stop_after is not None and not constant
                    and produced >= stop_after):
                stopped_early = True
                break

        if all_constant and pieces:
            # no item depended on the input rows: the sequential engine
            # broadcast constants to a single row, not one row per morsel
            return pieces[0]
        if not stopped_early:
            flush_batches: list[Batch] = []
            self._flush_deferred(stages, deferred, flush_batches)
            for batch in flush_batches:
                piece, _ = self._project_piece(sink, batch)
                pieces.append(piece)
                if keep_batches:
                    out_batches.append(batch)
        return concat_result_pieces(pieces)

    def _run_aggregate(self, ranges: list[tuple[int, int]],
                       out_batches: list[Batch],
                       keep_batches: bool) -> QueryResult:
        sink = self.sink
        assert isinstance(sink, HashAggregate)
        stages = self.stages
        use_partial = sink.mode == "partial" and len(ranges) > 1
        metrics = self.plan_metrics

        def task(span: tuple[int, int]) -> tuple[Any, dict[int, list[Batch]]]:
            deferred: dict[int, list[Batch]] = {}
            batch = self._morsel_batch(span, deferred)
            if use_partial:
                if metrics is None:
                    payload = sink.morsel_state(batch)
                else:
                    started = perf_counter()
                    payload = sink.morsel_state(batch)
                    # one partial state per morsel; output rows come from
                    # the merge below, so only batches/time accrue here
                    metrics.record(sink, 0, perf_counter() - started)
            else:
                payload = batch
            return payload, deferred

        payloads: list[Any] = []
        deferred: dict[int, list[Batch]] = {}
        for payload, task_deferred in self.scheduler.imap(
                task, ranges, context=self.context):
            for index, extras in task_deferred.items():
                deferred.setdefault(index, []).extend(extras)
            payloads.append(payload)

        flush_batches: list[Batch] = []
        self._flush_deferred(stages, deferred, flush_batches)

        if use_partial:
            states = payloads + [sink.morsel_state(batch)
                                 for batch in flush_batches]
            if keep_batches:
                out_batches.extend(state.batch for state in states)
            if metrics is None:
                return sink.finish_partial(states)
            started = perf_counter()
            result = sink.finish_partial(states)
            # the merge produces the operator's output rows; batches were
            # already counted one per partial state above
            metrics.record(sink, result.row_count,
                           perf_counter() - started, 0)
            return result
        batches = payloads + flush_batches
        if keep_batches:
            out_batches.extend(batches)
        if metrics is None:
            return sink.finish_sequential(concat_batches(batches))
        started = perf_counter()
        result = sink.finish_sequential(concat_batches(batches))
        metrics.record(sink, result.row_count, perf_counter() - started)
        return result

    # -- streaming ---------------------------------------------------------- #
    def stream_morsels(self, *, max_rows: int | None = None
                       ) -> Iterator[QueryResult]:
        """Yield the projection result morsel by morsel (streamable plans).

        OFFSET/LIMIT are applied across the stream; at least one (possibly
        empty) piece is always produced so consumers can read the result
        schema from the first piece.  :meth:`prepare` must have been called
        (under the database lock) before iterating.
        """
        assert self.streamable and self._prepared
        sink = self.sink
        assert isinstance(sink, Project)
        stages = self.stages
        skip = self.limit.offset or 0 if self.limit is not None else 0
        remaining = self.limit.limit if self.limit is not None else None

        def task(span: tuple[int, int]
                 ) -> tuple[QueryResult, bool, dict[int, list[Batch]]]:
            deferred: dict[int, list[Batch]] = {}
            batch = self._morsel_batch(span, deferred)
            piece, constant = self._project_piece(sink, batch)
            return piece, constant, deferred

        def clip(piece: QueryResult) -> QueryResult | None:
            nonlocal skip, remaining
            rows = piece.row_count
            if skip >= rows:
                skip -= rows
                return None
            if skip or (remaining is not None and remaining < rows - skip):
                piece = slice_result(piece, skip, remaining)
                skip = 0
            if remaining is not None:
                remaining -= piece.row_count
            return piece

        deferred: dict[int, list[Batch]] = {}
        yielded = False
        exhausted = False
        for piece, constant, task_deferred in \
                self.scheduler.imap(task, self._split_ranges(max_rows),
                                    context=self.context):
            for index, extras in task_deferred.items():
                deferred.setdefault(index, []).extend(extras)
            if constant:
                # constants broadcast to one row total (sequential rule)
                clipped = clip(piece)
                yield clipped if clipped is not None else slice_result(
                    piece, 0, 0)
                yielded = True
                exhausted = True
                break
            clipped = clip(piece)
            if clipped is not None:
                yield clipped
                yielded = True
            if remaining is not None and remaining <= 0:
                exhausted = True
                break
        if not exhausted:
            if self.context is not None:
                self.context.check()
            flush_batches: list[Batch] = []
            self._flush_deferred(stages, deferred, flush_batches)
            for batch in flush_batches:
                piece, _ = self._project_piece(sink, batch)
                clipped = clip(piece)
                if clipped is not None:
                    yield clipped
                    yielded = True
                if remaining is not None and remaining <= 0:
                    break
        if not yielded:
            # schema-only piece so consumers always see the column layout
            piece, _ = sink.project(self._template)
            yield slice_result(piece, 0, 0)

    # -- EXPLAIN ------------------------------------------------------------ #
    def explain_lines(self) -> list[str]:
        """Render the operator tree with estimated morsel counts."""
        self._estimate_scans()
        lines: list[str] = []

        def render(node: PhysicalOperator, depth: int) -> None:
            lines.append("  " * depth + node.describe())
            for child in node.children:
                render(child, depth + 1)

        render(self.root, 0)
        scheduler = self.scheduler
        safety = "yes" if self.parallel_safe else "no"
        lines.append(f"-- workers={scheduler.workers} "
                     f"morsel_rows={scheduler.morsel_rows} "
                     f"parallel_safe={safety}")
        return lines

    def analyze_lines(self, *, elapsed: float) -> list[str]:
        """Render the executed tree annotated with per-operator actuals.

        Requires :attr:`plan_metrics` to have been installed before the
        plan ran.  Operators that never saw a batch (e.g. pruned by an
        early LIMIT stop) carry no annotation.
        """
        self._estimate_scans()
        metrics = self.plan_metrics
        lines: list[str] = []

        def render(node: PhysicalOperator, depth: int) -> None:
            text = node.describe()
            stats = metrics.stats_for(node) if metrics is not None else None
            if stats is not None:
                rows, batches, seconds = stats
                text += (f" (actual rows={rows} batches={batches} "
                         f"time={seconds * 1000.0:.3f}ms)")
            lines.append("  " * depth + text)
            for child in node.children:
                render(child, depth + 1)

        render(self.root, 0)
        scheduler = self.scheduler
        safety = "yes" if self.parallel_safe else "no"
        lines.append(f"-- workers={scheduler.workers} "
                     f"morsel_rows={scheduler.morsel_rows} "
                     f"parallel_safe={safety} "
                     f"total_time={elapsed * 1000.0:.3f}ms")
        return lines

    def _estimate_scans(self) -> None:
        """Annotate scans with row/morsel estimates without executing
        subqueries or UDFs (storage tables only)."""
        def visit(source: Scan, stages: Sequence[PhysicalOperator],
                  pipeline: bool) -> None:
            source_ast = getattr(source, "source_ast", None)
            if isinstance(source_ast, ast.NamedTable) \
                    and virtual_table(self.database, source_ast.name) is None:
                # unknown tables raise here, exactly as execution would
                rows = self.database.storage.table(source_ast.name).row_count
                source.estimated_rows = rows
                if pipeline and self.parallel_safe:
                    source.morsel_hint = self.scheduler.morsel_count(rows)
                else:
                    source.morsel_hint = 1
            for stage in stages:
                if isinstance(stage, HashJoin):
                    visit(stage.build_source, stage.build_stages, False)

        visit(self.source, self.stages, True)


# re-exported for the executor's EXPLAIN statement
def explain_select(database: "Database", select: ast.Select) -> list[str]:
    return Planner(database).plan(select).explain_lines()
