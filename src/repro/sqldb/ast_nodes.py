"""Abstract syntax tree nodes produced by the SQL parser."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .schema import ColumnDef, FunctionParameter
from .types import SQLType


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #
class Expression:
    """Base class for expression nodes."""


@dataclass
class Literal(Expression):
    value: Any


@dataclass
class ColumnRef(Expression):
    name: str
    table: str | None = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Star(Expression):
    """``*`` or ``table.*`` in a select list."""

    table: str | None = None


@dataclass
class Parameter(Expression):
    """A positional ``?`` placeholder inside a PREPAREd statement.

    ``index`` is the zero-based position in the statement's parameter list;
    EXECUTE substitutes the bound value for it before planning.
    """

    index: int


@dataclass
class UnaryOp(Expression):
    op: str
    operand: Expression


@dataclass
class BinaryOp(Expression):
    op: str
    left: Expression
    right: Expression


@dataclass
class FunctionCall(Expression):
    name: str
    args: list[Expression] = field(default_factory=list)
    distinct: bool = False


@dataclass
class CaseExpression(Expression):
    whens: list[tuple[Expression, Expression]] = field(default_factory=list)
    default: Expression | None = None


@dataclass
class InList(Expression):
    operand: Expression
    items: list[Expression] = field(default_factory=list)
    negated: bool = False


@dataclass
class Between(Expression):
    operand: Expression
    lower: Expression
    upper: Expression
    negated: bool = False


@dataclass
class IsNull(Expression):
    operand: Expression
    negated: bool = False


@dataclass
class Like(Expression):
    operand: Expression
    pattern: Expression
    negated: bool = False


@dataclass
class Cast(Expression):
    operand: Expression
    target_type: SQLType


@dataclass
class ScalarSubquery(Expression):
    query: "Select"


@dataclass
class ExistsSubquery(Expression):
    query: "Select"
    negated: bool = False


@dataclass
class InSubquery(Expression):
    operand: Expression
    query: "Select"
    negated: bool = False


# --------------------------------------------------------------------------- #
# Table references
# --------------------------------------------------------------------------- #
class TableRef:
    """Base class for FROM-clause items."""


@dataclass
class NamedTable(TableRef):
    name: str
    alias: str | None = None


@dataclass
class SubquerySource(TableRef):
    query: "Select"
    alias: str | None = None


@dataclass
class TableFunctionCall(TableRef):
    """A table-producing function call in the FROM clause.

    Arguments may be scalar expressions or entire subqueries (MonetDB allows
    ``SELECT * FROM train_rnforest((SELECT data, labels FROM trainingset), 5)``,
    paper Listing 3).
    """

    name: str
    args: list[Any] = field(default_factory=list)  # Expression | Select
    alias: str | None = None


@dataclass
class Join(TableRef):
    left: TableRef
    right: TableRef
    join_type: str = "INNER"  # INNER | LEFT | CROSS
    condition: Expression | None = None


# --------------------------------------------------------------------------- #
# Statements
# --------------------------------------------------------------------------- #
class Statement:
    """Base class for SQL statements."""


@dataclass
class SelectItem:
    expression: Expression
    alias: str | None = None


@dataclass
class OrderItem:
    expression: Expression
    descending: bool = False


@dataclass
class Select(Statement):
    items: list[SelectItem] = field(default_factory=list)
    from_clause: TableRef | None = None
    where: Expression | None = None
    group_by: list[Expression] = field(default_factory=list)
    having: Expression | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False


@dataclass
class CreateTable(Statement):
    name: str
    columns: list[ColumnDef] = field(default_factory=list)
    if_not_exists: bool = False
    as_select: Select | None = None


@dataclass
class DropTable(Statement):
    name: str
    if_exists: bool = False


@dataclass
class InsertValues(Statement):
    table: str
    columns: list[str] = field(default_factory=list)
    rows: list[list[Expression]] = field(default_factory=list)


@dataclass
class InsertSelect(Statement):
    table: str
    columns: list[str] = field(default_factory=list)
    query: Select | None = None


@dataclass
class Delete(Statement):
    table: str
    where: Expression | None = None


@dataclass
class Update(Statement):
    table: str
    assignments: list[tuple[str, Expression]] = field(default_factory=list)
    where: Expression | None = None


@dataclass
class CreateFunction(Statement):
    name: str
    parameters: list[FunctionParameter] = field(default_factory=list)
    returns_table: bool = False
    return_columns: list[ColumnDef] = field(default_factory=list)
    return_type: SQLType | None = None
    language: str = "PYTHON"
    body: str = ""
    or_replace: bool = False


@dataclass
class DropFunction(Statement):
    name: str
    if_exists: bool = False


@dataclass
class CopyInto(Statement):
    """``COPY INTO table FROM 'path' [DELIMITERS ...]`` — CSV ingestion."""

    table: str
    path: str
    delimiter: str = ","
    header: bool = False


@dataclass
class Explain(Statement):
    """``EXPLAIN [ANALYZE] <select>`` — render the physical operator plan.

    With ``ANALYZE`` the query is *executed* and each plan node is annotated
    with its actual rows, batches and cumulative wall time.
    """

    query: Select
    analyze: bool = False


@dataclass
class Checkpoint(Statement):
    """``CHECKPOINT`` — persist the database image and truncate the WAL."""


@dataclass
class Verify(Statement):
    """``VERIFY`` — scrub every image/WAL checksum; one stats row per table."""


@dataclass
class BackupTo(Statement):
    """``BACKUP TO 'path'`` — write a consistent standalone image copy."""

    path: str


@dataclass
class ShowStats(Statement):
    """``SHOW STATS`` — engine, durability, and server fault counters."""


@dataclass
class Prepare(Statement):
    """``PREPARE name AS <statement>`` — register a parameterised template.

    ``sql`` holds the raw inner statement text (for cache keying and client
    display); ``statement`` is its parsed form with :class:`Parameter`
    placeholders left unbound.
    """

    name: str
    sql: str
    statement: Statement


@dataclass
class ExecutePrepared(Statement):
    """``EXECUTE name (arg, ...)`` — run a prepared template with bound args."""

    name: str
    args: list[Expression] = field(default_factory=list)


@dataclass
class Deallocate(Statement):
    """``DEALLOCATE name`` / ``DEALLOCATE ALL`` — drop prepared statements.

    ``name is None`` means ALL.
    """

    name: str | None
