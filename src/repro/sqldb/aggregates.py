"""Aggregate functions for GROUP BY / implicit aggregation queries.

Two execution tiers live here: the original per-value Python implementations
(exact SQL NULL semantics, used for object columns and exotic aggregates) and
numpy kernels used when the input is a typed array or a
:class:`repro.sqldb.vector.Vector` — whole-column reductions for implicit
aggregation and ``reduceat``-based grouped reductions for single-pass hash
aggregation.  NULL-bearing vectors stay on the numpy tier: SUM/AVG zero-fill
masked positions and divide by per-group valid counts, MIN/MAX fill with the
dtype's identity element, COUNT reduces the validity mask itself, and groups
with no valid value yield ``None`` — the same results the per-value
implementations produce, computed per byte instead of per Python object.
Dictionary-encoded string vectors run MIN/MAX on the codes (the dictionary
is sorted, so code order is string order).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence

import numpy as np

from ..errors import ExecutionError
from .types import python_value
from .vector import Vector

AggregateFunction = Callable[[Sequence[Any]], Any]


def _non_null(values: Sequence[Any]) -> list[Any]:
    return [value for value in values if value is not None]


def _agg_sum(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    return sum(present) if present else None


def _agg_avg(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    return sum(present) / len(present) if present else None


def _agg_min(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    return min(present) if present else None


def _agg_max(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    return max(present) if present else None


def _agg_count(values: Sequence[Any]) -> int:
    return len(_non_null(values))


def _agg_count_star(values: Sequence[Any]) -> int:
    return len(values)


def _agg_median(values: Sequence[Any]) -> Any:
    present = sorted(_non_null(values))
    if not present:
        return None
    mid = len(present) // 2
    if len(present) % 2 == 1:
        return present[mid]
    return (present[mid - 1] + present[mid]) / 2


def _agg_stddev(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    if len(present) < 2:
        return None
    mean = sum(present) / len(present)
    variance = sum((v - mean) ** 2 for v in present) / (len(present) - 1)
    return math.sqrt(variance)


def _agg_var(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    if len(present) < 2:
        return None
    mean = sum(present) / len(present)
    return sum((v - mean) ** 2 for v in present) / (len(present) - 1)


def _agg_group_concat(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    return ",".join(str(v) for v in present) if present else None


#: Aggregate name -> implementation over the list of per-row argument values.
AGGREGATE_FUNCTIONS: dict[str, AggregateFunction] = {
    "SUM": _agg_sum,
    "AVG": _agg_avg,
    "MIN": _agg_min,
    "MAX": _agg_max,
    "COUNT": _agg_count,
    "MEDIAN": _agg_median,
    "STDDEV": _agg_stddev,
    "STDDEV_SAMP": _agg_stddev,
    "VAR_SAMP": _agg_var,
    "VARIANCE": _agg_var,
    "GROUP_CONCAT": _agg_group_concat,
}


def is_aggregate(name: str) -> bool:
    return name.upper() in AGGREGATE_FUNCTIONS


#: Aggregates with a numpy whole-column / grouped kernel.  MEDIAN and the
#: variance family stay on the Python tier: their SQL definitions (sample
#: variance, integer-preserving odd-count median) differ from numpy defaults.
VECTOR_AGGREGATES = frozenset({"SUM", "AVG", "MIN", "MAX", "COUNT"})


def _int_sum_may_overflow(upper: str, values: np.ndarray) -> bool:
    """Whether an integer SUM could exceed int64 (numpy would silently wrap).

    Conservative magnitude-times-count bound in exact Python arithmetic; when
    it trips, the caller uses the Python tier, whose ints are unbounded.
    """
    if upper != "SUM" or values.dtype.kind not in "iu" or values.size == 0:
        return False
    largest = max(abs(int(np.max(values))), abs(int(np.min(values))))
    return largest * int(values.size) >= 2 ** 63


def _whole_column_vector(upper: str, values: np.ndarray) -> Any:
    if upper == "COUNT":
        return int(values.size)
    if values.dtype == np.bool_ and upper in ("SUM", "AVG"):
        values = values.astype(np.int64)
    if upper == "SUM":
        return np.sum(values).item()
    if upper == "AVG":
        return float(np.mean(values))
    if upper == "MIN":
        return np.min(values).item()
    return np.max(values).item()


#: Sentinel: a vector kernel declined and the Python tier must run instead.
_FALLBACK = object()


def _whole_column_masked(upper: str, vector: Vector) -> Any:
    """Whole-column reduction over a vector (mask-aware); may decline."""
    size = len(vector)
    null_count = vector.null_count()
    if upper == "COUNT":
        return size - null_count
    if null_count == size:
        return None
    if vector.dictionary is not None:
        if upper not in ("MIN", "MAX"):
            return _FALLBACK  # SUM/AVG over strings: Python-tier errors apply
        codes = vector.data if vector.mask is None else vector.data[~vector.mask]
        code = int(np.min(codes) if upper == "MIN" else np.max(codes))
        return vector.dictionary[code]
    data = vector.data if vector.mask is None else vector.data[~vector.mask]
    if _int_sum_may_overflow(upper, data):
        return _FALLBACK
    return _whole_column_vector(upper, data)


def call_aggregate(name: str, values: Sequence[Any], *, is_star: bool = False,
                   distinct: bool = False) -> Any:
    """Evaluate an aggregate over the per-row values of its argument.

    ``values`` may be a list, a numpy array or a :class:`Vector`; typed
    arrays and vectors are reduced with numpy (masks excluded per SQL NULL
    semantics), everything else by the per-value implementations.
    """
    upper = name.upper()
    if upper not in AGGREGATE_FUNCTIONS:
        raise ExecutionError(f"unknown aggregate {name!r}")
    if isinstance(values, Vector):
        if not distinct and len(values) > 0 and upper in VECTOR_AGGREGATES:
            result = _whole_column_masked(upper, values)
            if result is not _FALLBACK:
                return python_value(result)
        values = values.to_list()
    if isinstance(values, np.ndarray):
        if (not distinct and values.dtype != object and values.size > 0
                and upper in VECTOR_AGGREGATES
                and not _int_sum_may_overflow(upper, values)):
            return _whole_column_vector(upper, values)
        values = values.tolist()
    if distinct:
        seen: list[Any] = []
        for value in values:
            if value not in seen:
                seen.append(value)
        values = seen
    if upper == "COUNT" and is_star:
        return _agg_count_star(values)
    return python_value(AGGREGATE_FUNCTIONS[upper](values))


# --------------------------------------------------------------------------- #
# grouped (hash aggregation) kernels
# --------------------------------------------------------------------------- #
class GroupLayout:
    """Row-to-group assignment plus sort-based group geometry.

    ``gids`` assigns every batch row a group id in [0, n_groups), numbered in
    first-appearance order.  ``order``/``starts`` describe the rows permuted
    so that each group (cluster) is contiguous — in *any* cluster order — so
    ``ufunc.reduceat`` can reduce every group in one pass; ``out_perm`` maps
    cluster position to output group id (None means they already coincide).
    Factorisers that derive the geometry from a single key sort can pass it
    in; otherwise it is derived lazily from ``gids``.
    """

    def __init__(self, gids: np.ndarray, n_groups: int, *,
                 order: np.ndarray | None = None,
                 starts: np.ndarray | None = None,
                 out_perm: np.ndarray | None = None) -> None:
        self.gids = np.asarray(gids, dtype=np.int64)
        self.n_groups = n_groups
        self.size = int(self.gids.size)
        self._order = order
        self._starts = starts
        self.out_perm = out_perm
        self._cluster_counts: np.ndarray | None = None
        self._group_rows: list[np.ndarray] | None = None

    @property
    def order(self) -> np.ndarray:
        if self._order is None:
            self._order = np.argsort(self.gids, kind="stable")
        return self._order

    @property
    def starts(self) -> np.ndarray:
        if self._starts is None:
            self._starts = np.searchsorted(self.gids[self.order],
                                           np.arange(self.n_groups))
        return self._starts

    @property
    def cluster_counts(self) -> np.ndarray:
        if self._cluster_counts is None:
            self._cluster_counts = np.diff(self.starts, append=self.size)
        return self._cluster_counts

    def to_group_order(self, per_cluster: np.ndarray) -> np.ndarray:
        """Rearrange a per-cluster result into output group-id order."""
        if self.out_perm is None:
            return per_cluster
        out = np.empty_like(per_cluster)
        out[self.out_perm] = per_cluster
        return out

    @property
    def counts(self) -> np.ndarray:
        """Group sizes in output group order."""
        return self.to_group_order(self.cluster_counts)

    @property
    def group_rows(self) -> list[np.ndarray]:
        """Per-group row indices, in output group order."""
        if self._group_rows is None:
            clusters = np.split(self.order, self.starts[1:])
            if self.out_perm is None:
                self._group_rows = clusters
            else:
                rows: list[np.ndarray] = [None] * self.n_groups  # type: ignore[list-item]
                for position, rows_in_cluster in zip(self.out_perm, clusters):
                    rows[position] = rows_in_cluster
                self._group_rows = rows
        return self._group_rows


def _grouped_vector(upper: str, values: np.ndarray, layout: GroupLayout) -> list[Any]:
    if upper == "COUNT":
        return layout.counts.tolist()
    sorted_values = values[layout.order]
    if sorted_values.dtype == np.bool_ and upper in ("SUM", "AVG"):
        sorted_values = sorted_values.astype(np.int64)
    if upper == "SUM":
        per_cluster = np.add.reduceat(sorted_values, layout.starts)
    elif upper == "AVG":
        sums = np.add.reduceat(sorted_values.astype(np.float64), layout.starts)
        per_cluster = sums / layout.cluster_counts
    elif upper == "MIN":
        per_cluster = np.minimum.reduceat(sorted_values, layout.starts)
    else:
        per_cluster = np.maximum.reduceat(sorted_values, layout.starts)
    return layout.to_group_order(per_cluster).tolist()


#: Identity fill per reduction: masked positions must not affect the result.
_REDUCE_FILL = {
    "MIN": {"f": np.inf, "i": np.iinfo(np.int64).max, "u": np.iinfo(np.int64).max},
    "MAX": {"f": -np.inf, "i": np.iinfo(np.int64).min, "u": np.iinfo(np.int64).min},
}


def _grouped_vector_masked(upper: str, vector: Vector,
                           layout: GroupLayout) -> list[Any] | None:
    """Grouped masked reduction over a vector; ``None`` = use the Python tier.

    One ``reduceat`` pass per aggregate: the validity mask is reduced to
    per-group valid counts, masked positions are filled with the reduction's
    identity element, and groups with no valid value come out as ``None``.
    """
    if vector.mask is None and vector.dictionary is None:
        if _int_sum_may_overflow(upper, vector.data):
            return None
        return _grouped_vector(upper, vector.data, layout)
    order = layout.order
    starts = layout.starts
    valid = vector.valid()
    valid_counts = layout.to_group_order(
        np.add.reduceat(valid[order].astype(np.int64), starts))
    if upper == "COUNT":
        return valid_counts.tolist()
    if vector.dictionary is not None:
        if upper not in ("MIN", "MAX"):
            return None  # SUM/AVG over strings: Python-tier errors apply
        fill = (np.iinfo(np.int64).max if upper == "MIN"
                else np.iinfo(np.int64).min)
        filled = np.where(valid, vector.data, fill)[order]
        reducer = np.minimum if upper == "MIN" else np.maximum
        per_group = layout.to_group_order(reducer.reduceat(filled, starts))
        return [None if count == 0 else vector.dictionary[code]
                for code, count in zip(per_group.tolist(), valid_counts.tolist())]
    data = vector.data
    was_bool = data.dtype == np.bool_
    if was_bool:
        data = data.astype(np.int64)
    if upper == "SUM" and data.dtype.kind in "iu" \
            and _int_sum_may_overflow(upper, data[valid]):
        return None
    if upper == "SUM":
        sums = layout.to_group_order(
            np.add.reduceat(np.where(valid, data, 0)[order], starts))
        return [None if count == 0 else value
                for value, count in zip(sums.tolist(), valid_counts.tolist())]
    if upper == "AVG":
        sums = layout.to_group_order(np.add.reduceat(
            np.where(valid, data, 0).astype(np.float64)[order], starts))
        averages = sums / np.maximum(valid_counts, 1)
        return [None if count == 0 else value
                for value, count in zip(averages.tolist(), valid_counts.tolist())]
    # MIN / MAX
    fill = _REDUCE_FILL[upper].get(data.dtype.kind)
    if fill is None:
        return None
    filled = np.where(valid, data, fill)[order]
    reducer = np.minimum if upper == "MIN" else np.maximum
    per_group = layout.to_group_order(reducer.reduceat(filled, starts))
    return [None if count == 0 else (bool(value) if was_bool else value)
            for value, count in zip(per_group.tolist(), valid_counts.tolist())]


# --------------------------------------------------------------------------- #
# partial aggregation (morsel-parallel hash aggregation)
# --------------------------------------------------------------------------- #
#: Aggregates whose state decomposes into per-morsel partials that merge
#: exactly: SUM/COUNT add, MIN/MAX combine, AVG carries (sum, count) pairs.
#: Everything else (MEDIAN, the variance family, GROUP_CONCAT, DISTINCT
#: aggregates) needs the whole group in one place and stays sequential.
PARTIAL_AGGREGATES = frozenset({"SUM", "AVG", "MIN", "MAX", "COUNT"})


class PartialAggregate:
    """One aggregate's per-local-group state for a single morsel.

    ``sums``/``counts``/``extremes`` are aligned to the morsel's *local*
    group ids; the merge step routes them to global groups through the
    morsel's local-to-global mapping.  ``None`` entries mean "no valid value
    in this group" (the SQL all-NULL result), so merging stays NULL-correct
    without consulting validity masks again.
    """

    __slots__ = ("name", "sums", "counts", "extremes")

    def __init__(self, name: str, *, sums: list[Any] | None = None,
                 counts: list[int] | None = None,
                 extremes: list[Any] | None = None) -> None:
        self.name = name
        self.sums = sums
        self.counts = counts
        self.extremes = extremes


def partial_aggregate(name: str, values: Sequence[Any], layout: GroupLayout,
                      *, is_star: bool = False) -> PartialAggregate:
    """One morsel's decomposable aggregate state, per local group.

    Reuses the grouped kernels, so every per-morsel partial inherits their
    exact semantics (mask-aware reductions, int-overflow fallback to
    unbounded Python integers, string MIN/MAX on dictionary codes).
    """
    upper = name.upper()
    if upper not in PARTIAL_AGGREGATES:
        raise ExecutionError(f"aggregate {name!r} has no partial kernel")
    if upper == "COUNT":
        if is_star:
            return PartialAggregate(upper, counts=layout.counts.tolist())
        return PartialAggregate(
            upper, counts=grouped_aggregate("COUNT", values, layout))
    if upper == "SUM":
        return PartialAggregate(
            upper, sums=grouped_aggregate("SUM", values, layout))
    if upper == "AVG":
        return PartialAggregate(
            upper,
            sums=grouped_aggregate("SUM", values, layout),
            counts=grouped_aggregate("COUNT", values, layout))
    return PartialAggregate(
        upper, extremes=grouped_aggregate(upper, values, layout))


def merge_partial_aggregates(
        name: str,
        partials: Sequence[tuple[PartialAggregate, Sequence[int]]],
        n_groups: int) -> list[Any]:
    """Merge per-morsel partial states into one value per global group.

    ``partials`` pairs each morsel's state with its local-to-global group id
    mapping.  Groups no morsel contributed a valid value to come out as
    ``None`` (``0`` for COUNT) — the same results one whole-batch reduction
    produces.
    """
    upper = name.upper()
    if upper == "COUNT":
        totals = [0] * n_groups
        for state, local_to_global in partials:
            for local, gid in enumerate(local_to_global):
                totals[gid] += state.counts[local]
        return totals
    if upper == "SUM":
        sums: list[Any] = [None] * n_groups
        for state, local_to_global in partials:
            for local, gid in enumerate(local_to_global):
                value = state.sums[local]
                if value is None:
                    continue
                sums[gid] = value if sums[gid] is None else sums[gid] + value
        return sums
    if upper == "AVG":
        sums = [None] * n_groups
        counts = [0] * n_groups
        for state, local_to_global in partials:
            for local, gid in enumerate(local_to_global):
                value = state.sums[local]
                if value is not None:
                    sums[gid] = value if sums[gid] is None else sums[gid] + value
                counts[gid] += state.counts[local]
        return [None if counts[g] == 0 else sums[g] / counts[g]
                for g in range(n_groups)]
    if upper in ("MIN", "MAX"):
        pick = min if upper == "MIN" else max
        extremes: list[Any] = [None] * n_groups
        for state, local_to_global in partials:
            for local, gid in enumerate(local_to_global):
                value = state.extremes[local]
                if value is None:
                    continue
                current = extremes[gid]
                extremes[gid] = value if current is None else pick(current, value)
        return extremes
    raise ExecutionError(f"aggregate {name!r} has no partial kernel")


def grouped_aggregate(name: str, values: Sequence[Any], layout: GroupLayout, *,
                      is_star: bool = False, distinct: bool = False) -> list[Any]:
    """Per-group aggregate results, in group order (one entry per group).

    ``values`` is the row-aligned argument column.  Typed arrays and vectors
    with a vectorisable aggregate are reduced in one ``reduceat`` pass
    (mask-aware for NULL-bearing vectors); all other cases delegate to
    :func:`call_aggregate` per group, which keeps the results bit-identical
    to the per-group execution path.
    """
    upper = name.upper()
    if upper not in AGGREGATE_FUNCTIONS:
        raise ExecutionError(f"unknown aggregate {name!r}")
    if upper == "COUNT" and is_star and not distinct:
        return layout.counts.tolist()
    if (not distinct and layout.size > 0 and upper in VECTOR_AGGREGATES
            and isinstance(values, Vector)):
        result = _grouped_vector_masked(upper, values, layout)
        if result is not None:
            return result
    if (not distinct and layout.size > 0 and upper in VECTOR_AGGREGATES
            and isinstance(values, np.ndarray) and values.dtype != object
            and not _int_sum_may_overflow(upper, values)):
        return _grouped_vector(upper, values, layout)
    if isinstance(values, Vector):
        value_list: list[Any] = values.to_list()
    elif isinstance(values, np.ndarray):
        value_list = values.tolist()
    else:
        value_list = list(values)
    return [
        call_aggregate(name, [value_list[i] for i in rows],
                       is_star=is_star, distinct=distinct)
        for rows in layout.group_rows
    ]
