"""Aggregate functions for GROUP BY / implicit aggregation queries."""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence

from ..errors import ExecutionError

AggregateFunction = Callable[[Sequence[Any]], Any]


def _non_null(values: Sequence[Any]) -> list[Any]:
    return [value for value in values if value is not None]


def _agg_sum(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    return sum(present) if present else None


def _agg_avg(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    return sum(present) / len(present) if present else None


def _agg_min(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    return min(present) if present else None


def _agg_max(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    return max(present) if present else None


def _agg_count(values: Sequence[Any]) -> int:
    return len(_non_null(values))


def _agg_count_star(values: Sequence[Any]) -> int:
    return len(values)


def _agg_median(values: Sequence[Any]) -> Any:
    present = sorted(_non_null(values))
    if not present:
        return None
    mid = len(present) // 2
    if len(present) % 2 == 1:
        return present[mid]
    return (present[mid - 1] + present[mid]) / 2


def _agg_stddev(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    if len(present) < 2:
        return None
    mean = sum(present) / len(present)
    variance = sum((v - mean) ** 2 for v in present) / (len(present) - 1)
    return math.sqrt(variance)


def _agg_var(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    if len(present) < 2:
        return None
    mean = sum(present) / len(present)
    return sum((v - mean) ** 2 for v in present) / (len(present) - 1)


def _agg_group_concat(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    return ",".join(str(v) for v in present) if present else None


#: Aggregate name -> implementation over the list of per-row argument values.
AGGREGATE_FUNCTIONS: dict[str, AggregateFunction] = {
    "SUM": _agg_sum,
    "AVG": _agg_avg,
    "MIN": _agg_min,
    "MAX": _agg_max,
    "COUNT": _agg_count,
    "MEDIAN": _agg_median,
    "STDDEV": _agg_stddev,
    "STDDEV_SAMP": _agg_stddev,
    "VAR_SAMP": _agg_var,
    "VARIANCE": _agg_var,
    "GROUP_CONCAT": _agg_group_concat,
}


def is_aggregate(name: str) -> bool:
    return name.upper() in AGGREGATE_FUNCTIONS


def call_aggregate(name: str, values: Sequence[Any], *, is_star: bool = False,
                   distinct: bool = False) -> Any:
    """Evaluate an aggregate over the per-row values of its argument."""
    upper = name.upper()
    if upper not in AGGREGATE_FUNCTIONS:
        raise ExecutionError(f"unknown aggregate {name!r}")
    if distinct:
        seen: list[Any] = []
        for value in values:
            if value not in seen:
                seen.append(value)
        values = seen
    if upper == "COUNT" and is_star:
        return _agg_count_star(values)
    return AGGREGATE_FUNCTIONS[upper](values)
