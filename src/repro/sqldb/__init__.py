"""``repro.sqldb`` — an embedded, MonetDB-flavoured columnar SQL engine.

This package is the substrate the devUDF reproduction runs against: it stores
tables column-at-a-time, registers ``LANGUAGE PYTHON`` UDFs whose *body only*
lives in the ``sys.functions`` meta table, executes them operator-at-a-time
with numpy-array inputs, and supports loopback queries through the ``_conn``
object — the MonetDB/Python behaviours the paper relies on.
"""

from .catalog import CatalogFunction, FunctionCatalog, make_signature
from .context import QueryContext
from .database import Database
from .parser import parse_script, parse_statement
from .result import QueryResult, ResultColumn
from .schema import ColumnDef, FunctionParameter, FunctionSignature, TableSchema
from .storage import Column, Storage, Table
from .types import ColumnType, SQLType, parse_type_name
from .udf import LoopbackConnection, UDFRuntime, build_udf_source, compile_udf

__all__ = [
    "CatalogFunction",
    "Column",
    "ColumnDef",
    "ColumnType",
    "Database",
    "FunctionCatalog",
    "FunctionParameter",
    "FunctionSignature",
    "LoopbackConnection",
    "QueryContext",
    "QueryResult",
    "ResultColumn",
    "SQLType",
    "Storage",
    "Table",
    "TableSchema",
    "UDFRuntime",
    "build_udf_source",
    "compile_udf",
    "make_signature",
    "parse_script",
    "parse_statement",
    "parse_type_name",
]
