"""Python UDF compilation and execution (the MonetDB/Python "pyapi" stand-in).

MonetDB stores only the *body* of a Python UDF (paper Listing 1).  At call
time the engine synthesises a real Python function from the catalog signature
and the body, executes it **once per operator invocation** with entire columns
as numpy arrays (operator-at-a-time), and converts the return value back to
columns.  Loopback queries are available through the ``_conn`` object passed
to every UDF (paper §2.3).
"""

from __future__ import annotations

import textwrap
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

import numpy as np

from ..errors import UDFError
from .schema import FunctionSignature
from .storage import column_to_numpy
from .types import SQLType, coerce_value
from .vector import Vector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .database import Database


class LoopbackConnection:
    """The ``_conn`` object handed to every MonetDB/Python UDF.

    ``execute`` runs a SQL query against the owning database and returns the
    result as a dict of column name -> numpy array, which is how
    MonetDB/Python surfaces loopback results to the UDF author.
    """

    def __init__(self, database: "Database") -> None:
        self._database = database
        self.queries_executed: list[str] = []

    def execute(self, query: str) -> dict[str, np.ndarray]:
        self.queries_executed.append(query)
        result = self._database.execute(query)
        return result.to_numpy_dict()


def build_udf_source(signature: FunctionSignature, *, function_name: str | None = None) -> str:
    """Build the Python source of a ``def`` wrapping the stored body.

    The generated header is exactly the transformation devUDF performs on
    import (paper Listing 1 -> Listing 2): parameters in catalog order plus
    the implicit ``_conn`` parameter.
    """
    name = function_name or signature.name
    params = list(signature.parameter_names) + ["_conn=None"]
    header = f"def {name}({', '.join(params)}):"
    body = signature.body
    if not body.strip():
        body = "pass"
    dedented = textwrap.dedent(body).strip("\n")
    indented = textwrap.indent(dedented, "    ")
    return f"{header}\n{indented}\n"


def compile_udf(signature: FunctionSignature) -> Callable[..., Any]:
    """Compile the stored body into a callable Python function.

    The execution namespace pre-imports ``numpy`` (as both ``numpy`` and
    ``np``) and ``pickle``, matching the MonetDB/Python embedded interpreter
    environment that the paper's example UDFs rely on.
    """
    import pickle  # local import: the UDF namespace needs the module object

    source = build_udf_source(signature, function_name="_devudf_function")
    namespace: dict[str, Any] = {
        "numpy": np,
        "np": np,
        "pickle": pickle,
    }
    try:
        code = compile(source, f"<udf {signature.name}>", "exec")
        exec(code, namespace)  # noqa: S102 - executing user UDF code is the feature
    except SyntaxError as exc:
        raise UDFError(signature.name, f"body does not compile: {exc}", exc) from exc
    return namespace["_devudf_function"]


def columns_to_udf_args(
    arg_values: Sequence[Any],
    arg_is_column: Sequence[bool],
    sql_types: Sequence[SQLType],
) -> list[Any]:
    """Convert evaluated argument columns/scalars to the UDF input format.

    Columns that are already numpy arrays (the cached zero-copy scan format)
    are handed to the UDF without re-conversion.  All column arguments are
    read-only, regardless of which execution path produced them: the zero-copy
    handoff means a write could reach shared engine state, so mutation fails
    loudly and *consistently* instead of depending on the query shape.
    """
    converted: list[Any] = []
    for value, is_column, sql_type in zip(arg_values, arg_is_column, sql_types):
        if is_column:
            if isinstance(value, Vector):
                # same observable shapes as column_to_numpy: object array
                # with Nones for NULL-bearing/string columns, typed otherwise
                array = value.to_numpy().view()
            elif isinstance(value, np.ndarray):
                array = value.view()
            else:
                array = column_to_numpy(value, sql_type)
            array.setflags(write=False)
            converted.append(array)
        else:
            converted.append(value)
    return converted


def _to_value_list(value: Any) -> list[Any]:
    """Normalise a UDF output object to a list of Python values."""
    if isinstance(value, np.ndarray):
        return [item.item() if isinstance(item, np.generic) else item for item in value.tolist()] \
            if value.dtype == object else value.tolist()
    if isinstance(value, np.generic):
        return [value.item()]
    if isinstance(value, (list, tuple)):
        return [item.item() if isinstance(item, np.generic) else item for item in value]
    return [value]


def convert_scalar_result(
    signature: FunctionSignature, result: Any, input_length: int
) -> tuple[list[Any], bool]:
    """Convert a scalar UDF's return value to a column.

    Returns ``(values, is_row_aligned)``.  ``is_row_aligned`` is True when the
    UDF returned one value per input row; False when it aggregated the column
    to fewer values (e.g. the paper's ``mean_deviation`` returns one DOUBLE for
    the whole input column).
    """
    return_type = signature.return_type or SQLType.DOUBLE
    values = _to_value_list(result)
    coerced = [coerce_value(value, return_type) for value in values]
    row_aligned = input_length > 0 and len(coerced) == input_length
    return coerced, row_aligned


def convert_table_result(
    signature: FunctionSignature, result: Any
) -> dict[str, list[Any]]:
    """Convert a table-returning UDF's output to named columns.

    Accepted shapes (matching MonetDB/Python):

    * ``dict`` mapping column name -> array/list/scalar,
    * a single array/list (only valid for single-column return tables),
    * a scalar (single column, single row).

    Scalar entries are broadcast to the length of the longest column.
    """
    columns = signature.return_columns
    if isinstance(result, Mapping):
        raw = {str(key): _to_value_list(value) for key, value in result.items()}
    elif len(columns) == 1:
        raw = {columns[0].name: _to_value_list(result)}
    else:
        raise UDFError(
            signature.name,
            f"table UDF must return a dict with {len(columns)} columns, "
            f"got {type(result).__name__}",
        )

    # Align dict keys with declared return columns (case-insensitive).
    lowered = {key.lower(): values for key, values in raw.items()}
    missing = [col.name for col in columns if col.name.lower() not in lowered]
    if missing:
        raise UDFError(
            signature.name,
            f"table UDF result is missing declared column(s) {missing}; "
            f"returned keys: {sorted(raw)}",
        )

    ordered = {col.name: lowered[col.name.lower()] for col in columns}
    length = max((len(values) for values in ordered.values()), default=0)
    out: dict[str, list[Any]] = {}
    for col in columns:
        values = ordered[col.name]
        if len(values) == 1 and length > 1:
            values = values * length
        if len(values) != length:
            raise UDFError(
                signature.name,
                f"column {col.name!r} has {len(values)} values, expected {length}",
            )
        out[col.name] = [coerce_value(value, col.sql_type) for value in values]
    return out


class UDFRuntime:
    """Caches compiled UDFs and invokes them operator-at-a-time."""

    def __init__(self, database: "Database") -> None:
        self._database = database
        self._compiled: dict[str, tuple[str, Callable[..., Any]]] = {}
        #: number of times each UDF was invoked (one invocation per operator
        #: call — the quantity the tuple-at-a-time comparison in §2.4 varies).
        self.invocation_counts: dict[str, int] = {}

    def loopback(self) -> LoopbackConnection:
        return LoopbackConnection(self._database)

    def _get_callable(self, signature: FunctionSignature) -> Callable[..., Any]:
        key = signature.name.lower()
        cached = self._compiled.get(key)
        if cached is not None and cached[0] == signature.body:
            return cached[1]
        function = compile_udf(signature)
        self._compiled[key] = (signature.body, function)
        return function

    def invalidate(self, name: str) -> None:
        self._compiled.pop(name.lower(), None)

    def invoke(self, signature: FunctionSignature, args: Sequence[Any]) -> Any:
        """Call the UDF once with the given (column/scalar) arguments."""
        function = self._get_callable(signature)
        self.invocation_counts[signature.name.lower()] = (
            self.invocation_counts.get(signature.name.lower(), 0) + 1
        )
        conn = self.loopback()
        try:
            return function(*args, _conn=conn)
        except Exception as exc:  # noqa: BLE001 - UDF code is arbitrary user code
            raise UDFError(signature.name, f"raised {type(exc).__name__}: {exc}", exc) from exc
