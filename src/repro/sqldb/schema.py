"""Schema objects: column definitions, table definitions, function signatures."""

from __future__ import annotations

from dataclasses import dataclass, field

from .types import ColumnType, SQLType


@dataclass(frozen=True)
class ColumnDef:
    """Definition of a single table column."""

    name: str
    col_type: ColumnType

    @property
    def sql_type(self) -> SQLType:
        return self.col_type.sql_type

    def __str__(self) -> str:
        return f"{self.name} {self.col_type}"


@dataclass
class TableSchema:
    """Schema of a table: ordered columns, addressable by name."""

    name: str
    columns: list[ColumnDef] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for col in self.columns:
            lowered = col.name.lower()
            if lowered in seen:
                raise ValueError(f"duplicate column {col.name!r} in table {self.name!r}")
            seen.add(lowered)

    @property
    def column_names(self) -> list[str]:
        return [col.name for col in self.columns]

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for index, col in enumerate(self.columns):
            if col.name.lower() == lowered:
                return index
        raise KeyError(name)

    def column(self, name: str) -> ColumnDef:
        return self.columns[self.column_index(name)]

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(col.name.lower() == lowered for col in self.columns)

    def __len__(self) -> int:
        return len(self.columns)


@dataclass(frozen=True)
class FunctionParameter:
    """A declared parameter of a SQL function."""

    name: str
    sql_type: SQLType
    number: int = 0


@dataclass
class FunctionSignature:
    """Signature of a user-defined function as stored in the catalog.

    MonetDB stores the *body only* in ``sys.functions.func``; the parameters
    live in ``sys.args``.  devUDF reconstructs a runnable Python file from the
    two (Listing 1 -> Listing 2 in the paper), which is why the signature is a
    first-class object here.
    """

    name: str
    parameters: list[FunctionParameter] = field(default_factory=list)
    returns_table: bool = False
    return_columns: list[ColumnDef] = field(default_factory=list)
    return_type: SQLType | None = None
    language: str = "PYTHON"
    body: str = ""

    @property
    def parameter_names(self) -> list[str]:
        return [param.name for param in self.parameters]

    def describe_returns(self) -> str:
        """Render the RETURNS clause of this function as SQL text."""
        if self.returns_table:
            cols = ", ".join(f"{c.name} {c.sql_type}" for c in self.return_columns)
            return f"TABLE({cols})"
        return str(self.return_type) if self.return_type is not None else "DOUBLE"

    def to_create_sql(self, *, or_replace: bool = False) -> str:
        """Render the full ``CREATE FUNCTION`` statement for this signature."""
        replace = "OR REPLACE " if or_replace else ""
        params = ", ".join(f"{p.name} {p.sql_type}" for p in self.parameters)
        body = self.body
        if not body.endswith("\n"):
            body += "\n"
        return (
            f"CREATE {replace}FUNCTION {self.name}({params})\n"
            f"RETURNS {self.describe_returns()} LANGUAGE {self.language} {{\n"
            f"{body}}};"
        )
