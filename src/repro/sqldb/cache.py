"""Plan and result caching for repeated queries.

The server-side fast path for hot statements has two tiers, both owned by
:class:`~repro.sqldb.database.Database` and consulted under its lock:

* a :class:`PlanCache` — an LRU of *parsed statements* keyed by normalized
  SQL text, so a repeated statement skips lexing and parsing.  Entries hold
  the immutable AST, not a prepared physical plan: planning re-binds table
  sources on every execution, so a cached entry can never read a dropped or
  altered table even if invalidation were to miss it.
* a :class:`ResultCache` — a byte-bounded LRU of materialised
  :class:`~repro.sqldb.result.QueryResult` objects for identical read-only
  SELECTs, invalidated whenever DML/DDL touches any table the SELECT read.

Both caches are plain data structures; the invalidation triggers live in the
executor (post-mutation) and the database facade (UDF registration,
recovery).  This module also provides the AST utilities PREPARE/EXECUTE
needs: profiling a statement (tables read, functions called, parameter
count) and binding ``?`` placeholders to literal values.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Any, Iterator

from ..errors import ExecutionError
from . import ast_nodes as ast
from .aggregates import is_aggregate
from .functions import is_builtin_scalar
from .result import QueryResult


def normalize_sql(sql: str) -> str:
    """Whitespace-insensitive cache key for a statement's text."""
    return " ".join(sql.replace(";", " ").split())


# --------------------------------------------------------------------------- #
# AST walking
# --------------------------------------------------------------------------- #
def iter_nodes(root: Any) -> Iterator[Any]:
    """Yield every dataclass node reachable from ``root`` (statements,
    expressions, table refs, select/order items)."""
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, (list, tuple)):
            stack.extend(node)
        elif isinstance(node, dict):
            stack.extend(node.values())
        elif dataclasses.is_dataclass(node) and not isinstance(node, type):
            yield node
            for field in dataclasses.fields(node):
                stack.append(getattr(node, field.name))


@dataclasses.dataclass(frozen=True)
class StatementProfile:
    """What a statement touches — computed once per parse, reused per run."""

    tables: frozenset[str]
    functions: frozenset[str]
    parameter_count: int
    has_table_function: bool

    def deterministic(self) -> bool:
        """True when every called function is a built-in (scalar or
        aggregate) — a UDF may be non-deterministic or stateful, so results
        involving one are never cached."""
        if self.has_table_function:
            return False
        return all(is_builtin_scalar(name) or is_aggregate(name)
                   for name in self.functions)


def profile_statement(statement: ast.Statement) -> StatementProfile:
    tables: set[str] = set()
    functions: set[str] = set()
    parameters = 0
    has_table_function = False
    for node in iter_nodes(statement):
        if isinstance(node, ast.NamedTable):
            tables.add(node.name.lower())
        elif isinstance(node, (ast.InsertValues, ast.InsertSelect,
                               ast.Delete, ast.Update, ast.CopyInto)):
            tables.add(node.table.lower())
        elif isinstance(node, (ast.CreateTable, ast.DropTable)):
            tables.add(node.name.lower())
        elif isinstance(node, ast.FunctionCall):
            functions.add(node.name.lower())
        elif isinstance(node, ast.TableFunctionCall):
            functions.add(node.name.lower())
            has_table_function = True
        elif isinstance(node, ast.Parameter):
            parameters = max(parameters, node.index + 1)
    return StatementProfile(frozenset(tables), frozenset(functions),
                            parameters, has_table_function)


_FIELD_NAMES: dict[type, tuple[str, ...]] = {}


def _field_names(cls: type) -> tuple[str, ...]:
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(field.name for field in dataclasses.fields(cls))
        _FIELD_NAMES[cls] = names
    return names


def parameter_bearing_ids(root: Any) -> frozenset[int]:
    """Object ids of every node/container in ``root`` that has an
    :class:`ast.Parameter` somewhere beneath it.

    The ids stay valid for as long as ``root`` itself is alive (a live
    object's id cannot be reused), so a :class:`PreparedStatement` can
    compute this once at PREPARE time and hand it to every later bind.
    """
    bearing: set[int] = set()

    def visit(node: Any) -> bool:
        if isinstance(node, ast.Parameter):
            return True
        has_parameter = False
        if isinstance(node, (list, tuple)):
            for item in node:
                if visit(item):
                    has_parameter = True
        elif isinstance(node, dict):
            for item in node.values():
                if visit(item):
                    has_parameter = True
        elif dataclasses.is_dataclass(node) and not isinstance(node, type):
            for name in _field_names(type(node)):
                if visit(getattr(node, name)):
                    has_parameter = True
        if has_parameter:
            bearing.add(id(node))
        return has_parameter

    visit(root)
    return frozenset(bearing)


def bind_parameters(statement: ast.Statement, values: list[Any],
                    bearing: frozenset[int] | None = None) -> ast.Statement:
    """Return ``statement`` with every :class:`ast.Parameter` replaced by a
    :class:`ast.Literal` of the corresponding value.

    Binding is copy-on-write: only nodes on a path to a parameter are
    rebuilt; parameter-free subtrees are *shared* with the template.  This
    is the same sharing assumption the plan cache already makes (execution
    never mutates the AST), and it keeps EXECUTE cheap — a deep copy of the
    whole template would cost as much as re-parsing it.

    ``bearing`` (from :func:`parameter_bearing_ids` over this same
    ``statement``) lets the walk skip parameter-free subtrees without even
    descending into them; without it the walk visits every node once.
    """

    def bind_one(parameter: ast.Parameter) -> ast.Literal:
        if parameter.index >= len(values):
            raise ExecutionError(
                f"statement expects parameter ${parameter.index + 1} but "
                f"only {len(values)} argument(s) were bound")
        return ast.Literal(values[parameter.index])

    def substitute(node: Any) -> tuple[Any, bool]:
        """Returns ``(replacement, changed)``; unchanged nodes are shared."""
        if isinstance(node, ast.Parameter):
            return bind_one(node), True
        if bearing is not None and id(node) not in bearing:
            return node, False
        if isinstance(node, list):
            rebuilt = [substitute(item) for item in node]
            if any(changed for _, changed in rebuilt):
                return [item for item, _ in rebuilt], True
            return node, False
        if isinstance(node, tuple):
            rebuilt = [substitute(item) for item in node]
            if any(changed for _, changed in rebuilt):
                return tuple(item for item, _ in rebuilt), True
            return node, False
        if isinstance(node, dict):
            rebuilt = {key: substitute(item) for key, item in node.items()}
            if any(changed for _, changed in rebuilt.values()):
                return {key: item for key, (item, _) in rebuilt.items()}, True
            return node, False
        if dataclasses.is_dataclass(node) and not isinstance(node, type):
            cls = type(node)
            names = _field_names(cls)
            changed_any = False
            kwargs = {}
            for name in names:
                child, changed = substitute(getattr(node, name))
                kwargs[name] = child
                changed_any = changed_any or changed
            if changed_any:
                return cls(**kwargs), True
            return node, False
        return node, False

    bound, _ = substitute(statement)
    return bound


# --------------------------------------------------------------------------- #
# prepared statements
# --------------------------------------------------------------------------- #
@dataclasses.dataclass
class PreparedStatement:
    """A named, parameterised statement template (``PREPARE name AS ...``)."""

    name: str
    sql: str
    key: str
    statement: ast.Statement
    profile: StatementProfile
    _bearing: frozenset[int] | None = dataclasses.field(
        default=None, repr=False, compare=False)

    @property
    def parameter_count(self) -> int:
        return self.profile.parameter_count

    def bearing_ids(self) -> frozenset[int]:
        """Parameter-bearing node ids of the template, computed once."""
        if self._bearing is None:
            self._bearing = parameter_bearing_ids(self.statement)
        return self._bearing

    def result_key(self, values: list[Any]) -> str:
        """Result-cache key for one execution: template text + bound args."""
        return f"{self.key}\x00{values!r}"


# --------------------------------------------------------------------------- #
# caches
# --------------------------------------------------------------------------- #
@dataclasses.dataclass
class CachedPlan:
    """A plan-cache entry: the parsed AST plus its touch profile."""

    statement: ast.Statement
    profile: StatementProfile


class PlanCache:
    """LRU cache of parsed SELECT statements keyed by normalized SQL."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[str, CachedPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> CachedPlan | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, entry: CachedPlan) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate_table(self, table: str) -> int:
        """Drop every entry that reads ``table``; returns the count dropped."""
        lowered = table.lower()
        stale = [key for key, entry in self._entries.items()
                 if lowered in entry.profile.tables]
        for key in stale:
            del self._entries[key]
        self.evictions += len(stale)
        return len(stale)

    def clear(self) -> int:
        count = len(self._entries)
        self._entries.clear()
        self.evictions += count
        return count


@dataclasses.dataclass
class CachedResult:
    result: QueryResult
    tables: frozenset[str]
    nbytes: int


def estimate_result_bytes(result: QueryResult) -> int:
    """Rough memory footprint of a materialised result (for cache budgeting).

    Intentionally avoids materialising lazy columns: fixed-width values are
    costed per row, strings/blobs get a flat per-row allowance.
    """
    rows = result.row_count
    total = 128
    for column in result.columns:
        total += 64 + rows * 24
        if column.sql_type.name in ("STRING", "BLOB"):
            total += rows * 40
    return total


class ResultCache:
    """Byte-bounded LRU of materialised results for read-only SELECTs."""

    def __init__(self, max_bytes: int) -> None:
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[str, CachedResult]" = OrderedDict()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> QueryResult | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.result

    def put(self, key: str, result: QueryResult,
            tables: frozenset[str]) -> None:
        nbytes = estimate_result_bytes(result)
        if nbytes > max(self.max_bytes // 4, 1):
            return  # one oversized result must not wipe the whole cache
        previous = self._entries.pop(key, None)
        if previous is not None:
            self.used_bytes -= previous.nbytes
        self._entries[key] = CachedResult(result, tables, nbytes)
        self.used_bytes += nbytes
        while self.used_bytes > self.max_bytes and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self.used_bytes -= evicted.nbytes
            self.evictions += 1

    def invalidate_table(self, table: str) -> int:
        lowered = table.lower()
        stale = [key for key, entry in self._entries.items()
                 if lowered in entry.tables]
        for key in stale:
            self.used_bytes -= self._entries.pop(key).nbytes
        self.invalidations += len(stale)
        return len(stale)

    def clear(self) -> int:
        count = len(self._entries)
        self._entries.clear()
        self.used_bytes = 0
        self.invalidations += count
        return count
