"""Query results returned by the engine and shipped over the client protocol."""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

import numpy as np

from .storage import arrays_to_values, column_to_numpy, values_to_arrays
from .types import SQLType, infer_sql_type
from .vector import Vector


class ResultColumn:
    """One column of a query result.

    The column can be backed by a plain Python value list, by a numpy array
    plus optional null mask (the shape produced by the vectorised executor
    and by the columnar wire decoder), by a :class:`Vector` (typed values +
    validity mask + optional string dictionary — the engine's unified vector
    representation), or by a deferred loader that yields any of those on
    first touch.  Consumers observe plain Python values: ``values``
    materialises lazily, so a client that only ever re-exports the buffers
    (or hands them to numpy code) never pays for Python object creation —
    the lazy-decode half of the columnar protocol.
    """

    __slots__ = ("name", "sql_type", "_values", "_array", "_mask", "_vector",
                 "_loader", "_length")

    def __init__(self, name: str, sql_type: SQLType,
                 values: Sequence[Any] | np.ndarray | Vector | None = None) -> None:
        self.name = name
        self.sql_type = sql_type
        self._values: list[Any] | None = None
        self._array: np.ndarray | None = None
        self._mask: np.ndarray | None = None
        self._vector: Vector | None = None
        self._loader: Callable[[], tuple[Any, np.ndarray | None]] | None = None
        self._length: int | None = None
        if isinstance(values, Vector):
            self._vector = values
        elif isinstance(values, np.ndarray):
            if values.dtype == object:
                # object arrays may hide numpy scalars or Nones; normalise now
                self._values = values.tolist()
            else:
                self._array = values
        elif values is None:
            self._values = []
        elif isinstance(values, list):
            self._values = values
        else:
            self._values = list(values)

    # ------------------------------------------------------------------ #
    # buffer-backed constructors (columnar wire path)
    # ------------------------------------------------------------------ #
    @classmethod
    def from_arrays(cls, name: str, sql_type: SQLType, data: np.ndarray,
                    mask: np.ndarray | None = None) -> "ResultColumn":
        """Build a column over a ``(data, null mask)`` buffer pair, zero-copy."""
        column = cls(name, sql_type, None)
        column._values = None
        column._array = data
        column._mask = mask if mask is not None and mask.any() else None
        return column

    @classmethod
    def from_vector(cls, name: str, sql_type: SQLType,
                    vector: Vector) -> "ResultColumn":
        """Build a column over a :class:`Vector`, zero-copy."""
        return cls(name, sql_type, vector)

    @classmethod
    def lazy(cls, name: str, sql_type: SQLType, length: int,
             loader: Callable[[], tuple[Any, np.ndarray | None]]) -> "ResultColumn":
        """Build a column whose ``(data, mask)`` pair is produced on first use.

        ``loader`` returns ``(ndarray, mask-or-None)``, ``(Vector, None)`` or
        ``(list-with-Nones, None)``; it runs at most once.
        """
        column = cls(name, sql_type, None)
        column._values = None
        column._loader = loader
        column._length = length
        return column

    def _load(self) -> None:
        if self._loader is not None:
            data, mask = self._loader()
            self._loader = None
            if isinstance(data, Vector):
                self._vector = data
            elif isinstance(data, np.ndarray) and data.dtype != object:
                self._array = data
                self._mask = mask if mask is not None and mask.any() else None
            else:
                self._values = arrays_to_values(data, mask)

    @property
    def values(self) -> list[Any]:
        """Plain Python values (materialised lazily from buffers)."""
        if self._values is None:
            self._load()
            if self._values is None:
                if self._vector is not None:
                    self._values = self._vector.to_list()
                else:
                    self._values = arrays_to_values(self._array, self._mask)
        return self._values

    @property
    def is_materialised(self) -> bool:
        """True once Python values exist (used by lazy-decode tests)."""
        return self._values is not None

    def null_mask(self) -> np.ndarray | None:
        """The null mask of the backing buffer, if the column is buffer-backed."""
        if self._vector is not None:
            return self._vector.mask
        return self._mask

    def vector(self) -> Vector | None:
        """The backing :class:`Vector`, if any (loads a lazy column first)."""
        self._load()
        return self._vector

    def dict_vector(self) -> Vector | None:
        """The backing vector if it is dictionary-encoded (wire fast path)."""
        vector = self.vector()
        return vector if vector is not None and vector.is_dict else None

    def batch_values(self) -> Any:
        """The best available backing for re-use as executor batch data."""
        self._load()
        if self._vector is not None:
            return self._vector
        if self._values is None and self._array is not None:
            if self._mask is None:
                return self._array
            return Vector(self._array, self._mask, None, self.sql_type)
        return list(self.values)

    def buffer_arrays(self) -> tuple[np.ndarray, np.ndarray | None]:
        """Export as a ``(data, null mask)`` pair for the columnar wire format.

        Zero-copy when the column is already array-backed; may raise
        ``OverflowError``/``TypeError`` for values a typed buffer cannot hold
        (the wire encoder falls back to the object codec in that case).
        """
        self._load()
        if self._values is None and self._vector is not None:
            return self._vector.buffer_arrays()
        if self._values is None and self._array is not None:
            return self._array, self._mask
        return values_to_arrays(self._values, self.sql_type)

    def to_numpy(self) -> np.ndarray:
        if self._values is None:
            self._load()
        if self._values is None and self._vector is not None:
            return self._vector.to_numpy()
        if self._values is None and self._array is not None:
            if self._mask is None:
                return self._array
            # match column_to_numpy: NULL-bearing columns become object arrays
            return column_to_numpy(arrays_to_values(self._array, self._mask),
                                   self.sql_type)
        return column_to_numpy(self.values, self.sql_type)

    def __len__(self) -> int:
        if self._values is not None:
            return len(self._values)
        if self._vector is not None:
            return len(self._vector)
        if self._array is not None:
            return len(self._array)
        if self._length is not None:
            return self._length
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultColumn):
            return NotImplemented
        return (self.name == other.name and self.sql_type == other.sql_type
                and self.values == other.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backing = "values" if self._values is not None else (
            "vector" if self._vector is not None else (
                "array" if self._array is not None else "lazy"))
        return (f"ResultColumn({self.name!r}, {self.sql_type}, "
                f"len={len(self)}, backing={backing})")


class QueryResult:
    """A columnar query result.

    Provides both columnar access (``column(name)``, ``to_dict()``) — the
    natural shape for the devUDF data-extraction path — and row access
    (``rows()``, ``fetchall()``) for the client-protocol/DB-API style use.
    """

    def __init__(self, columns: Sequence[ResultColumn] | None = None,
                 *, affected_rows: int = 0, statement_type: str = "SELECT") -> None:
        self.columns: list[ResultColumn] = list(columns or [])
        self.affected_rows = affected_rows
        self.statement_type = statement_type

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, *, affected_rows: int = 0, statement_type: str = "DDL") -> "QueryResult":
        return cls([], affected_rows=affected_rows, statement_type=statement_type)

    @classmethod
    def from_dict(cls, data: dict[str, Sequence[Any]],
                  types: dict[str, SQLType] | None = None) -> "QueryResult":
        columns = []
        for name, values in data.items():
            values = list(values)
            if types and name in types:
                sql_type = types[name]
            else:
                sample = next((v for v in values if v is not None), None)
                sql_type = infer_sql_type(sample) if sample is not None else SQLType.STRING
            columns.append(ResultColumn(name, sql_type, values))
        return cls(columns)

    # ------------------------------------------------------------------ #
    # shape
    # ------------------------------------------------------------------ #
    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    @property
    def row_count(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def column_count(self) -> int:
        return len(self.columns)

    def __len__(self) -> int:
        return self.row_count

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def column(self, name: str) -> ResultColumn:
        lowered = name.lower()
        for column in self.columns:
            if column.name.lower() == lowered:
                return column
        raise KeyError(name)

    def __getitem__(self, name: str) -> list[Any]:
        return self.column(name).values

    def rows(self) -> Iterator[tuple[Any, ...]]:
        for index in range(self.row_count):
            yield tuple(column.values[index] for column in self.columns)

    def fetchall(self) -> list[tuple[Any, ...]]:
        return list(self.rows())

    def fetchone(self) -> tuple[Any, ...] | None:
        return next(self.rows(), None)

    def scalar(self) -> Any:
        """The single value of a 1x1 result (convenience for tests)."""
        if self.row_count != 1 or self.column_count != 1:
            raise ValueError(
                f"scalar() requires a 1x1 result, got {self.row_count}x{self.column_count}"
            )
        return self.columns[0].values[0]

    def to_dict(self) -> dict[str, list[Any]]:
        return {column.name: list(column.values) for column in self.columns}

    def to_numpy_dict(self) -> dict[str, np.ndarray]:
        return {column.name: column.to_numpy() for column in self.columns}

    # ------------------------------------------------------------------ #
    # rendering (used by the CLI and the demo walkthrough)
    # ------------------------------------------------------------------ #
    def format_table(self, *, max_rows: int | None = 50, max_width: int = 40) -> str:
        """Render as an ASCII table, in the spirit of the mclient output in Listing 1."""
        names = self.column_names
        if not names:
            return f"({self.statement_type}: {self.affected_rows} rows affected)"
        rows = self.fetchall()
        truncated = False
        if max_rows is not None and len(rows) > max_rows:
            rows = rows[:max_rows]
            truncated = True

        def fmt(value: Any) -> str:
            text = "NULL" if value is None else str(value)
            if len(text) > max_width:
                text = text[: max_width - 3] + "..."
            return text

        table = [names] + [[fmt(v) for v in row] for row in rows]
        widths = [max(len(row[i]) for row in table) for i in range(len(names))]
        sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        lines = [sep]
        lines.append("| " + " | ".join(n.ljust(w) for n, w in zip(names, widths)) + " |")
        lines.append(sep.replace("-", "="))
        for row in table[1:]:
            lines.append("| " + " | ".join(v.ljust(w) for v, w in zip(row, widths)) + " |")
        lines.append(sep)
        if truncated:
            lines.append(f"... ({self.row_count} rows total)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"QueryResult(columns={self.column_names}, rows={self.row_count}, "
                f"affected={self.affected_rows})")
