"""Query results returned by the engine and shipped over the client protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

import numpy as np

from .storage import column_to_numpy
from .types import SQLType, infer_sql_type


@dataclass
class ResultColumn:
    """One column of a query result.

    Results always hold plain Python values: arrays flowing out of the
    vectorised executor are converted at this boundary so consumers (the wire
    protocol, DB-API rows, rendering) never see numpy scalars.
    """

    name: str
    sql_type: SQLType
    values: list[Any] = field(default_factory=list)

    def __post_init__(self) -> None:
        if isinstance(self.values, np.ndarray):
            self.values = self.values.tolist()

    def to_numpy(self) -> np.ndarray:
        return column_to_numpy(self.values, self.sql_type)

    def __len__(self) -> int:
        return len(self.values)


class QueryResult:
    """A columnar query result.

    Provides both columnar access (``column(name)``, ``to_dict()``) — the
    natural shape for the devUDF data-extraction path — and row access
    (``rows()``, ``fetchall()``) for the client-protocol/DB-API style use.
    """

    def __init__(self, columns: Sequence[ResultColumn] | None = None,
                 *, affected_rows: int = 0, statement_type: str = "SELECT") -> None:
        self.columns: list[ResultColumn] = list(columns or [])
        self.affected_rows = affected_rows
        self.statement_type = statement_type

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, *, affected_rows: int = 0, statement_type: str = "DDL") -> "QueryResult":
        return cls([], affected_rows=affected_rows, statement_type=statement_type)

    @classmethod
    def from_dict(cls, data: dict[str, Sequence[Any]],
                  types: dict[str, SQLType] | None = None) -> "QueryResult":
        columns = []
        for name, values in data.items():
            values = list(values)
            if types and name in types:
                sql_type = types[name]
            else:
                sample = next((v for v in values if v is not None), None)
                sql_type = infer_sql_type(sample) if sample is not None else SQLType.STRING
            columns.append(ResultColumn(name, sql_type, values))
        return cls(columns)

    # ------------------------------------------------------------------ #
    # shape
    # ------------------------------------------------------------------ #
    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    @property
    def row_count(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def column_count(self) -> int:
        return len(self.columns)

    def __len__(self) -> int:
        return self.row_count

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def column(self, name: str) -> ResultColumn:
        lowered = name.lower()
        for column in self.columns:
            if column.name.lower() == lowered:
                return column
        raise KeyError(name)

    def __getitem__(self, name: str) -> list[Any]:
        return self.column(name).values

    def rows(self) -> Iterator[tuple[Any, ...]]:
        for index in range(self.row_count):
            yield tuple(column.values[index] for column in self.columns)

    def fetchall(self) -> list[tuple[Any, ...]]:
        return list(self.rows())

    def fetchone(self) -> tuple[Any, ...] | None:
        return next(self.rows(), None)

    def scalar(self) -> Any:
        """The single value of a 1x1 result (convenience for tests)."""
        if self.row_count != 1 or self.column_count != 1:
            raise ValueError(
                f"scalar() requires a 1x1 result, got {self.row_count}x{self.column_count}"
            )
        return self.columns[0].values[0]

    def to_dict(self) -> dict[str, list[Any]]:
        return {column.name: list(column.values) for column in self.columns}

    def to_numpy_dict(self) -> dict[str, np.ndarray]:
        return {column.name: column.to_numpy() for column in self.columns}

    # ------------------------------------------------------------------ #
    # rendering (used by the CLI and the demo walkthrough)
    # ------------------------------------------------------------------ #
    def format_table(self, *, max_rows: int | None = 50, max_width: int = 40) -> str:
        """Render as an ASCII table, in the spirit of the mclient output in Listing 1."""
        names = self.column_names
        if not names:
            return f"({self.statement_type}: {self.affected_rows} rows affected)"
        rows = self.fetchall()
        truncated = False
        if max_rows is not None and len(rows) > max_rows:
            rows = rows[:max_rows]
            truncated = True

        def fmt(value: Any) -> str:
            text = "NULL" if value is None else str(value)
            if len(text) > max_width:
                text = text[: max_width - 3] + "..."
            return text

        table = [names] + [[fmt(v) for v in row] for row in rows]
        widths = [max(len(row[i]) for row in table) for i in range(len(names))]
        sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        lines = [sep]
        lines.append("| " + " | ".join(n.ljust(w) for n, w in zip(names, widths)) + " |")
        lines.append(sep.replace("-", "="))
        for row in table[1:]:
            lines.append("| " + " | ".join(v.ljust(w) for v, w in zip(row, widths)) + " |")
        lines.append(sep)
        if truncated:
            lines.append(f"... ({self.row_count} rows total)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"QueryResult(columns={self.column_names}, rows={self.row_count}, "
                f"affected={self.affected_rows})")
