"""Built-in scalar SQL functions.

These mirror the MonetDB built-ins that the demo queries and the workload
corpus use.  Each built-in is a plain Python function operating on a single
row's values; the evaluator maps it over the batch (NULL in → NULL out except
for ``COALESCE``/``IFNULL`` which are variadic NULL handlers).
"""

from __future__ import annotations

import math
from typing import Any, Callable

from ..errors import ExecutionError

ScalarFunction = Callable[..., Any]


def _sql_round(value: float, digits: int = 0) -> float:
    return round(float(value), int(digits))


def _sql_substring(value: str, start: int, length: int | None = None) -> str:
    # SQL SUBSTRING is 1-based.
    begin = max(int(start) - 1, 0)
    if length is None:
        return str(value)[begin:]
    return str(value)[begin:begin + int(length)]


def _sql_concat(*parts: Any) -> str:
    return "".join("" if part is None else str(part) for part in parts)


def _sql_sign(value: float) -> int:
    if value > 0:
        return 1
    if value < 0:
        return -1
    return 0


def _sql_log(value: float, base: float | None = None) -> float:
    if base is None:
        return math.log(value)
    return math.log(value, base)


#: NULL-propagating scalar built-ins: name -> callable.
SCALAR_FUNCTIONS: dict[str, ScalarFunction] = {
    "ABS": abs,
    "ROUND": _sql_round,
    "FLOOR": math.floor,
    "CEIL": math.ceil,
    "CEILING": math.ceil,
    "SQRT": math.sqrt,
    "EXP": math.exp,
    "LN": math.log,
    "LOG": _sql_log,
    "LOG10": math.log10,
    "POWER": pow,
    "POW": pow,
    "MOD": lambda a, b: a % b,
    "SIGN": _sql_sign,
    "GREATEST": max,
    "LEAST": min,
    "LENGTH": lambda s: len(str(s)),
    "CHAR_LENGTH": lambda s: len(str(s)),
    "LOWER": lambda s: str(s).lower(),
    "UPPER": lambda s: str(s).upper(),
    "TRIM": lambda s: str(s).strip(),
    "LTRIM": lambda s: str(s).lstrip(),
    "RTRIM": lambda s: str(s).rstrip(),
    "SUBSTRING": _sql_substring,
    "SUBSTR": _sql_substring,
    "REPLACE": lambda s, old, new: str(s).replace(str(old), str(new)),
    "REVERSE": lambda s: str(s)[::-1],
    "STARTSWITH": lambda s, prefix: str(s).startswith(str(prefix)),
    "ENDSWITH": lambda s, suffix: str(s).endswith(str(suffix)),
    "CONTAINS": lambda s, needle: str(needle) in str(s),
}

#: Built-ins that receive all argument values even when some are NULL.
NULL_TOLERANT_FUNCTIONS: dict[str, ScalarFunction] = {
    # CONCAT skips NULL operands (it is the one string builtin the demo uses
    # to assemble labels from possibly-missing parts)
    "CONCAT": _sql_concat,
    "COALESCE": lambda *args: next((a for a in args if a is not None), None),
    "IFNULL": lambda value, default: default if value is None else value,
    "NULLIF": lambda a, b: None if a == b else a,
    "ISNULL": lambda value: value is None,
}


def is_builtin_scalar(name: str) -> bool:
    upper = name.upper()
    return upper in SCALAR_FUNCTIONS or upper in NULL_TOLERANT_FUNCTIONS


def call_builtin_scalar(name: str, args: list[Any]) -> Any:
    """Invoke a built-in for one row of already-evaluated argument values."""
    upper = name.upper()
    if upper in NULL_TOLERANT_FUNCTIONS:
        return NULL_TOLERANT_FUNCTIONS[upper](*args)
    if upper in SCALAR_FUNCTIONS:
        if any(arg is None for arg in args):
            return None
        try:
            return SCALAR_FUNCTIONS[upper](*args)
        except (TypeError, ValueError, ZeroDivisionError) as exc:
            raise ExecutionError(f"error in {upper}({args!r}): {exc}") from exc
    raise ExecutionError(f"unknown function {name!r}")
