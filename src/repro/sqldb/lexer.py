"""SQL tokenizer.

A hand-written scanner producing the token stream consumed by the recursive
descent parser.  The only MonetDB-specific piece is the handling of
``LANGUAGE PYTHON { ... }`` function bodies: the text between the braces is
*not* SQL and is captured verbatim (it is Python source, see paper Listing 1),
so the lexer exposes :func:`scan_braced_block` for the parser to call when it
reaches the opening ``{`` of a CREATE FUNCTION body.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ParseError


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENTIFIER = "IDENTIFIER"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCTUATION = "PUNCTUATION"
    EOF = "EOF"


KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC", "DESC",
    "LIMIT", "OFFSET", "DISTINCT", "AS", "AND", "OR", "NOT", "IN", "IS", "NULL",
    "BETWEEN", "LIKE", "CASE", "WHEN", "THEN", "ELSE", "END", "CAST", "EXISTS",
    "CREATE", "OR", "REPLACE", "TABLE", "DROP", "IF", "INSERT", "INTO", "VALUES",
    "DELETE", "UPDATE", "SET", "FUNCTION", "RETURNS", "LANGUAGE", "JOIN", "INNER",
    "LEFT", "RIGHT", "OUTER", "CROSS", "ON", "TRUE", "FALSE", "COPY", "DELIMITERS",
    "HEADER", "UNION", "ALL", "NOT", "EXPLAIN", "ANALYZE", "CHECKPOINT",
    "VERIFY", "BACKUP", "TO", "SHOW", "STATS",
    "PREPARE", "EXECUTE", "DEALLOCATE",
}

_MULTI_CHAR_OPERATORS = ("<>", "<=", ">=", "!=", "||")
_SINGLE_CHAR_OPERATORS = set("+-*/%<>=")
# ``?`` is the positional parameter placeholder of PREPARE/EXECUTE.
_PUNCTUATION = set("(),.;{}?")


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value.upper() in {
            name.upper() for name in names
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}@{self.position})"


class Lexer:
    """Tokenises SQL text on demand."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def tokens(self) -> list[Token]:
        """Tokenise the whole input (stopping at EOF)."""
        result: list[Token] = []
        while True:
            token = self.next_token()
            result.append(token)
            if token.type is TokenType.EOF:
                return result

    def next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        if self.pos >= len(self.text):
            return Token(TokenType.EOF, "", self.pos)
        start = self.pos
        char = self.text[self.pos]

        if char == "'" or char == '"':
            return self._scan_string(char)
        if char.isdigit() or (char == "." and self._peek_is_digit(1)):
            return self._scan_number()
        if char.isalpha() or char == "_":
            return self._scan_word()
        for operator in _MULTI_CHAR_OPERATORS:
            if self.text.startswith(operator, self.pos):
                self.pos += len(operator)
                return Token(TokenType.OPERATOR, operator, start)
        if char in _SINGLE_CHAR_OPERATORS:
            self.pos += 1
            return Token(TokenType.OPERATOR, char, start)
        if char in _PUNCTUATION:
            self.pos += 1
            return Token(TokenType.PUNCTUATION, char, start)
        raise ParseError(f"unexpected character {char!r}", position=start)

    def scan_braced_block(self, open_position: int) -> tuple[str, int]:
        """Capture the raw text of a ``{ ... }`` block starting at ``open_position``.

        Returns ``(body_text, position_after_closing_brace)``.  Braces inside
        Python string literals and nested braces (dict/set displays, f-strings)
        are handled by brace counting with string awareness, which matches how
        MonetDB's SQL scanner captures PyAPI bodies.
        """
        text = self.text
        if text[open_position] != "{":
            raise ParseError("expected '{' to start function body", position=open_position)
        depth = 0
        index = open_position
        in_string: str | None = None
        while index < len(text):
            char = text[index]
            if in_string is not None:
                if char == "\\":
                    index += 2
                    continue
                if char == in_string:
                    in_string = None
                index += 1
                continue
            if char in ("'", '"'):
                in_string = char
                index += 1
                continue
            if char == "#":
                # Python comment: skip to end of line so braces in comments
                # do not unbalance the counter.
                while index < len(text) and text[index] != "\n":
                    index += 1
                continue
            if char == "{":
                depth += 1
            elif char == "}":
                depth -= 1
                if depth == 0:
                    body = text[open_position + 1:index]
                    return body, index + 1
            index += 1
        raise ParseError("unterminated function body (missing '}')", position=open_position)

    # ------------------------------------------------------------------ #
    # scanners
    # ------------------------------------------------------------------ #
    def _peek_is_digit(self, offset: int) -> bool:
        index = self.pos + offset
        return index < len(self.text) and self.text[index].isdigit()

    def _skip_whitespace_and_comments(self) -> None:
        text = self.text
        while self.pos < len(text):
            char = text[self.pos]
            if char.isspace():
                self.pos += 1
            elif text.startswith("--", self.pos):
                while self.pos < len(text) and text[self.pos] != "\n":
                    self.pos += 1
            elif text.startswith("/*", self.pos):
                end = text.find("*/", self.pos + 2)
                if end == -1:
                    raise ParseError("unterminated block comment", position=self.pos)
                self.pos = end + 2
            else:
                return

    def _scan_string(self, quote: str) -> Token:
        start = self.pos
        self.pos += 1
        pieces: list[str] = []
        text = self.text
        while self.pos < len(text):
            char = text[self.pos]
            if char == quote:
                # doubled quote is an escaped quote in SQL
                if self.pos + 1 < len(text) and text[self.pos + 1] == quote:
                    pieces.append(quote)
                    self.pos += 2
                    continue
                self.pos += 1
                return Token(TokenType.STRING, "".join(pieces), start)
            pieces.append(char)
            self.pos += 1
        raise ParseError("unterminated string literal", position=start)

    def _scan_number(self) -> Token:
        start = self.pos
        text = self.text
        while self.pos < len(text) and (text[self.pos].isdigit() or text[self.pos] == "."):
            self.pos += 1
        if self.pos < len(text) and text[self.pos] in "eE":
            self.pos += 1
            if self.pos < len(text) and text[self.pos] in "+-":
                self.pos += 1
            while self.pos < len(text) and text[self.pos].isdigit():
                self.pos += 1
        return Token(TokenType.NUMBER, text[start:self.pos], start)

    def _scan_word(self) -> Token:
        start = self.pos
        text = self.text
        while self.pos < len(text) and (text[self.pos].isalnum() or text[self.pos] == "_"):
            self.pos += 1
        word = text[start:self.pos]
        if word.upper() in KEYWORDS:
            return Token(TokenType.KEYWORD, word, start)
        return Token(TokenType.IDENTIFIER, word, start)
