"""The embedded database facade.

A :class:`Database` owns the storage, the function catalog and the UDF
runtime, and executes SQL text end-to-end.  This is the stand-in for the
MonetDB server process devUDF connects to; :mod:`repro.netproto` wraps it in a
client/server protocol so the plugin-side code talks to it exactly like it
would talk to a remote server.
"""

from __future__ import annotations

import os
import re
import threading
from collections import deque
from time import perf_counter
from typing import TYPE_CHECKING, Any

from ..errors import ExecutionError
from ..obs import EventLog, MetricsRegistry
from . import ast_nodes as ast
from .cache import (
    CachedPlan,
    PlanCache,
    PreparedStatement,
    ResultCache,
    bind_parameters,
    normalize_sql,
    profile_statement,
)
from .catalog import FunctionCatalog
from .context import QueryContext
from .executor import Executor
from .parallel import (
    DEFAULT_MORSEL_ROWS,
    DEFAULT_PARALLEL_THRESHOLD,
    MorselScheduler,
)
from .parser import parse_script, parse_statement
from .result import QueryResult
from .schema import FunctionSignature
from .storage import Storage
from .udf import UDFRuntime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .persist import (
        BackupStats,
        CheckpointStats,
        PersistentStore,
        VerifyReport,
    )


#: Entries kept in :attr:`Database.query_log` (oldest dropped first).
QUERY_LOG_LIMIT = 10_000


class Database:
    """An embedded, MonetDB-flavoured SQL database.

    ``workers`` enables morsel-driven parallel SELECT execution: with
    ``workers > 1`` large scans, join probes and aggregations are split into
    ``morsel_rows``-sized row ranges executed on a shared thread pool (numpy
    kernels release the GIL).  The default ``workers=1`` runs every query as
    a single morsel — byte-identical to the pre-pipeline engine — and inputs
    below ``parallel_threshold`` rows never pay pool overhead even when
    parallelism is on.

    ``path`` makes the database durable: state lives in a single columnar
    file plus a write-ahead log (``<path>.wal``).  Opening recovers the last
    checkpoint and replays the log (discarding a torn tail from a crash);
    every SQL-level mutation is WAL-logged, ``CHECKPOINT`` (or
    :meth:`checkpoint`) rewrites the file and truncates the log, and
    :meth:`close` checkpoints automatically.  The default ``path=None``
    keeps the engine fully in-memory, exactly as before.  Mutations made by
    poking storage internals directly (tests, bulk loaders) bypass the WAL
    and become durable at the next checkpoint.
    """

    def __init__(self, name: str = "demo", *, workers: int = 1,
                 morsel_rows: int = DEFAULT_MORSEL_ROWS,
                 parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
                 path: str | os.PathLike[str] | None = None,
                 segment_rows: int | None = None,
                 wal_fsync_batch: int | None = None,
                 salvage: bool = False,
                 plan_cache: int = 128,
                 result_cache_bytes: int = 0,
                 observability: bool = True) -> None:
        self.name = name
        self.storage = Storage()
        #: Engine-wide metrics (counters + latency histograms), default-on.
        #: Metric names carry their full dotted prefix (``db.query_us``,
        #: ``persist.wal_fsync_us``) so :meth:`stats_snapshot` merges the
        #: registry snapshot directly.  ``observability=False`` turns every
        #: observation into an early return (used by the ``obs_overhead``
        #: benchmark to price the instrumentation itself).
        self.metrics = MetricsRegistry(enabled=observability)
        self._h_query = self.metrics.histogram("db.query_us")
        self._h_parse = self.metrics.histogram("db.parse_us")
        self._h_execute = self.metrics.histogram("db.execute_us")
        #: Optional JSON-lines structured event sink (see
        #: :meth:`configure_event_log`); ``None`` emits nothing.
        self.event_log: EventLog | None = None
        #: LRU of parsed SELECT statements keyed by normalized SQL text —
        #: hot statements skip lexing/parsing.  ``plan_cache=0`` disables.
        self.plan_cache: PlanCache | None = \
            PlanCache(plan_cache) if plan_cache > 0 else None
        #: Byte-bounded LRU of materialised read-only SELECT results.
        #: Off by default: the embedded engine is frequently benchmarked by
        #: re-running identical SQL, and tests mutate storage directly
        #: (bypassing invalidation).  The wire server turns it on.
        self.result_cache: ResultCache | None = \
            ResultCache(result_cache_bytes) if result_cache_bytes > 0 else None
        #: PREPARE name AS ... templates, shared by every connection.
        self._prepared: dict[str, PreparedStatement] = {}
        self.catalog = FunctionCatalog()
        self.udf_runtime = UDFRuntime(self)
        self.scheduler = MorselScheduler(
            workers, morsel_rows=morsel_rows,
            parallel_threshold=parallel_threshold)
        self.scheduler.bind_metrics(self.metrics)
        self._executor = Executor(self)
        self._lock = threading.RLock()
        #: Count of executed statements, used by the workflow simulators to
        #: report "server round trips".
        self.statements_executed = 0
        #: Recent SQL texts (bounded: a long-lived server must not leak one
        #: string per query executed over its lifetime).
        self.query_log: deque[str] = deque(maxlen=QUERY_LOG_LIMIT)
        #: Extra ``SHOW STATS`` sections: name -> zero-arg callable returning
        #: a flat ``{counter: int}`` dict.  The wire server registers its
        #: :class:`~repro.netproto.server.ServerStats` here so operators see
        #: network-side fault counters next to the storage-side ones.
        self.stats_sources: dict[str, Any] = {}
        #: Durable-store handle; ``None`` for the in-memory default.  Import
        #: lazily: the persist package pulls in the wire codecs, whose
        #: package imports this module (cycle at module-import time only).
        #: ``salvage=True`` opens a damaged file in quarantine mode instead
        #: of refusing: corrupt segments load as sealed NULL placeholder
        #: ranges and touching the affected table raises a structured
        #: :class:`~repro.errors.CorruptionError`.
        self.persistence: "PersistentStore | None" = None
        if path is not None:
            from .persist import (
                DEFAULT_FSYNC_BATCH,
                DEFAULT_SEGMENT_ROWS,
                PersistentStore,
            )

            self.persistence = PersistentStore(
                path, self,
                segment_rows=segment_rows or DEFAULT_SEGMENT_ROWS,
                fsync_batch=wal_fsync_batch or DEFAULT_FSYNC_BATCH,
                salvage=salvage, metrics=self.metrics)
            self.persistence.open()
            # recovery/salvage may have replayed mutations; start cold so a
            # cached plan or result can never outlive what was recovered
            self.invalidate_caches()

    @property
    def workers(self) -> int:
        return self.scheduler.workers

    @property
    def path(self) -> str | None:
        """The durable file path, or ``None`` for an in-memory database."""
        return str(self.persistence.path) if self.persistence else None

    # ------------------------------------------------------------------ #
    # SQL execution
    # ------------------------------------------------------------------ #
    def execute(self, sql: str, parameters: tuple | dict | None = None, *,
                timeout: float | None = None,
                context: QueryContext | None = None) -> QueryResult:
        """Parse and execute a single SQL statement.

        ``timeout`` (seconds) aborts the statement cooperatively at the next
        morsel boundary once the deadline passes, raising
        :class:`~repro.errors.QueryTimeoutError`; ``context`` passes an
        externally cancellable :class:`QueryContext` (a wire-level ``cancel``
        uses this).  Both may be given — the tighter deadline wins.
        """
        context = QueryContext.resolve(context, timeout)
        if parameters:
            sql = _apply_parameters(sql, parameters)
        trace = context.trace if context is not None else None
        query_started = perf_counter()
        try:
            with self._lock:
                self.statements_executed += 1
                self.query_log.append(sql)
                parse_started = perf_counter()
                statement, cacheable = self._parse_cached(sql)
                parse_ended = perf_counter()
                self._h_parse.observe(parse_ended - parse_started)
                if trace is not None:
                    trace.add("parse", parse_started, parse_ended)
                if cacheable is not None:
                    cached = self._result_cache_get(cacheable)
                    if cached is not None:
                        return cached
                run_started = perf_counter()
                result = self._executor.execute(statement, context=context)
                run_ended = perf_counter()
                self._h_execute.observe(run_ended - run_started)
                if trace is not None:
                    trace.add("execute", run_started, run_ended)
                if cacheable is not None:
                    self._result_cache_put(cacheable, result)
                return result
        finally:
            elapsed = perf_counter() - query_started
            self._h_query.observe(elapsed)
            if self.event_log is not None:
                self.event_log.emit(
                    "query", sql=sql, us=int(elapsed * 1e6),
                    trace_id=context.trace_id if context is not None else None)

    def execute_script(self, sql: str) -> list[QueryResult]:
        """Execute a semicolon-separated script; returns one result per statement."""
        with self._lock:
            statements = parse_script(sql)
            results = []
            for statement in statements:
                self.statements_executed += 1
                results.append(self._executor.execute(statement))
            return results

    def execute_select(self, select: ast.Select) -> QueryResult:
        """Execute an already-parsed SELECT (used for subqueries and loopback)."""
        return self._executor.execute_select(select)

    def execute_stream(self, sql: str, *, max_rows: int | None = None,
                       timeout: float | None = None,
                       context: QueryContext | None = None
                       ) -> "QueryResult | StreamedResult":
        """Execute one statement, streaming SELECT results morsel by morsel.

        Returns a :class:`StreamedResult` — an iterator of per-morsel
        :class:`QueryResult` pieces — when the statement is a streamable
        SELECT (projection pipeline: no aggregation/DISTINCT/ORDER BY, no
        UDFs or scalar subqueries).  The plan is prepared (sources bound,
        join build sides materialised) under the database lock; iterating
        the pieces then runs lock-free on scan snapshots, so the first piece
        is available before the query finishes.  Everything else returns a
        complete :class:`QueryResult`, exactly like :meth:`execute`.
        """
        context = QueryContext.resolve(context, timeout)
        trace = context.trace if context is not None else None
        query_started = perf_counter()
        streamed = False
        try:
            with self._lock:
                self.statements_executed += 1
                self.query_log.append(sql)
                parse_started = perf_counter()
                statement, cacheable = self._parse_cached(sql)
                parse_ended = perf_counter()
                self._h_parse.observe(parse_ended - parse_started)
                if trace is not None:
                    trace.add("parse", parse_started, parse_ended)
                if not isinstance(statement, ast.Select):
                    return self._executor.execute(statement, context=context)
                if cacheable is not None:
                    cached = self._result_cache_get(cacheable)
                    if cached is not None:
                        return cached
                run_started = perf_counter()
                plan = self._executor.plan_select(statement, context=context)
                if not plan.streamable:
                    result = plan.execute()
                    run_ended = perf_counter()
                    self._h_execute.observe(run_ended - run_started)
                    if trace is not None:
                        trace.add("execute", run_started, run_ended)
                    if cacheable is not None:
                        self._result_cache_put(cacheable, result)
                    return result
                plan.prepare()
                run_ended = perf_counter()
                # for a streamed SELECT only source binding + join builds run
                # under the lock; the morsel phase is timed by the consumer
                self._h_execute.observe(run_ended - run_started)
                if trace is not None:
                    trace.add("prepare", run_started, run_ended)
            streamed = True
            return StreamedResult(
                plan, max_rows=max_rows,
                on_complete=lambda: self._h_query.observe(
                    perf_counter() - query_started))
        finally:
            if not streamed:
                self._h_query.observe(perf_counter() - query_started)

    # ------------------------------------------------------------------ #
    # plan / result caches and prepared statements
    # ------------------------------------------------------------------ #
    def _parse_cached(self, sql: str) -> tuple[
            ast.Statement, "tuple[str, CachedPlan] | None"]:
        """Parse one statement through the plan cache.

        Returns the statement plus ``(key, entry)`` when it is a SELECT
        (the shape the result cache keys on); other statement types are
        never cached.  Raises when the statement still contains unbound
        ``?`` placeholders — those must go through PREPARE/EXECUTE.
        """
        key = normalize_sql(sql)
        if self.plan_cache is not None:
            entry = self.plan_cache.get(key)
            if entry is not None:
                self._reject_unbound(entry.profile)
                return entry.statement, (key, entry)
        statement = parse_statement(sql)
        if not isinstance(statement, ast.Select):
            return statement, None
        entry = CachedPlan(statement, profile_statement(statement))
        self._reject_unbound(entry.profile)
        if self.plan_cache is not None:
            self.plan_cache.put(key, entry)
        return statement, (key, entry)

    @staticmethod
    def _reject_unbound(profile: Any) -> None:
        if profile.parameter_count:
            raise ExecutionError(
                "statement contains unbound '?' placeholders; use "
                "PREPARE name AS ... and EXECUTE name (args)")

    def _result_cache_get(self, cacheable: tuple[str, CachedPlan]
                          ) -> QueryResult | None:
        if self.result_cache is None:
            return None
        key, entry = cacheable
        if not entry.profile.deterministic():
            return None
        return self.result_cache.get(key)

    def _result_cache_put(self, cacheable: tuple[str, CachedPlan],
                          result: QueryResult) -> None:
        if self.result_cache is None:
            return
        key, entry = cacheable
        if not entry.profile.deterministic():
            return
        self.result_cache.put(key, result, entry.profile.tables)

    def note_mutation(self, statement: ast.Statement) -> None:
        """Invalidate cache entries made stale by an executed statement.

        Called by the executor after every successful mutating statement;
        UDF (re)definition clears both caches entirely (a UDF body change
        alters what any query calling it returns).
        """
        if isinstance(statement, (ast.InsertValues, ast.InsertSelect,
                                  ast.Delete, ast.Update, ast.CopyInto)):
            self.invalidate_table(statement.table)
        elif isinstance(statement, (ast.CreateTable, ast.DropTable)):
            self.invalidate_table(statement.name)
        elif isinstance(statement, (ast.CreateFunction, ast.DropFunction)):
            self.invalidate_caches()

    def invalidate_table(self, table: str) -> None:
        """Drop every cached plan/result that reads ``table``."""
        if self.plan_cache is not None:
            self.plan_cache.invalidate_table(table)
        if self.result_cache is not None:
            self.result_cache.invalidate_table(table)

    def invalidate_caches(self) -> None:
        """Drop every cached plan and result (UDF changes, recovery)."""
        if self.plan_cache is not None:
            self.plan_cache.clear()
        if self.result_cache is not None:
            self.result_cache.clear()

    def configure_result_cache(self, max_bytes: int) -> None:
        """(Re)size the result cache; ``0`` disables it."""
        with self._lock:
            self.result_cache = \
                ResultCache(max_bytes) if max_bytes > 0 else None

    def cache_counters(self) -> dict[str, int]:
        """Flat cache counters merged into the server's stats section."""
        plan, result = self.plan_cache, self.result_cache
        return {
            "plan_cache_entries": len(plan) if plan else 0,
            "plan_cache_hits": plan.hits if plan else 0,
            "plan_cache_misses": plan.misses if plan else 0,
            "plan_cache_evictions": plan.evictions if plan else 0,
            "result_cache_entries": len(result) if result else 0,
            "result_cache_bytes": result.used_bytes if result else 0,
            "result_cache_hits": result.hits if result else 0,
            "result_cache_misses": result.misses if result else 0,
            "result_cache_invalidations":
                result.invalidations if result else 0,
            "result_cache_evictions": result.evictions if result else 0,
        }

    # -- PREPARE / EXECUTE / DEALLOCATE -------------------------------- #
    def register_prepared(self, statement: ast.Prepare) -> PreparedStatement:
        """Register (or replace) a named statement template."""
        profile = profile_statement(statement.statement)
        prepared = PreparedStatement(
            name=statement.name,
            sql=statement.sql,
            key=normalize_sql(statement.sql),
            statement=statement.statement,
            profile=profile,
        )
        with self._lock:
            self._prepared[statement.name.lower()] = prepared
        return prepared

    def prepare(self, name: str, sql: str) -> PreparedStatement:
        """``PREPARE name AS sql`` as a Python API (used by the wire server)."""
        self.execute(f"PREPARE {name} AS {sql}")
        with self._lock:
            return self._prepared[name.lower()]

    def resolve_prepared(self, name: str) -> PreparedStatement:
        prepared = self._prepared.get(name.lower())
        if prepared is None:
            raise ExecutionError(f"no prepared statement named {name!r}")
        return prepared

    def deallocate(self, name: str | None) -> bool:
        """Drop one prepared statement (or all with ``name=None``)."""
        with self._lock:
            if name is None:
                self._prepared.clear()
                return True
            return self._prepared.pop(name.lower(), None) is not None

    def prepared_names(self) -> list[str]:
        return sorted(self._prepared)

    def execute_prepared(self, name: str, arguments: list[Any], *,
                         timeout: float | None = None,
                         context: QueryContext | None = None) -> QueryResult:
        """Execute a prepared template with already-Python-typed arguments.

        This is the wire server's entry point for ``execute_prepared``
        messages: values arrive decoded from the wire, so they are wrapped
        as literals rather than re-parsed.
        """
        context = QueryContext.resolve(context, timeout)
        statement = ast.ExecutePrepared(
            name, [ast.Literal(value) for value in arguments])
        trace = context.trace if context is not None else None
        query_started = perf_counter()
        try:
            with self._lock:
                self.statements_executed += 1
                self.query_log.append(f"EXECUTE {name}")
                run_started = perf_counter()
                result = self._executor.execute(statement, context=context)
                run_ended = perf_counter()
                self._h_execute.observe(run_ended - run_started)
                if trace is not None:
                    trace.add("execute", run_started, run_ended)
                return result
        finally:
            self._h_query.observe(perf_counter() - query_started)

    def bind_prepared(self, prepared: PreparedStatement,
                      values: list[Any]) -> ast.Statement:
        """Bind argument values into a fresh copy of the template AST."""
        if len(values) != prepared.parameter_count:
            raise ExecutionError(
                f"prepared statement {prepared.name!r} expects "
                f"{prepared.parameter_count} argument(s), got {len(values)}")
        return bind_parameters(prepared.statement, values,
                               bearing=prepared.bearing_ids())

    def checkpoint(self) -> "CheckpointStats":
        """Write a fresh database image and truncate the write-ahead log.

        Raises :class:`ExecutionError` for in-memory databases — there is
        nothing durable to checkpoint, and silently succeeding would let an
        operator believe data survived a restart.
        """
        with self._lock:
            if self.persistence is None:
                raise ExecutionError(
                    "CHECKPOINT requires a persistent database "
                    "(open it with Database(path=...))")
            return self.persistence.checkpoint()

    def verify(self) -> "VerifyReport":
        """Re-check every checksum of the on-disk image and WAL (scrub).

        Deliberately lock-free: only on-disk bytes are read, so a scrub can
        run while readers execute.  Raises :class:`ExecutionError` for
        in-memory databases, mirroring :meth:`checkpoint`.
        """
        if self.persistence is None:
            raise ExecutionError(
                "VERIFY requires a persistent database "
                "(open it with Database(path=...))")
        return self.persistence.verify()

    def backup(self, target: str | os.PathLike[str]) -> "BackupStats":
        """Write a consistent standalone image at ``target`` (online backup).

        Runs under the database lock so the image is a clean statement
        boundary snapshot; restore is simply ``Database(path=target)``.
        """
        with self._lock:
            if self.persistence is None:
                raise ExecutionError(
                    "BACKUP requires a persistent database "
                    "(open it with Database(path=...))")
            return self.persistence.backup(target)

    def register_stats_source(self, name: str, source: Any) -> None:
        """Attach a named counters callable surfaced by ``SHOW STATS``."""
        self.stats_sources[name] = source

    def configure_event_log(self, target: Any, *,
                            sample_every: int = 1) -> EventLog:
        """Attach a JSON-lines event sink (a path or an open text stream).

        ``sample_every=N`` keeps every Nth event of each kind; callers that
        emit directly can pass ``force=True`` for must-keep events.
        """
        self.event_log = EventLog(target, sample_every=sample_every)
        return self.event_log

    def stats_snapshot(self) -> dict[str, int]:
        """Flat ``{qualified_counter: value}`` map for SHOW STATS / wire."""
        snapshot: dict[str, int] = {
            "db.statements_executed": self.statements_executed,
            "db.tables": len(self.storage.table_names()),
            "db.workers": self.workers,
        }
        if self.persistence is not None:
            for key, value in self.persistence.stats_snapshot().items():
                snapshot[f"persist.{key}"] = value
        # registry metric names already carry their dotted prefix
        # (db.query_us_p50, persist.wal_fsync_us_p99, ...)
        for key, value in self.metrics.snapshot().items():
            snapshot[key] = int(value)
        for name, source in self.stats_sources.items():
            try:
                counters = source()
            except Exception:  # a broken source must not break SHOW STATS
                continue
            for key, value in counters.items():
                if isinstance(value, (int, float)) \
                        and not isinstance(value, bool):
                    snapshot[f"{name}.{key}"] = int(value)
        return snapshot

    def close(self) -> None:
        """Release the worker pool; checkpoint and seal a persistent database.

        An in-memory database stays usable afterwards (the next parallel
        query lazily recreates the pool).  A persistent database writes a
        final checkpoint, truncates its WAL and closes the log file — after
        that, further mutations raise rather than silently losing
        durability.
        """
        with self._lock:
            if self.persistence is not None and not self.persistence.closed:
                self.persistence.close(checkpoint=True)
        self.scheduler.shutdown()
        if self.event_log is not None:
            self.event_log.close()

    # ------------------------------------------------------------------ #
    # convenience helpers used throughout the reproduction
    # ------------------------------------------------------------------ #
    def create_function(self, signature: FunctionSignature, *, replace: bool = True) -> None:
        """Register a UDF directly from a signature object (bypassing SQL)."""
        if not replace and self.catalog.has(signature.name):
            # raises the canonical duplicate-function error; nothing to log
            self.catalog.register(signature, replace=False)
        # log before applying (registration can no longer fail), so a WAL
        # failure leaves memory and disk agreeing
        if self.persistence is not None:
            from .persist.records import signature_to_record

            self.wal_log({"op": "create_function",
                          "signature": signature_to_record(signature)})
        self.catalog.register(signature, replace=replace)
        self.udf_runtime.invalidate(signature.name)
        # a (re)defined UDF changes what any query calling it returns
        self.invalidate_caches()

    def wal_log(self, record: dict[str, Any]) -> None:
        """Append one logical mutation record to the WAL (no-op in memory)."""
        if self.persistence is not None:
            self.persistence.log(record)

    def wal_log_group(self, records: Any) -> None:
        """Append one statement's records as an all-or-nothing WAL group."""
        if self.persistence is not None:
            self.persistence.log_group(records)

    def table_names(self) -> list[str]:
        return self.storage.table_names()

    def function_names(self) -> list[str]:
        return self.catalog.names()

    def has_function(self, name: str) -> bool:
        return self.catalog.has(name)

    def row_count(self, table_name: str) -> int:
        return self.storage.table(table_name).row_count

    def reset_counters(self) -> None:
        self.statements_executed = 0
        self.query_log.clear()
        self.udf_runtime.invocation_counts.clear()


class StreamedResult:
    """An iterator of per-morsel :class:`QueryResult` pieces of one SELECT.

    The first piece always carries the result's column layout (a streamable
    plan yields at least one — possibly empty — piece), so consumers such as
    the wire server can emit a result header before execution finishes.
    """

    def __init__(self, plan: Any, *, max_rows: int | None = None,
                 on_complete: Any = None) -> None:
        self.plan = plan
        self.statement_type = "SELECT"
        self.affected_rows = 0
        #: The plan's cancellation control block (``None`` when the caller
        #: passed neither a timeout nor a context) — the wire server
        #: registers it so a ``cancel`` message can abort the stream.
        self.context = plan.context
        pieces = plan.stream_morsels(max_rows=max_rows)
        if on_complete is not None:
            pieces = self._finalized(pieces, on_complete)
        self._pieces = pieces

    @staticmethod
    def _finalized(pieces: Any, on_complete: Any) -> Any:
        """Run ``on_complete`` once the stream ends (drained or abandoned)."""
        try:
            yield from pieces
        finally:
            on_complete()

    def __iter__(self) -> Any:
        return self._pieces

    def pieces(self) -> Any:
        return self._pieces


def _apply_parameters(sql: str, parameters: tuple | dict) -> str:
    """Very small client-side parameter substitution (printf-style).

    The paper's Listing 3 uses ``%d`` substitution inside the UDF's loopback
    query; the client protocol uses the same convention, so it lives here.
    """
    def quote(value: Any) -> str:
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, (int, float)):
            return str(value)
        escaped = str(value).replace("'", "''")
        return f"'{escaped}'"

    # Normalise printf-style placeholders (%d / %f / %i) to %s so every bound
    # value goes through SQL quoting, then substitute.
    normalised = re.sub(r"%[dfi]", "%s", sql)
    try:
        if isinstance(parameters, dict):
            return normalised % {key: quote(value) for key, value in parameters.items()}
        return normalised % tuple(quote(value) for value in parameters)
    except (TypeError, ValueError, KeyError) as exc:
        raise ExecutionError(f"cannot bind parameters {parameters!r}: {exc}") from exc
