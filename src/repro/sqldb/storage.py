"""Columnar storage engine.

Tables are stored column-at-a-time (MonetDB's BAT layout, simplified): each
column is a Python list, NULLs are ``None``.  Every column additionally keeps
cached vectorised materialisations with dirty-bit invalidation: scans and UDF
handoffs reuse the same buffers until the column is mutated, mirroring
MonetDB/Python's zero-copy handoff instead of re-converting per query.

Two cached scan shapes exist per column:

* :meth:`Column.to_numpy` — the UDF handoff format (typed array, or an
  object array holding ``None`` for NULL-bearing / string columns).
* :meth:`Column.scan_values` — the executor's batch format: NULL-free
  numeric columns stay plain typed arrays; NULL-bearing numeric columns and
  STRING columns become a :class:`repro.sqldb.vector.Vector` (contiguous
  typed values + boolean validity mask + optional sorted string dictionary
  with ``int64`` codes), which is what keeps filters, joins, GROUP BY and
  aggregates vectorised on exactly the columns that previously fell back to
  object arrays.

The ``(data array, null mask)`` buffer-pair exporters at the bottom are the
wire-format shape; the mask — never the ``_NULL_FILL`` placeholder written
into the data buffer — is the only source of truth for NULLs, so values that
happen to equal a placeholder (``""``, ``0``, ``False``) round-trip intact.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from ..errors import CatalogError, CorruptionError, ExecutionError
from .schema import ColumnDef, TableSchema
from .types import NUMPY_DTYPES, SQLType, coerce_value
from .vector import NULL_FILL, Vector, slice_column_values


@dataclass
class Column:
    """A single stored column with a cached numpy materialisation."""

    definition: ColumnDef
    values: list[Any] = field(default_factory=list)
    _array_cache: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False)
    _vector_cache: Vector | None = field(
        default=None, init=False, repr=False, compare=False)
    #: Guards cache build and invalidation: concurrent morsel scans (and
    #: multi-threaded embedders) may race a cache build against a mutation.
    #: A build that loses the race is simply discarded by the subsequent
    #: ``mark_dirty`` — the lock only has to make build-and-store atomic
    #: with respect to invalidation.
    _cache_lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False)

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def sql_type(self) -> SQLType:
        return self.definition.sql_type

    def append(self, value: Any) -> None:
        self.values.append(coerce_value(value, self.sql_type))
        self.mark_dirty()

    def extend(self, values: Iterable[Any]) -> None:
        # coerce everything *before* touching the stored list: a coercion
        # error halfway through a lazy generator would otherwise leave the
        # column partially extended with the scan caches never invalidated
        sql_type = self.sql_type
        coerced = [coerce_value(value, sql_type) for value in values]
        self.values.extend(coerced)
        self.mark_dirty()

    def mark_dirty(self) -> None:
        """Invalidate the cached scans after an in-place mutation of values."""
        with self._cache_lock:
            self._array_cache = None
            self._vector_cache = None

    def to_numpy(self) -> np.ndarray:
        """Materialise this column as a numpy array (the UDF input format).

        The array is cached and reused until the column is mutated, so
        repeated scans and UDF handoffs are near-zero-copy.  Callers must
        treat the returned array as read-only.
        """
        array = self._array_cache
        if array is None:
            with self._cache_lock:
                array = self._array_cache
                if array is None:
                    array = column_to_numpy(self.values, self.sql_type)
                    # the cache is shared across scans and UDF invocations:
                    # writing through it would corrupt stored data, so fail
                    # loudly instead
                    array.setflags(write=False)
                    self._array_cache = array
        return array

    def to_vector(self) -> Vector:
        """Materialise this column as a :class:`Vector` (cached, read-only)."""
        vector = self._vector_cache
        if vector is None:
            with self._cache_lock:
                vector = self._vector_cache
                if vector is None:
                    vector = Vector.from_values(self.values, self.sql_type)
                    vector.data.setflags(write=False)
                    if vector.mask is not None:
                        vector.mask.setflags(write=False)
                    self._vector_cache = vector
        return vector

    def scan_values(self) -> Any:
        """The batch representation the executor scans.

        NULL-free numeric/boolean columns stay the cached typed array (the
        PR 1 zero-copy format); STRING columns and NULL-bearing numeric
        columns become a cached :class:`Vector`; BLOB columns keep the
        object-array format.
        """
        sql_type = self.sql_type
        if sql_type is SQLType.BLOB:
            return self.to_numpy()
        if sql_type is SQLType.STRING:
            return self.to_vector()
        # a live cache settles the NULL-free question without rescanning
        if self._vector_cache is not None:
            return self._vector_cache
        if self._array_cache is not None and self._array_cache.dtype != object:
            return self._array_cache
        if any(value is None for value in self.values):
            return self.to_vector()
        return self.to_numpy()

    def scan_vector(self, start: int, stop: int) -> Any:
        """A zero-copy row-range slice of this column's cached scan.

        Returns the same representation :meth:`scan_values` would — a typed
        ndarray view or a :class:`Vector` slice sharing data/mask/dictionary
        buffers — restricted to rows ``[start, stop)``.  This is the storage
        entry point for morsel-driven scans: N morsels share one cached
        materialisation and never copy column data.
        """
        return slice_column_values(self.scan_values(), start, stop)

    def __len__(self) -> int:
        return len(self.values)


def column_to_numpy(values: Sequence[Any], sql_type: SQLType) -> np.ndarray:
    """Convert a list of SQL values to the numpy array handed to UDFs.

    Columns containing NULLs fall back to an object array so that ``None``
    survives the conversion (MonetDB uses masked arrays; an object array keeps
    the reproduction dependency-light while preserving the observable
    behaviour that UDFs can see missing values).
    """
    dtype = NUMPY_DTYPES[sql_type]
    if any(value is None for value in values):
        return np.array(list(values), dtype="object")
    if dtype == "object":
        array = np.empty(len(values), dtype="object")
        for index, value in enumerate(values):
            array[index] = value
        return array
    return np.array(list(values), dtype=dtype)


#: NULL placeholder stored in the value buffer at masked positions (the
#: null bitmap, not the placeholder, is authoritative).  One table shared
#: with the vector representation so scan and wire formats cannot diverge.
_NULL_FILL = NULL_FILL


def values_to_arrays(values: Sequence[Any],
                     sql_type: SQLType) -> tuple[np.ndarray, np.ndarray | None]:
    """Export a value list as ``(data array, null mask)`` buffer pair.

    This is the wire-export shape: a contiguous typed data array with NULL
    positions filled by a placeholder, plus a boolean mask that is ``None``
    when the column has no NULLs.  The inverse is :func:`arrays_to_values`.
    """
    dtype = NUMPY_DTYPES[sql_type]
    mask: np.ndarray | None = None
    if any(value is None for value in values):
        mask = np.fromiter((value is None for value in values),
                           dtype=bool, count=len(values))
        fill = _NULL_FILL[sql_type]
        values = [fill if value is None else value for value in values]
    if dtype == "object":
        data = np.empty(len(values), dtype="object")
        for index, value in enumerate(values):
            data[index] = value
    else:
        data = np.array(list(values), dtype=dtype)
    return data, mask


def arrays_to_values(data: np.ndarray | Sequence[Any],
                     mask: np.ndarray | None = None) -> list[Any]:
    """Import a ``(data, mask)`` buffer pair back into a plain value list."""
    values = data.tolist() if isinstance(data, np.ndarray) else list(data)
    if mask is not None:
        for index in np.flatnonzero(mask):
            values[index] = None
    return values


@dataclass(frozen=True)
class QuarantinedRange:
    """A row range whose on-disk segment failed its checksum.

    Created by the salvage loader (``Database(path=..., salvage=True)``):
    the range's rows are NULL placeholders, not data, so any access to the
    table raises a structured :class:`~repro.errors.CorruptionError` until
    the operator discards the damage (TRUNCATE or DROP TABLE).
    """

    table: str
    start_row: int
    stop_row: int
    offset: int
    reason: str

    def as_dict(self) -> dict[str, Any]:
        return {"table": self.table, "start_row": self.start_row,
                "stop_row": self.stop_row, "offset": self.offset,
                "reason": self.reason}


class Table:
    """A stored table: a schema plus one :class:`Column` per schema column."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.columns: list[Column] = [Column(col) for col in schema.columns]
        #: Row ranges sealed by the salvage loader; non-empty quarantine
        #: blocks every read and row-rewriting mutation (see
        #: :meth:`check_readable`).  Appends are still allowed — they land
        #: after the damaged range — and TRUNCATE/DROP clear it.
        self.quarantined: list[QuarantinedRange] = []

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def column_names(self) -> list[str]:
        return self.schema.column_names

    @property
    def row_count(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    def column(self, name: str) -> Column:
        return self.columns[self.schema.column_index(name)]

    # ------------------------------------------------------------------ #
    # quarantine (salvage mode)
    # ------------------------------------------------------------------ #
    def quarantine(self, entry: QuarantinedRange) -> None:
        """Seal a row range whose backing segment failed its checksum."""
        self.quarantined.append(entry)

    def check_readable(self) -> None:
        """Raise :class:`CorruptionError` when quarantined rows exist.

        Called by every scan and row-rewriting mutation path: quarantined
        rows are NULL placeholders, and serving (or rewriting) them as data
        would silently launder the corruption into query results.
        """
        if not self.quarantined:
            return
        first = self.quarantined[0]
        ranges = ", ".join(f"{entry.start_row}..{entry.stop_row}"
                           for entry in self.quarantined)
        raise CorruptionError(
            f"table {self.name!r} has quarantined row ranges [{ranges}] "
            f"from corrupt on-disk segments (first: {first.reason}); "
            "restore from backup, or TRUNCATE/DROP the table to discard",
            table=self.name,
            row_range=(first.start_row, first.stop_row),
            offset=first.offset)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def insert_row(self, values: Sequence[Any]) -> None:
        if len(values) != len(self.columns):
            raise ExecutionError(
                f"INSERT into {self.name!r}: expected {len(self.columns)} values, "
                f"got {len(values)}"
            )
        # coerce the whole row up front so a bad value in column k cannot
        # leave columns 0..k-1 one row longer than the rest (ragged table)
        coerced = [coerce_value(value, column.sql_type)
                   for column, value in zip(self.columns, values)]
        for column, value in zip(self.columns, coerced):
            column.values.append(value)
            column.mark_dirty()

    def insert_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        count = 0
        for row in rows:
            self.insert_row(row)
            count += 1
        return count

    def delete_rows(self, keep_mask: Sequence[bool]) -> int:
        """Keep only rows where ``keep_mask`` is True; return rows removed."""
        self.check_readable()
        if len(keep_mask) != self.row_count:
            raise ExecutionError("DELETE mask length mismatch")
        removed = sum(1 for keep in keep_mask if not keep)
        for column in self.columns:
            column.values = [
                value for value, keep in zip(column.values, keep_mask) if keep
            ]
            column.mark_dirty()
        return removed

    def update_rows(self, mask: Sequence[bool], assignments: dict[str, list[Any]]) -> int:
        """Apply per-row new values for the columns in ``assignments`` where mask is True.

        All values are coerced before any column is touched: a bad value
        must fail the whole statement, not leave some rows updated with the
        scan caches never invalidated (the caches would then serve data the
        stored lists no longer contain).
        """
        self.check_readable()
        coerced: dict[str, list[tuple[int, Any]]] = {}
        for col_name, new_values in assignments.items():
            column = self.column(col_name)
            coerced[col_name] = [
                (index, coerce_value(new_value, column.sql_type))
                for index, (selected, new_value) in enumerate(zip(mask, new_values))
                if selected
            ]
        for col_name, updates in coerced.items():
            column = self.column(col_name)
            try:
                for index, value in updates:
                    column.values[index] = value
            finally:
                # invalidate even on an impossible mid-write failure: a
                # partially updated column must never serve a stale cache
                column.mark_dirty()
        return sum(1 for selected in mask if selected)

    def truncate(self) -> None:
        # explicit destruction discards quarantined placeholders with the
        # data, so a salvaged table becomes writable again
        for column in self.columns:
            column.values = []
            column.mark_dirty()
        self.quarantined.clear()

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def rows(self) -> Iterator[tuple[Any, ...]]:
        self.check_readable()
        for index in range(self.row_count):
            yield tuple(column.values[index] for column in self.columns)

    def to_dict(self) -> dict[str, list[Any]]:
        self.check_readable()
        return {column.name: list(column.values) for column in self.columns}

    def to_numpy_dict(self) -> dict[str, np.ndarray]:
        self.check_readable()
        return {column.name: column.to_numpy() for column in self.columns}


class Storage:
    """The collection of all stored tables, addressed by (schema, name)."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    @staticmethod
    def _key(name: str) -> str:
        return name.lower()

    def create_table(self, schema: TableSchema, *, if_not_exists: bool = False) -> Table:
        key = self._key(schema.name)
        if key in self._tables:
            if if_not_exists:
                return self._tables[key]
            raise CatalogError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self._tables[key] = table
        return table

    def drop_table(self, name: str, *, if_exists: bool = False) -> None:
        key = self._key(name)
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]

    def has_table(self, name: str) -> bool:
        return self._key(name) in self._tables

    def table(self, name: str) -> Table:
        key = self._key(name)
        try:
            return self._tables[key]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def table_names(self) -> list[str]:
        return sorted(table.name for table in self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)
