"""Recursive-descent SQL parser.

The dialect is the subset of MonetDB SQL that the devUDF workflow exercises:

* ``SELECT`` with joins, subqueries, aggregates, GROUP BY / HAVING / ORDER BY /
  LIMIT, scalar subqueries, ``IN``/``BETWEEN``/``LIKE``/``CASE``/``CAST``.
* DDL: ``CREATE TABLE`` (including ``AS SELECT``), ``DROP TABLE``.
* DML: ``INSERT`` (``VALUES`` and ``SELECT``), ``UPDATE``, ``DELETE``.
* ``CREATE [OR REPLACE] FUNCTION name(params) RETURNS ... LANGUAGE PYTHON { body }``
  — the body between braces is captured verbatim (it is Python, not SQL).
* ``DROP FUNCTION``.
* ``COPY INTO table FROM 'file.csv'`` for CSV ingestion (demo §2.5).
* Table-producing function calls in the FROM clause whose arguments may be
  subqueries (paper Listing 3).

Tokens are pulled lazily from the lexer so the Python function body — which is
not valid SQL — is never tokenised as SQL.
"""

from __future__ import annotations

from typing import Any

from ..errors import ParseError
from . import ast_nodes as ast
from .lexer import Lexer, Token, TokenType
from .schema import ColumnDef, FunctionParameter
from .types import ColumnType, parse_type_name

#: Words that terminate an alias-less table reference.
_CLAUSE_KEYWORDS = {
    "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET", "ON", "JOIN",
    "INNER", "LEFT", "RIGHT", "CROSS", "UNION", "SET", "VALUES",
}

#: Reserved words that can never start an identifier expression.  Non-reserved
#: keywords (LANGUAGE, TABLE, HEADER, ...) may still be used as column names —
#: the sys.functions meta table has a ``language`` column, for example.
_RESERVED_WORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "OFFSET", "AND", "OR", "NOT", "IN", "IS", "BETWEEN", "LIKE", "WHEN",
    "THEN", "ELSE", "END", "CREATE", "DROP", "INSERT", "INTO", "VALUES",
    "DELETE", "UPDATE", "SET", "JOIN", "INNER", "LEFT", "RIGHT", "OUTER",
    "CROSS", "ON", "UNION", "AS", "DISTINCT", "COPY", "RETURNS", "FUNCTION",
}


class Parser:
    """Parses one or more SQL statements from a text."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.lexer = Lexer(text)
        self._buffer: list[Token] = []
        #: Number of ``?`` placeholders seen in the current statement; each
        #: occurrence becomes a :class:`ast.Parameter` with the next ordinal.
        self._parameters = 0

    # ------------------------------------------------------------------ #
    # token stream helpers
    # ------------------------------------------------------------------ #
    def _fill(self, count: int) -> None:
        while len(self._buffer) < count:
            self._buffer.append(self.lexer.next_token())

    def peek(self, offset: int = 0) -> Token:
        self._fill(offset + 1)
        return self._buffer[offset]

    def advance(self) -> Token:
        self._fill(1)
        return self._buffer.pop(0)

    def check_keyword(self, *names: str) -> bool:
        return self.peek().is_keyword(*names)

    def accept_keyword(self, *names: str) -> bool:
        if self.check_keyword(*names):
            self.advance()
            return True
        return False

    def expect_keyword(self, name: str) -> Token:
        token = self.peek()
        if not token.is_keyword(name):
            raise ParseError(f"expected {name}, found {token.value!r}", token.position)
        return self.advance()

    def check_punct(self, value: str) -> bool:
        token = self.peek()
        return token.type is TokenType.PUNCTUATION and token.value == value

    def accept_punct(self, value: str) -> bool:
        if self.check_punct(value):
            self.advance()
            return True
        return False

    def expect_punct(self, value: str) -> Token:
        token = self.peek()
        if not (token.type is TokenType.PUNCTUATION and token.value == value):
            raise ParseError(f"expected {value!r}, found {token.value!r}", token.position)
        return self.advance()

    def check_operator(self, *values: str) -> bool:
        token = self.peek()
        return token.type is TokenType.OPERATOR and token.value in values

    def expect_identifier(self) -> str:
        token = self.peek()
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            self.advance()
            return token.value
        raise ParseError(f"expected identifier, found {token.value!r}", token.position)

    def at_end(self) -> bool:
        return self.peek().type is TokenType.EOF

    # ------------------------------------------------------------------ #
    # entry points
    # ------------------------------------------------------------------ #
    def parse_statement(self) -> ast.Statement:
        """Parse a single statement (consuming a trailing semicolon if present)."""
        statement = self._parse_statement_inner()
        while self.accept_punct(";"):
            pass
        return statement

    def parse_script(self) -> list[ast.Statement]:
        """Parse a semicolon-separated list of statements."""
        statements: list[ast.Statement] = []
        while not self.at_end():
            if self.accept_punct(";"):
                continue
            statements.append(self._parse_statement_inner())
            while self.accept_punct(";"):
                pass
        return statements

    def _parse_statement_inner(self) -> ast.Statement:
        self._parameters = 0
        token = self.peek()
        if token.is_keyword("PREPARE"):
            return self._parse_prepare()
        if token.is_keyword("EXECUTE"):
            return self._parse_execute()
        if token.is_keyword("DEALLOCATE"):
            return self._parse_deallocate()
        if token.is_keyword("EXPLAIN"):
            self.advance()
            analyze = self.accept_keyword("ANALYZE")
            return ast.Explain(self.parse_select(), analyze=analyze)
        if token.is_keyword("SELECT"):
            return self.parse_select()
        if token.is_keyword("CREATE"):
            return self._parse_create()
        if token.is_keyword("DROP"):
            return self._parse_drop()
        if token.is_keyword("INSERT"):
            return self._parse_insert()
        if token.is_keyword("DELETE"):
            return self._parse_delete()
        if token.is_keyword("UPDATE"):
            return self._parse_update()
        if token.is_keyword("COPY"):
            return self._parse_copy()
        if token.is_keyword("CHECKPOINT"):
            self.advance()
            return ast.Checkpoint()
        if token.is_keyword("VERIFY"):
            self.advance()
            return ast.Verify()
        if token.is_keyword("BACKUP"):
            return self._parse_backup()
        if token.is_keyword("SHOW"):
            self.advance()
            self.expect_keyword("STATS")
            return ast.ShowStats()
        raise ParseError(f"unsupported statement starting with {token.value!r}",
                         token.position)

    def _parse_prepare(self) -> ast.Prepare:
        self.expect_keyword("PREPARE")
        name_token = self.peek()
        name = self.expect_identifier()
        self.expect_keyword("AS")
        start = self.peek().position
        statement = self._parse_statement_inner()
        if isinstance(statement, (ast.Prepare, ast.ExecutePrepared, ast.Deallocate)):
            raise ParseError(
                f"cannot PREPARE a {type(statement).__name__} statement",
                name_token.position)
        # The inner statement's raw text: everything up to the terminating
        # semicolon / EOF (token positions index into self.text).
        sql = self.text[start:self.peek().position].strip()
        return ast.Prepare(name=name, sql=sql, statement=statement)

    def _parse_execute(self) -> ast.ExecutePrepared:
        self.expect_keyword("EXECUTE")
        name = self.expect_identifier()
        args: list[ast.Expression] = []
        if self.check_punct("("):
            self.advance()
            if not self.accept_punct(")"):
                args = self._parse_expression_list()
                self.expect_punct(")")
        return ast.ExecutePrepared(name, args)

    def _parse_deallocate(self) -> ast.Deallocate:
        self.expect_keyword("DEALLOCATE")
        if self.accept_keyword("ALL"):
            return ast.Deallocate(None)
        return ast.Deallocate(self.expect_identifier())

    def _parse_backup(self) -> ast.BackupTo:
        self.expect_keyword("BACKUP")
        self.expect_keyword("TO")
        token = self.peek()
        if token.type is not TokenType.STRING:
            raise ParseError("BACKUP TO expects a quoted file path",
                             token.position)
        self.advance()
        return ast.BackupTo(path=token.value)

    # ------------------------------------------------------------------ #
    # SELECT
    # ------------------------------------------------------------------ #
    def parse_select(self) -> ast.Select:
        self.expect_keyword("SELECT")
        select = ast.Select()
        if self.accept_keyword("DISTINCT"):
            select.distinct = True
        select.items = self._parse_select_items()
        if self.accept_keyword("FROM"):
            select.from_clause = self._parse_from()
        if self.accept_keyword("WHERE"):
            select.where = self.parse_expression()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            select.group_by = self._parse_expression_list()
        if self.accept_keyword("HAVING"):
            select.having = self.parse_expression()
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            select.order_by = self._parse_order_items()
        if self.accept_keyword("LIMIT"):
            select.limit = self._parse_integer()
        if self.accept_keyword("OFFSET"):
            select.offset = self._parse_integer()
        return select

    def _parse_integer(self) -> int:
        token = self.peek()
        if token.type is not TokenType.NUMBER:
            raise ParseError(f"expected integer, found {token.value!r}", token.position)
        self.advance()
        return int(token.value)

    def _parse_select_items(self) -> list[ast.SelectItem]:
        items = [self._parse_select_item()]
        while self.accept_punct(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> ast.SelectItem:
        if self.check_operator("*"):
            self.advance()
            return ast.SelectItem(ast.Star())
        expression = self.parse_expression()
        alias: str | None = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier()
        elif self.peek().type is TokenType.IDENTIFIER:
            alias = self.advance().value
        return ast.SelectItem(expression, alias)

    def _parse_order_items(self) -> list[ast.OrderItem]:
        items: list[ast.OrderItem] = []
        while True:
            expression = self.parse_expression()
            descending = False
            if self.accept_keyword("DESC"):
                descending = True
            else:
                self.accept_keyword("ASC")
            items.append(ast.OrderItem(expression, descending))
            if not self.accept_punct(","):
                return items

    def _parse_expression_list(self) -> list[ast.Expression]:
        expressions = [self.parse_expression()]
        while self.accept_punct(","):
            expressions.append(self.parse_expression())
        return expressions

    # ------------------------------------------------------------------ #
    # FROM clause
    # ------------------------------------------------------------------ #
    def _parse_from(self) -> ast.TableRef:
        left = self._parse_joined_table()
        while self.accept_punct(","):
            right = self._parse_joined_table()
            left = ast.Join(left, right, join_type="CROSS")
        return left

    def _parse_joined_table(self) -> ast.TableRef:
        left = self._parse_table_primary()
        while True:
            if self.check_keyword("JOIN") or self.check_keyword("INNER"):
                self.accept_keyword("INNER")
                self.expect_keyword("JOIN")
                right = self._parse_table_primary()
                self.expect_keyword("ON")
                condition = self.parse_expression()
                left = ast.Join(left, right, "INNER", condition)
            elif self.check_keyword("LEFT"):
                self.advance()
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                right = self._parse_table_primary()
                self.expect_keyword("ON")
                condition = self.parse_expression()
                left = ast.Join(left, right, "LEFT", condition)
            elif self.check_keyword("CROSS"):
                self.advance()
                self.expect_keyword("JOIN")
                right = self._parse_table_primary()
                left = ast.Join(left, right, "CROSS")
            else:
                return left

    def _parse_table_primary(self) -> ast.TableRef:
        if self.accept_punct("("):
            query = self.parse_select()
            self.expect_punct(")")
            alias = self._parse_optional_alias()
            return ast.SubquerySource(query, alias)
        name = self.expect_identifier()
        if self.accept_punct("."):
            name = f"{name}.{self.expect_identifier()}"
        if self.check_punct("("):
            args = self._parse_table_function_args()
            alias = self._parse_optional_alias()
            return ast.TableFunctionCall(name, args, alias)
        alias = self._parse_optional_alias()
        return ast.NamedTable(name, alias)

    def _parse_optional_alias(self) -> str | None:
        if self.accept_keyword("AS"):
            return self.expect_identifier()
        token = self.peek()
        if token.type is TokenType.IDENTIFIER and token.value.upper() not in _CLAUSE_KEYWORDS:
            self.advance()
            return token.value
        return None

    def _parse_table_function_args(self) -> list[Any]:
        """Arguments of a table function call; each is an Expression or Select."""
        self.expect_punct("(")
        args: list[Any] = []
        if self.accept_punct(")"):
            return args
        while True:
            if self.check_punct("(") and self.peek(1).is_keyword("SELECT"):
                self.advance()
                args.append(self.parse_select())
                self.expect_punct(")")
            elif self.check_keyword("SELECT"):
                args.append(self.parse_select())
            else:
                args.append(self.parse_expression())
            if self.accept_punct(","):
                continue
            self.expect_punct(")")
            return args

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #
    def parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self.accept_keyword("OR"):
            right = self._parse_and()
            left = ast.BinaryOp("OR", left, right)
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self.accept_keyword("AND"):
            right = self._parse_not()
            left = ast.BinaryOp("AND", left, right)
        return left

    def _parse_not(self) -> ast.Expression:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_additive()
        while True:
            if self.check_operator("=", "<>", "!=", "<", "<=", ">", ">="):
                operator = self.advance().value
                if operator == "!=":
                    operator = "<>"
                right = self._parse_additive()
                left = ast.BinaryOp(operator, left, right)
                continue
            if self.check_keyword("IS"):
                self.advance()
                negated = self.accept_keyword("NOT")
                self.expect_keyword("NULL")
                left = ast.IsNull(left, negated)
                continue
            negated = False
            if self.check_keyword("NOT") and self.peek(1).is_keyword("IN", "BETWEEN", "LIKE"):
                self.advance()
                negated = True
            if self.check_keyword("IN"):
                self.advance()
                self.expect_punct("(")
                if self.check_keyword("SELECT"):
                    query = self.parse_select()
                    self.expect_punct(")")
                    left = ast.InSubquery(left, query, negated)
                else:
                    items = self._parse_expression_list()
                    self.expect_punct(")")
                    left = ast.InList(left, items, negated)
                continue
            if self.check_keyword("BETWEEN"):
                self.advance()
                lower = self._parse_additive()
                self.expect_keyword("AND")
                upper = self._parse_additive()
                left = ast.Between(left, lower, upper, negated)
                continue
            if self.check_keyword("LIKE"):
                self.advance()
                pattern = self._parse_additive()
                left = ast.Like(left, pattern, negated)
                continue
            return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while self.check_operator("+", "-", "||"):
            operator = self.advance().value
            right = self._parse_multiplicative()
            left = ast.BinaryOp(operator, left, right)
        return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while self.check_operator("*", "/", "%"):
            operator = self.advance().value
            right = self._parse_unary()
            left = ast.BinaryOp(operator, left, right)
        return left

    def _parse_unary(self) -> ast.Expression:
        if self.check_operator("-"):
            self.advance()
            return ast.UnaryOp("-", self._parse_unary())
        if self.check_operator("+"):
            self.advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self.peek()

        if self.check_punct("?"):
            self.advance()
            parameter = ast.Parameter(self._parameters)
            self._parameters += 1
            return parameter
        if token.type is TokenType.NUMBER:
            self.advance()
            value: Any = float(token.value) if any(c in token.value for c in ".eE") else int(token.value)
            return ast.Literal(value)
        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("CAST"):
            return self._parse_cast()
        if token.is_keyword("EXISTS"):
            self.advance()
            self.expect_punct("(")
            query = self.parse_select()
            self.expect_punct(")")
            return ast.ExistsSubquery(query)
        if self.check_punct("("):
            self.advance()
            if self.check_keyword("SELECT"):
                query = self.parse_select()
                self.expect_punct(")")
                return ast.ScalarSubquery(query)
            expression = self.parse_expression()
            self.expect_punct(")")
            return expression
        if token.type is TokenType.IDENTIFIER or (
            token.type is TokenType.KEYWORD
            and token.value.upper() not in _RESERVED_WORDS
        ):
            return self._parse_identifier_expression()
        raise ParseError(f"unexpected token {token.value!r}", token.position)

    def _parse_identifier_expression(self) -> ast.Expression:
        name = self.expect_identifier()
        if self.check_punct("("):
            return self._parse_function_call(name)
        if self.check_punct(".") and self.peek(1).type in (
            TokenType.IDENTIFIER, TokenType.KEYWORD
        ):
            self.advance()
            column = self.expect_identifier()
            if self.check_punct("("):
                # schema-qualified function call, e.g. sys.generate_series(...)
                return self._parse_function_call(f"{name}.{column}")
            return ast.ColumnRef(column, table=name)
        if self.check_punct(".") and self.peek(1).type is TokenType.OPERATOR and \
                self.peek(1).value == "*":
            # table.* in a select list
            self.advance()
            self.advance()
            return ast.Star(table=name)
        return ast.ColumnRef(name)

    def _parse_function_call(self, name: str) -> ast.Expression:
        self.expect_punct("(")
        distinct = self.accept_keyword("DISTINCT")
        args: list[ast.Expression] = []
        if self.check_operator("*"):
            self.advance()
            args.append(ast.Star())
        elif not self.check_punct(")"):
            args = self._parse_expression_list()
        self.expect_punct(")")
        return ast.FunctionCall(name, args, distinct)

    def _parse_case(self) -> ast.Expression:
        self.expect_keyword("CASE")
        whens: list[tuple[ast.Expression, ast.Expression]] = []
        default: ast.Expression | None = None
        while self.accept_keyword("WHEN"):
            condition = self.parse_expression()
            self.expect_keyword("THEN")
            result = self.parse_expression()
            whens.append((condition, result))
        if self.accept_keyword("ELSE"):
            default = self.parse_expression()
        self.expect_keyword("END")
        return ast.CaseExpression(whens, default)

    def _parse_cast(self) -> ast.Expression:
        self.expect_keyword("CAST")
        self.expect_punct("(")
        operand = self.parse_expression()
        self.expect_keyword("AS")
        type_name = self.expect_identifier()
        self.expect_punct(")")
        return ast.Cast(operand, parse_type_name(type_name))

    # ------------------------------------------------------------------ #
    # DDL / DML
    # ------------------------------------------------------------------ #
    def _parse_create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        or_replace = False
        if self.check_keyword("OR"):
            self.advance()
            self.expect_keyword("REPLACE")
            or_replace = True
        if self.accept_keyword("TABLE"):
            return self._parse_create_table()
        if self.accept_keyword("FUNCTION"):
            return self._parse_create_function(or_replace)
        token = self.peek()
        raise ParseError(f"unsupported CREATE {token.value!r}", token.position)

    def _parse_create_table(self) -> ast.CreateTable:
        if_not_exists = False
        if self.check_keyword("IF"):
            self.advance()
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self._parse_table_name()
        if self.accept_keyword("AS"):
            query = self.parse_select()
            return ast.CreateTable(name, [], if_not_exists, as_select=query)
        self.expect_punct("(")
        columns: list[ColumnDef] = []
        while True:
            col_name = self.expect_identifier()
            type_name = self.expect_identifier()
            nullable = True
            if self.check_keyword("NOT"):
                self.advance()
                self.expect_keyword("NULL")
                nullable = False
            elif self.accept_keyword("NULL"):
                nullable = True
            columns.append(ColumnDef(col_name, ColumnType(parse_type_name(type_name), nullable)))
            if self.accept_punct(","):
                continue
            self.expect_punct(")")
            break
        return ast.CreateTable(name, columns, if_not_exists)

    def _parse_table_name(self) -> str:
        name = self.expect_identifier()
        if self.accept_punct("."):
            name = f"{name}.{self.expect_identifier()}"
        return name

    def _parse_drop(self) -> ast.Statement:
        self.expect_keyword("DROP")
        if self.accept_keyword("TABLE"):
            if_exists = self._parse_if_exists()
            return ast.DropTable(self._parse_table_name(), if_exists)
        if self.accept_keyword("FUNCTION"):
            if_exists = self._parse_if_exists()
            return ast.DropFunction(self._parse_table_name(), if_exists)
        token = self.peek()
        raise ParseError(f"unsupported DROP {token.value!r}", token.position)

    def _parse_if_exists(self) -> bool:
        if self.check_keyword("IF"):
            self.advance()
            self.expect_keyword("EXISTS")
            return True
        return False

    def _parse_insert(self) -> ast.Statement:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self._parse_table_name()
        columns: list[str] = []
        if self.check_punct("("):
            self.advance()
            while True:
                columns.append(self.expect_identifier())
                if self.accept_punct(","):
                    continue
                self.expect_punct(")")
                break
        if self.accept_keyword("VALUES"):
            rows: list[list[ast.Expression]] = []
            while True:
                self.expect_punct("(")
                rows.append(self._parse_expression_list())
                self.expect_punct(")")
                if not self.accept_punct(","):
                    break
            return ast.InsertValues(table, columns, rows)
        if self.check_keyword("SELECT"):
            return ast.InsertSelect(table, columns, self.parse_select())
        token = self.peek()
        raise ParseError(f"expected VALUES or SELECT, found {token.value!r}",
                         token.position)

    def _parse_delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self._parse_table_name()
        where = self.parse_expression() if self.accept_keyword("WHERE") else None
        return ast.Delete(table, where)

    def _parse_update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self._parse_table_name()
        self.expect_keyword("SET")
        assignments: list[tuple[str, ast.Expression]] = []
        while True:
            column = self.expect_identifier()
            token = self.peek()
            if not (token.type is TokenType.OPERATOR and token.value == "="):
                raise ParseError("expected '=' in UPDATE assignment", token.position)
            self.advance()
            assignments.append((column, self.parse_expression()))
            if not self.accept_punct(","):
                break
        where = self.parse_expression() if self.accept_keyword("WHERE") else None
        return ast.Update(table, assignments, where)

    def _parse_copy(self) -> ast.CopyInto:
        self.expect_keyword("COPY")
        self.expect_keyword("INTO")
        table = self._parse_table_name()
        self.expect_keyword("FROM")
        token = self.peek()
        if token.type is not TokenType.STRING:
            raise ParseError("expected file path string in COPY INTO", token.position)
        self.advance()
        path = token.value
        delimiter = ","
        header = False
        if self.accept_keyword("DELIMITERS"):
            delim_token = self.peek()
            if delim_token.type is not TokenType.STRING:
                raise ParseError("expected delimiter string", delim_token.position)
            self.advance()
            delimiter = delim_token.value
        if self.accept_keyword("HEADER"):
            header = True
        return ast.CopyInto(table, path, delimiter, header)

    # ------------------------------------------------------------------ #
    # CREATE FUNCTION (Python UDF bodies captured verbatim)
    # ------------------------------------------------------------------ #
    def _parse_create_function(self, or_replace: bool) -> ast.CreateFunction:
        name = self._parse_table_name()
        self.expect_punct("(")
        parameters: list[FunctionParameter] = []
        if not self.check_punct(")"):
            number = 0
            while True:
                param_name = self.expect_identifier()
                type_name = self.expect_identifier()
                parameters.append(
                    FunctionParameter(param_name, parse_type_name(type_name), number)
                )
                number += 1
                if self.accept_punct(","):
                    continue
                break
        self.expect_punct(")")
        self.expect_keyword("RETURNS")

        returns_table = False
        return_columns: list[ColumnDef] = []
        return_type = None
        if self.check_keyword("TABLE") or (
            self.peek().type is TokenType.IDENTIFIER and self.peek().value.upper() == "TABLE"
        ):
            self.advance()
            returns_table = True
            self.expect_punct("(")
            while True:
                col_name = self.expect_identifier()
                type_name = self.expect_identifier()
                return_columns.append(ColumnDef(col_name, ColumnType(parse_type_name(type_name))))
                if self.accept_punct(","):
                    continue
                self.expect_punct(")")
                break
        else:
            return_type = parse_type_name(self.expect_identifier())

        self.expect_keyword("LANGUAGE")
        language = self.expect_identifier().upper()

        brace = self.peek()
        if not (brace.type is TokenType.PUNCTUATION and brace.value == "{"):
            raise ParseError("expected '{' to start function body", brace.position)
        # Capture the body verbatim from the raw text; then resynchronise the
        # lexer past the closing brace, discarding any buffered lookahead.
        body, end = self.lexer.scan_braced_block(brace.position)
        self.lexer.pos = end
        self._buffer.clear()
        return ast.CreateFunction(
            name=name,
            parameters=parameters,
            returns_table=returns_table,
            return_columns=return_columns,
            return_type=return_type,
            language=language,
            body=body,
            or_replace=or_replace,
        )


def parse_statement(sql: str) -> ast.Statement:
    """Parse a single SQL statement."""
    return Parser(sql).parse_statement()


def parse_script(sql: str) -> list[ast.Statement]:
    """Parse a semicolon-separated SQL script."""
    return Parser(sql).parse_script()
