"""``repro.workloads`` — demo data generators, the paper's UDF corpus, and the
two buggy demo scenarios (§2.5)."""

from .csvgen import CSVWorkload, generate_csv_directory, load_workload, reference_mean_deviation
from .scenarios import ScenarioA, ScenarioB, make_scenario_a, make_scenario_b
from .udf_corpus import (
    EXTRA_UDFS_SQL,
    FIND_BEST_CLASSIFIER_BODY,
    LOAD_NUMBERS_BUGGY_BODY,
    LOAD_NUMBERS_FIXED_BODY,
    MEAN_DEVIATION_BUGGY_BODY,
    MEAN_DEVIATION_FIXED_BODY,
    TRAIN_RNFOREST_BODY,
    DemoSetup,
    demo_server,
    find_best_classifier_create_sql,
    load_numbers_create_sql,
    mean_deviation_create_sql,
    setup_classifier_database,
    setup_mixed_catalog,
    setup_numbers_database,
    train_rnforest_create_sql,
)

__all__ = [
    "CSVWorkload",
    "DemoSetup",
    "EXTRA_UDFS_SQL",
    "FIND_BEST_CLASSIFIER_BODY",
    "LOAD_NUMBERS_BUGGY_BODY",
    "LOAD_NUMBERS_FIXED_BODY",
    "MEAN_DEVIATION_BUGGY_BODY",
    "MEAN_DEVIATION_FIXED_BODY",
    "ScenarioA",
    "ScenarioB",
    "TRAIN_RNFOREST_BODY",
    "demo_server",
    "find_best_classifier_create_sql",
    "generate_csv_directory",
    "load_numbers_create_sql",
    "load_workload",
    "make_scenario_a",
    "make_scenario_b",
    "mean_deviation_create_sql",
    "reference_mean_deviation",
    "setup_classifier_database",
    "setup_mixed_catalog",
    "setup_numbers_database",
    "train_rnforest_create_sql",
]
