"""CSV workload generation for the demo (paper §2.5).

"In our demonstration we will ingest several CSV files, located in one
directory, with one column of integers, our final goal is to create a UDF
that calculates the mean deviation of said column."

The generator writes such a directory deterministically (seeded), and the
reference helpers compute the correct mean deviation the demo compares
against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np


@dataclass
class CSVWorkload:
    """A generated directory of one-column integer CSV files."""

    directory: Path
    files: list[Path] = field(default_factory=list)
    values_per_file: list[list[int]] = field(default_factory=list)

    @property
    def all_values(self) -> list[int]:
        return [value for values in self.values_per_file for value in values]

    @property
    def total_rows(self) -> int:
        return sum(len(values) for values in self.values_per_file)

    @property
    def rows_excluding_last_file(self) -> int:
        """What the buggy Listing 5 loader would ingest (it skips the last file)."""
        if not self.values_per_file:
            return 0
        return self.total_rows - len(self.values_per_file[-1])

    def mean(self) -> float:
        values = self.all_values
        return float(np.mean(values)) if values else 0.0

    def mean_deviation(self) -> float:
        """The correct mean (absolute) deviation of all values."""
        values = np.asarray(self.all_values, dtype=float)
        if len(values) == 0:
            return 0.0
        return float(np.mean(np.abs(values - values.mean())))

    def mean_deviation_excluding_last_file(self) -> float:
        """The value the correct UDF computes over the buggy loader's output."""
        values: list[int] = []
        for file_values in self.values_per_file[:-1]:
            values.extend(file_values)
        if not values:
            return 0.0
        array = np.asarray(values, dtype=float)
        return float(np.mean(np.abs(array - array.mean())))


def generate_csv_directory(directory: str | Path, *, n_files: int = 5,
                           rows_per_file: int = 20, low: int = 0, high: int = 100,
                           seed: int = 7) -> CSVWorkload:
    """Write ``n_files`` one-column integer CSV files into ``directory``."""
    if n_files < 1:
        raise ValueError("need at least one CSV file")
    if rows_per_file < 1:
        raise ValueError("need at least one row per file")
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    rng = random.Random(seed)
    workload = CSVWorkload(directory=target)
    for index in range(n_files):
        values = [rng.randint(low, high) for _ in range(rows_per_file)]
        path = target / f"numbers_{index:03d}.csv"
        path.write_text("\n".join(str(v) for v in values) + "\n", encoding="utf-8")
        workload.files.append(path)
        workload.values_per_file.append(values)
    return workload


def load_workload(directory: str | Path) -> CSVWorkload:
    """Re-read a previously generated CSV directory from disk."""
    target = Path(directory)
    workload = CSVWorkload(directory=target)
    for path in sorted(target.glob("*.csv")):
        values = [int(line) for line in path.read_text(encoding="utf-8").splitlines()
                  if line.strip()]
        workload.files.append(path)
        workload.values_per_file.append(values)
    return workload


def reference_mean_deviation(values: list[int] | list[float]) -> float:
    """Reference implementation the demo compares the UDF against (§2.5)."""
    array = np.asarray(values, dtype=float)
    if len(array) == 0:
        return 0.0
    return float(np.mean(np.abs(array - array.mean())))
