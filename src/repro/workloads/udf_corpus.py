"""The corpus of UDFs used by the demo, the examples, the tests and benchmarks.

Bodies are written the way MonetDB would store them (the function body only),
matching the paper's listings:

* Listing 4 — the buggy ``mean_deviation`` (regular difference instead of the
  absolute difference) and its corrected version.
* Listing 5 — the buggy ``loadNumbers`` data loader (off-by-one over the CSV
  files in a directory) and its corrected version.
* Listings 1/3 — ``train_rnforest`` and the nested ``find_best_classifier``
  (using :mod:`repro.ml` instead of scikit-learn, which is not available).

Plus a handful of ordinary UDFs so the import/export round-trip tests have a
mixed catalog to work against.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass

from ..ml.datasets import make_blobs
from ..netproto.server import DatabaseServer
from ..sqldb.database import Database
from .csvgen import CSVWorkload, generate_csv_directory


def _body(text: str) -> str:
    return textwrap.dedent(text).strip("\n") + "\n"


# --------------------------------------------------------------------------- #
# Listing 4: mean_deviation (buggy and fixed)
# --------------------------------------------------------------------------- #
MEAN_DEVIATION_BUGGY_BODY = _body("""
    mean = 0
    for i in range(0, len(column)):
        mean += column[i]
    mean = mean / len(column)
    distance = 0
    for i in range(0, len(column)):
        distance += column[i] - mean
    deviation = distance / len(column)
    return deviation
""")

MEAN_DEVIATION_FIXED_BODY = _body("""
    mean = 0
    for i in range(0, len(column)):
        mean += column[i]
    mean = mean / len(column)
    distance = 0
    for i in range(0, len(column)):
        distance += abs(column[i] - mean)
    deviation = distance / len(column)
    return deviation
""")


def mean_deviation_create_sql(body: str = MEAN_DEVIATION_BUGGY_BODY, *,
                              or_replace: bool = False) -> str:
    replace = "OR REPLACE " if or_replace else ""
    return (f"CREATE {replace}FUNCTION mean_deviation(column INTEGER)\n"
            f"RETURNS DOUBLE LANGUAGE PYTHON {{\n{body}}};")


def mean_deviation_instrumented_body(round_index: int) -> str:
    """Print-debugging instrumentations a developer would try (round by round)."""
    if round_index == 0:
        return _body("""
            mean = 0
            for i in range(0, len(column)):
                mean += column[i]
            mean = mean / len(column)
            print('DEBUG mean =', mean)
            distance = 0
            for i in range(0, len(column)):
                distance += column[i] - mean
            deviation = distance / len(column)
            return deviation
        """)
    if round_index == 1:
        return _body("""
            mean = 0
            for i in range(0, len(column)):
                mean += column[i]
            mean = mean / len(column)
            distance = 0
            for i in range(0, len(column)):
                distance += column[i] - mean
                print('DEBUG i =', i, 'delta =', column[i] - mean, 'distance =', distance)
            deviation = distance / len(column)
            return deviation
        """)
    return _body("""
        mean = 0
        for i in range(0, len(column)):
            mean += column[i]
        mean = mean / len(column)
        distance = 0
        for i in range(0, len(column)):
            delta = column[i] - mean
            print('DEBUG delta sign', 'negative' if delta < 0 else 'positive', delta)
            distance += delta
        deviation = distance / len(column)
        return deviation
    """)


# --------------------------------------------------------------------------- #
# Listing 5: loadNumbers (buggy and fixed)
# --------------------------------------------------------------------------- #
LOAD_NUMBERS_BUGGY_BODY = _body("""
    import os
    files = sorted(os.listdir(path))
    result = []
    for i in range(0, len(files) - 1):
        file = open(os.path.join(path, files[i]), "r")
        for line in file:
            if line.strip():
                result.append(int(line))
        file.close()
    return result
""")

LOAD_NUMBERS_FIXED_BODY = _body("""
    import os
    files = sorted(os.listdir(path))
    result = []
    for i in range(0, len(files)):
        file = open(os.path.join(path, files[i]), "r")
        for line in file:
            if line.strip():
                result.append(int(line))
        file.close()
    return result
""")


def load_numbers_create_sql(body: str = LOAD_NUMBERS_BUGGY_BODY, *,
                            or_replace: bool = False) -> str:
    replace = "OR REPLACE " if or_replace else ""
    return (f"CREATE {replace}FUNCTION loadNumbers(path STRING)\n"
            f"RETURNS TABLE(i INTEGER) LANGUAGE PYTHON {{\n{body}}};")


def load_numbers_instrumented_body(round_index: int) -> str:
    if round_index == 0:
        return _body("""
            import os
            files = sorted(os.listdir(path))
            print('DEBUG files found =', len(files))
            result = []
            for i in range(0, len(files) - 1):
                file = open(os.path.join(path, files[i]), "r")
                for line in file:
                    if line.strip():
                        result.append(int(line))
                file.close()
            print('DEBUG rows loaded =', len(result))
            return result
        """)
    return _body("""
        import os
        files = sorted(os.listdir(path))
        result = []
        loaded_files = []
        for i in range(0, len(files) - 1):
            loaded_files.append(files[i])
            file = open(os.path.join(path, files[i]), "r")
            for line in file:
                if line.strip():
                    result.append(int(line))
            file.close()
        print('DEBUG loaded files =', loaded_files, 'of', files)
        return result
    """)


# --------------------------------------------------------------------------- #
# Listings 1 and 3: the classifier UDFs (scikit-learn replaced by repro.ml)
# --------------------------------------------------------------------------- #
TRAIN_RNFOREST_BODY = _body("""
    import pickle
    import binascii
    from repro.ml import RandomForestClassifier
    data = numpy.column_stack((f0, f1))
    if hasattr(n_estimators, '__len__'):
        n = int(numpy.asarray(n_estimators).ravel()[0])
    else:
        n = int(n_estimators)
    clf = RandomForestClassifier(n_estimators=n, random_state=0)
    clf.fit(data, classes)
    return {'clf': binascii.hexlify(pickle.dumps(clf)).decode(),
            'estimators': n}
""")

FIND_BEST_CLASSIFIER_BODY = _body("""
    import pickle
    import binascii
    res = _conn.execute(\"\"\"SELECT f0, f1, label FROM testingset\"\"\")
    tdata = numpy.column_stack((res['f0'], res['f1']))
    tlabels = numpy.asarray(res['label'])
    best_classifier = None
    best_classifier_answers = -1
    best_estimator = -1
    if hasattr(esttest, '__len__'):
        est_limit = int(numpy.asarray(esttest).ravel()[0])
    else:
        est_limit = int(esttest)
    for estimator in range(1, est_limit + 1):
        res = _conn.execute(\"\"\"
            SELECT * FROM train_rnforest(
                (SELECT f0, f1, label FROM trainingset), %d)
        \"\"\" % estimator)
        classifier = pickle.loads(binascii.unhexlify(res['clf'][0]))
        predictions = classifier.predict(tdata)
        correct_pred = predictions == tlabels
        correct_ans = int(numpy.sum(correct_pred))
        if correct_ans > best_classifier_answers:
            best_classifier = res['clf'][0]
            best_classifier_answers = correct_ans
            best_estimator = estimator
    return {'clf': best_classifier,
            'n_estimators': best_estimator,
            'correct': best_classifier_answers}
""")


def train_rnforest_create_sql(*, or_replace: bool = False) -> str:
    replace = "OR REPLACE " if or_replace else ""
    return (f"CREATE {replace}FUNCTION train_rnforest"
            "(f0 DOUBLE, f1 DOUBLE, classes INTEGER, n_estimators INTEGER)\n"
            "RETURNS TABLE(clf STRING, estimators INTEGER) LANGUAGE PYTHON {\n"
            f"{TRAIN_RNFOREST_BODY}}};")


def find_best_classifier_create_sql(*, or_replace: bool = False) -> str:
    replace = "OR REPLACE " if or_replace else ""
    return (f"CREATE {replace}FUNCTION find_best_classifier(esttest INTEGER)\n"
            "RETURNS TABLE(clf STRING, n_estimators INTEGER, correct INTEGER) "
            "LANGUAGE PYTHON {\n"
            f"{FIND_BEST_CLASSIFIER_BODY}}};")


# --------------------------------------------------------------------------- #
# additional ordinary UDFs (a realistic mixed catalog)
# --------------------------------------------------------------------------- #
EXTRA_UDFS_SQL: dict[str, str] = {
    "add_one": (
        "CREATE FUNCTION add_one(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\n"
        "    return i + 1\n};"
    ),
    "zscore": (
        "CREATE FUNCTION zscore(x DOUBLE) RETURNS DOUBLE LANGUAGE PYTHON {\n"
        "    import numpy\n"
        "    values = numpy.asarray(x, dtype='float64')\n"
        "    std = values.std()\n"
        "    if std == 0:\n"
        "        return values * 0.0\n"
        "    return (values - values.mean()) / std\n};"
    ),
    "column_stats": (
        "CREATE FUNCTION column_stats(v DOUBLE) "
        "RETURNS TABLE(stat STRING, value DOUBLE) LANGUAGE PYTHON {\n"
        "    import numpy\n"
        "    values = numpy.asarray(v, dtype='float64')\n"
        "    return {'stat': ['min', 'max', 'mean', 'count'],\n"
        "            'value': [float(values.min()), float(values.max()),\n"
        "                      float(values.mean()), float(len(values))]}\n};"
    ),
    "generate_series_py": (
        "CREATE FUNCTION generate_series_py(n INTEGER) "
        "RETURNS TABLE(value INTEGER) LANGUAGE PYTHON {\n"
        "    import numpy\n"
        "    if hasattr(n, '__len__'):\n"
        "        n = int(numpy.asarray(n).ravel()[0])\n"
        "    return {'value': numpy.arange(int(n))}\n};"
    ),
    "total_sum": (
        "CREATE FUNCTION total_sum(v INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {\n"
        "    import numpy\n"
        "    return float(numpy.sum(v))\n};"
    ),
}


# --------------------------------------------------------------------------- #
# database setup helpers
# --------------------------------------------------------------------------- #
@dataclass
class DemoSetup:
    """Handles produced while preparing the demo database."""

    workload: CSVWorkload
    csv_directory: str


def setup_numbers_database(database: Database, csv_directory: str, *,
                           n_files: int = 5, rows_per_file: int = 20,
                           seed: int = 7, load_with: str = "copy") -> DemoSetup:
    """Create the ``numbers`` table and ingest the demo CSV directory.

    ``load_with='copy'`` ingests via ``COPY INTO`` (the correct path, used for
    Scenario A).  ``load_with='none'`` leaves the table empty (Scenario B loads
    through the ``loadNumbers`` UDF instead).
    """
    workload = generate_csv_directory(csv_directory, n_files=n_files,
                                      rows_per_file=rows_per_file, seed=seed)
    database.execute("CREATE TABLE IF NOT EXISTS numbers (i INTEGER)")
    # idempotent for durable databases: a recovered `numbers` already holds
    # its rows, and re-running COPY INTO would duplicate them
    if load_with == "copy" and database.row_count("numbers") == 0:
        for path in workload.files:
            database.execute(f"COPY INTO numbers FROM '{path}'")
    return DemoSetup(workload=workload, csv_directory=str(workload.directory))


def setup_classifier_database(database: Database, *, n_rows: int = 120,
                              seed: int = 3) -> None:
    """Create the training/testing sets behind Listings 1 and 3."""
    dataset = make_blobs(n_rows=n_rows, n_features=2, n_classes=2, seed=seed)
    split = int(round(n_rows * 0.7))
    database.execute(
        "CREATE TABLE IF NOT EXISTS trainingset (f0 DOUBLE, f1 DOUBLE, label INTEGER)")
    database.execute(
        "CREATE TABLE IF NOT EXISTS testingset (f0 DOUBLE, f1 DOUBLE, label INTEGER)")
    # idempotent for durable databases: recovered sets keep their rows and
    # recovered UDFs keep any edited bodies (exported fixes survive restarts)
    if database.row_count("trainingset") == 0 and database.row_count("testingset") == 0:
        for index in range(n_rows):
            table = "trainingset" if index < split else "testingset"
            database.execute(
                f"INSERT INTO {table} VALUES ({float(dataset.data[index, 0])}, "
                f"{float(dataset.data[index, 1])}, {int(dataset.labels[index])})"
            )
    if not database.has_function("train_rnforest"):
        database.execute(train_rnforest_create_sql(or_replace=True))
    if not database.has_function("find_best_classifier"):
        database.execute(find_best_classifier_create_sql(or_replace=True))


def setup_mixed_catalog(database: Database) -> list[str]:
    """Register the extra ordinary UDFs; returns the names created."""
    created = []
    for name, sql in EXTRA_UDFS_SQL.items():
        if not database.has_function(name):
            database.execute(sql)
        created.append(name)
    return created


def demo_server(csv_directory: str, *, buggy_mean_deviation: bool = True,
                buggy_loader: bool = False, with_classifier: bool = False,
                with_extras: bool = False, n_files: int = 5,
                rows_per_file: int = 20, seed: int = 7,
                db_path: str | None = None
                ) -> tuple[DatabaseServer, DemoSetup]:
    """Build a fully-populated demo server (the paper's demo environment).

    ``db_path`` makes the demo database durable (``Database(path=...)``):
    the corpus setup statements are WAL-logged like any other SQL.  A
    ``demo_meta`` marker row written as the *last* setup step records
    completion: a restart over a completed database serves the recovered
    state untouched (no CSV re-ingest, edited/exported UDF bodies survive),
    while a launch that crashed mid-setup wipes the partial demo objects
    and redoes the whole setup.
    """
    # serving defaults (same as the standalone server CLI): plan cache on,
    # 8 MiB result cache — the demo is a read-heavy repeated-query workload
    database = Database(name="demo", path=db_path,
                        result_cache_bytes=8 << 20)
    if db_path is not None and _demo_setup_complete(database):
        workload = generate_csv_directory(csv_directory, n_files=n_files,
                                          rows_per_file=rows_per_file,
                                          seed=seed)
        # the core corpus is untouched (user edits survive), but optional
        # corpora the original setup didn't include are topped up — their
        # setup functions skip anything that already exists
        if with_classifier:
            setup_classifier_database(database)
        if with_extras:
            setup_mixed_catalog(database)
        return DatabaseServer(database), DemoSetup(
            workload=workload, csv_directory=str(workload.directory))
    if db_path is not None:
        # no completion marker on a durable database: wipe whatever a
        # previous interrupted setup left behind (a fresh in-memory
        # database can hold no leftovers, so it skips the no-op drops)
        _reset_demo_objects(database)
    setup = setup_numbers_database(database, csv_directory, n_files=n_files,
                                   rows_per_file=rows_per_file, seed=seed)
    body = MEAN_DEVIATION_BUGGY_BODY if buggy_mean_deviation else MEAN_DEVIATION_FIXED_BODY
    database.execute(mean_deviation_create_sql(body))
    loader_body = LOAD_NUMBERS_BUGGY_BODY if buggy_loader else LOAD_NUMBERS_FIXED_BODY
    database.execute(load_numbers_create_sql(loader_body))
    if with_classifier:
        setup_classifier_database(database)
    if with_extras:
        setup_mixed_catalog(database)
    if db_path is not None:
        _mark_demo_setup_complete(database)
    return DatabaseServer(database), setup


def _demo_setup_complete(database: Database) -> bool:
    if not database.storage.has_table("demo_meta"):
        return False
    result = database.execute(
        "SELECT COUNT(*) FROM demo_meta WHERE key = 'setup_complete'")
    return bool(result.scalar())


def _mark_demo_setup_complete(database: Database) -> None:
    database.execute(
        "CREATE TABLE IF NOT EXISTS demo_meta (key STRING, value STRING)")
    database.execute(
        "INSERT INTO demo_meta VALUES ('setup_complete', 'true')")


def _reset_demo_objects(database: Database) -> None:
    """Drop whatever a previous, interrupted setup managed to create.

    Only reached when the completion marker is absent — i.e. on a fresh
    database (all no-ops) or a partial one, where the half-built corpus
    cannot hold meaningful user edits yet.
    """
    for table in ("numbers", "trainingset", "testingset", "demo_meta"):
        database.execute(f"DROP TABLE IF EXISTS {table}")
    for function in ("mean_deviation", "loadNumbers", "train_rnforest",
                     "find_best_classifier", *EXTRA_UDFS_SQL):
        database.execute(f"DROP FUNCTION IF EXISTS {function}")
