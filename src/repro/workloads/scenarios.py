"""The demo scenarios (paper §2.5) as driveable :class:`DebuggingScenario` objects.

* **Scenario A** — the ``mean_deviation`` UDF of Listing 4 computes the regular
  difference instead of the absolute difference: "a semantic error, that is
  syntactically correct but logically incorrect".
* **Scenario B** — the UDF is correct, but the ``loadNumbers`` data loader of
  Listing 5 skips one of the CSV files "because it considers that range is
  right side inclusive" — a data-dependent error.

Each scenario knows how to set up the demo database, what the correct answer
is, how a developer would print-debug it (the traditional workflow), and how
the bug shows up under the interactive debugger (the devUDF workflow).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from ..core.debugger import Breakpoint, DebugOutcome
from ..core.workflow import DebuggingScenario
from ..netproto.server import DatabaseServer
from ..sqldb.database import Database
from .csvgen import CSVWorkload, generate_csv_directory
from .udf_corpus import (
    LOAD_NUMBERS_BUGGY_BODY,
    LOAD_NUMBERS_FIXED_BODY,
    MEAN_DEVIATION_BUGGY_BODY,
    MEAN_DEVIATION_FIXED_BODY,
    load_numbers_create_sql,
    load_numbers_instrumented_body,
    mean_deviation_create_sql,
    mean_deviation_instrumented_body,
)


class ScenarioA(DebuggingScenario):
    """Listing 4: mean deviation without the absolute value."""

    name = "scenario_a"
    udf_name = "mean_deviation"
    debug_query = "SELECT mean_deviation(i) FROM numbers"

    def __init__(self, csv_directory: str | Path, *, n_files: int = 5,
                 rows_per_file: int = 20, seed: int = 7) -> None:
        self.csv_directory = Path(csv_directory)
        self.n_files = n_files
        self.rows_per_file = rows_per_file
        self.seed = seed
        self.workload: CSVWorkload | None = None

    # -- setup ---------------------------------------------------------- #
    def setup(self, server: DatabaseServer) -> None:
        database: Database = server.database
        self.workload = generate_csv_directory(
            self.csv_directory, n_files=self.n_files,
            rows_per_file=self.rows_per_file, seed=self.seed)
        database.execute("CREATE TABLE IF NOT EXISTS numbers (i INTEGER)")
        for path in self.workload.files:
            database.execute(f"COPY INTO numbers FROM '{path}'")
        database.execute(mean_deviation_create_sql(MEAN_DEVIATION_BUGGY_BODY,
                                                   or_replace=True))

    # -- correctness ------------------------------------------------------ #
    def reference_value(self) -> float:
        if self.workload is None:
            raise RuntimeError("setup() must be called before reference_value()")
        return self.workload.mean_deviation()

    def is_correct(self, value: Any) -> bool:
        try:
            return abs(float(value) - self.reference_value()) < 1e-6
        except (TypeError, ValueError):
            return False

    # -- traditional workflow --------------------------------------------- #
    def fixed_create_sql(self) -> str:
        return mean_deviation_create_sql(MEAN_DEVIATION_FIXED_BODY, or_replace=True)

    def instrumented_create_sql(self, round_index: int) -> str:
        return mean_deviation_create_sql(
            mean_deviation_instrumented_body(round_index), or_replace=True)

    def print_debug_rounds(self) -> int:
        # print the mean, print the running distance, print the sign of each
        # delta — three instrumentation rounds before the missing abs() is seen
        return 3

    # -- devUDF workflow ---------------------------------------------------- #
    def apply_fix_to_source(self, source: str) -> str:
        return source.replace("distance += column[i] - mean",
                              "distance += abs(column[i] - mean)")

    def debugger_breakpoints(self, source: str) -> list[int | Breakpoint]:
        for number, line in enumerate(source.splitlines(), start=1):
            if "distance += column[i] - mean" in line:
                return [number]
        return []

    def debugger_watches(self) -> dict[str, str]:
        return {"distance": "distance", "mean": "mean"}

    def bug_visible_in_debugger(self, outcome: DebugOutcome) -> bool:
        """A mean *deviation* accumulator must never go negative; stepping
        through the loop shows it doing exactly that."""
        for stop in outcome.stops:
            distance = stop.watches.get("distance")
            if isinstance(distance, (int, float)) and distance < 0:
                return True
        return False


class ScenarioB(DebuggingScenario):
    """Listing 5: the data loader skips the last CSV file (off-by-one)."""

    name = "scenario_b"
    udf_name = "loadNumbers"

    def __init__(self, csv_directory: str | Path, *, n_files: int = 5,
                 rows_per_file: int = 20, seed: int = 11) -> None:
        self.csv_directory = Path(csv_directory)
        self.n_files = n_files
        self.rows_per_file = rows_per_file
        self.seed = seed
        self.workload: CSVWorkload | None = None
        self.debug_query = ""

    # -- setup ---------------------------------------------------------- #
    def setup(self, server: DatabaseServer) -> None:
        database: Database = server.database
        self.workload = generate_csv_directory(
            self.csv_directory, n_files=self.n_files,
            rows_per_file=self.rows_per_file, seed=self.seed)
        database.execute(load_numbers_create_sql(LOAD_NUMBERS_BUGGY_BODY,
                                                 or_replace=True))
        database.execute(mean_deviation_create_sql(MEAN_DEVIATION_FIXED_BODY,
                                                   or_replace=True))
        self.debug_query = f"SELECT * FROM loadNumbers('{self.workload.directory}')"

    # -- correctness ------------------------------------------------------ #
    def reference_value(self) -> list[int]:
        if self.workload is None:
            raise RuntimeError("setup() must be called before reference_value()")
        return sorted(self.workload.all_values)

    def is_correct(self, value: Any) -> bool:
        if not isinstance(value, list):
            return False
        loaded = sorted(row[0] if isinstance(row, tuple) else row for row in value)
        return loaded == self.reference_value()

    # -- traditional workflow --------------------------------------------- #
    def fixed_create_sql(self) -> str:
        return load_numbers_create_sql(LOAD_NUMBERS_FIXED_BODY, or_replace=True)

    def instrumented_create_sql(self, round_index: int) -> str:
        return load_numbers_create_sql(
            load_numbers_instrumented_body(round_index), or_replace=True)

    def print_debug_rounds(self) -> int:
        # print the number of files vs rows, then print which files were read
        return 2

    # -- devUDF workflow ---------------------------------------------------- #
    def apply_fix_to_source(self, source: str) -> str:
        return source.replace("for i in range(0, len(files) - 1):",
                              "for i in range(0, len(files)):")

    def debugger_breakpoints(self, source: str) -> list[int | Breakpoint]:
        for number, line in enumerate(source.splitlines(), start=1):
            if "for i in range(0, len(files) - 1):" in line:
                return [number]
        return []

    def debugger_watches(self) -> dict[str, str]:
        return {
            "files_found": "len(files)",
            "current_index": "i",
        }

    def bug_visible_in_debugger(self, outcome: DebugOutcome) -> bool:
        """The loop never reaches the last file: max(i) == len(files) - 2."""
        files_found: int | None = None
        max_index = -1
        for stop in outcome.stops:
            count = stop.watches.get("files_found")
            if isinstance(count, int):
                files_found = count
            index = stop.watches.get("current_index")
            if isinstance(index, int):
                max_index = max(max_index, index)
        if files_found is None or max_index < 0:
            return False
        return max_index < files_found - 1


def make_scenario_a(base_directory: str | Path, **kwargs: Any):
    """Factory (for :func:`repro.core.workflow.compare_workflows`)."""
    def factory() -> ScenarioA:
        return ScenarioA(Path(base_directory) / "scenario_a_csv", **kwargs)

    return factory


def make_scenario_b(base_directory: str | Path, **kwargs: Any):
    def factory() -> ScenarioB:
        return ScenarioB(Path(base_directory) / "scenario_b_csv", **kwargs)

    return factory
