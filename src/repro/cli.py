"""``devudf`` — a command-line front end to the devUDF plugin.

The PyCharm plugin exposes three actions (Settings, Import UDFs, Export UDFs)
plus the Debug command; the CLI mirrors them so the whole workflow can be
driven from a terminal or a script:

    devudf demo-server --csv-dir ./csv --port 54321
    devudf configure --project ./proj --host localhost --port 54321 \
        --debug-query "SELECT mean_deviation(i) FROM numbers"
    devudf list --project ./proj
    devudf import --project ./proj mean_deviation
    devudf debug --project ./proj --breakpoint-text "distance +="
    devudf export --project ./proj mean_deviation
    devudf table1
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .core.plugin import DevUDFPlugin
from .core.project import DevUDFProject
from .core.settings import DevUDFSettings
from .core.surveys import format_table, ide_vs_text_editor_share
from .errors import ReproError


def _load_plugin(project_path: str) -> DevUDFPlugin:
    project = DevUDFProject(project_path)
    if not project.has_settings():
        raise ReproError(
            f"project {project_path!r} has no devUDF settings; run 'devudf configure' first"
        )
    return DevUDFPlugin(project)


# --------------------------------------------------------------------------- #
# sub-commands
# --------------------------------------------------------------------------- #
def cmd_configure(args: argparse.Namespace) -> int:
    project = DevUDFProject(args.project)
    settings = project.load_settings() if project.has_settings() else DevUDFSettings()
    for field_name in ("host", "port", "database", "username", "password", "debug_query"):
        value = getattr(args, field_name, None)
        if value is not None:
            setattr(settings, field_name, value)
    if args.compression is not None:
        settings.transfer.use_compression = args.compression != "none"
        if args.compression != "none":
            settings.transfer.compression_codec = args.compression
    if args.encrypt is not None:
        settings.transfer.use_encryption = args.encrypt
    if args.sample_size is not None:
        settings.transfer.use_sampling = True
        settings.transfer.sample_size = args.sample_size
    settings.validate_connection()
    settings.transfer.validate()
    project.save_settings(settings)
    print(f"settings saved: {settings.describe()}")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    plugin = _load_plugin(args.project)
    with plugin:
        names = plugin.list_server_udfs()
    print(f"{len(names)} Python UDF(s) on the server:")
    for name in names:
        marker = "*" if plugin.project.has_udf(name) else " "
        print(f"  [{marker}] {name}")
    print("(* = already imported into the project)")
    return 0


def cmd_import(args: argparse.Namespace) -> int:
    plugin = _load_plugin(args.project)
    with plugin:
        report = plugin.import_udfs(args.udfs or None)
    for udf in report.imported:
        nested = f" (+ nested: {', '.join(udf.nested_udfs)})" if udf.nested_udfs else ""
        print(f"imported {udf.name} -> {udf.relative_path}{nested}")
    if report.skipped and args.udfs:
        print(f"not imported: {', '.join(report.skipped)}")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    plugin = _load_plugin(args.project)
    with plugin:
        report = plugin.export_udfs(args.udfs or None)
    for udf in report.exported:
        suffix = " (nested)" if udf.was_nested else ""
        print(f"exported {udf.name}{suffix}")
    for name, error in report.failed.items():
        print(f"FAILED {name}: {error}", file=sys.stderr)
    return 0 if report.ok else 1


def cmd_debug(args: argparse.Namespace) -> int:
    plugin = _load_plugin(args.project)
    with plugin:
        preparation = plugin.prepare_debug(args.udf or None,
                                           debug_query=args.query or None)
        print(f"debug target: {preparation.udf_name}")
        print(f"generated file: {preparation.script_path}")
        print(f"input blob: {preparation.input_path} "
              f"({preparation.blob_stats.stored_bytes} bytes, "
              f"{preparation.inputs.rows_extracted} rows extracted)")
        for warning in preparation.warnings:
            print(f"warning: {warning}")

        breakpoints: list[int] = list(args.breakpoint or [])
        if args.breakpoint_text:
            source = preparation.script_path.read_text(encoding="utf-8")
            for number, line in enumerate(source.splitlines(), start=1):
                if args.breakpoint_text in line:
                    breakpoints.append(number)
        watches = {}
        for watch in args.watch or []:
            watches[watch] = watch

        if args.run_only:
            outcome = plugin.run_udf_locally(preparation=preparation)
            print(f"local run {'succeeded' if outcome.completed else 'FAILED'}")
            if outcome.completed:
                print(f"result: {outcome.result!r}")
            else:
                print(f"{outcome.exception_type} at line {outcome.exception_line}: "
                      f"{outcome.exception_message}")
            return 0 if outcome.completed else 1

        outcome = plugin.debug_udf(preparation=preparation, breakpoints=breakpoints,
                                   watches=watches)
        print(f"debug session finished: {len(outcome.stops)} stop(s), "
              f"{len(outcome.breakpoint_stops)} at breakpoints")
        limit = args.max_stops
        for stop in outcome.stops[:limit]:
            flag = "B" if stop.is_breakpoint else " "
            watch_text = f" watches={stop.watches}" if stop.watches else ""
            print(f"  [{flag}] line {stop.line:>4} in {stop.function}(){watch_text}")
        if len(outcome.stops) > limit:
            print(f"  ... ({len(outcome.stops) - limit} more stops)")
        if outcome.exception_type:
            print(f"exception: {outcome.exception_type} at line {outcome.exception_line}: "
                  f"{outcome.exception_message}")
        elif outcome.completed:
            print(f"result: {outcome.result!r}")
    return 0


def cmd_history(args: argparse.Namespace) -> int:
    project = DevUDFProject(args.project)
    commits = project.history()
    if not commits:
        print("no commits yet")
        return 0
    for commit in commits:
        print(f"{commit.short_id()}  {commit.message}  ({len(commit.files)} file(s))")
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    print(format_table())
    shares = ide_vs_text_editor_share()
    print()
    print(f"IDE share: {shares['IDE']}%   Text editor share: {shares['Text Editor']}%")
    return 0


def cmd_demo_server(args: argparse.Namespace) -> int:
    from .netproto.server import AsyncSocketServer, SocketServer
    from .workloads.udf_corpus import demo_server

    server, setup = demo_server(args.csv_dir,
                                buggy_mean_deviation=not args.fixed,
                                with_classifier=args.with_classifier,
                                with_extras=True,
                                db_path=args.db)
    if args.slow_query_ms is not None:
        server.slow_query_ms = (args.slow_query_ms
                                if args.slow_query_ms > 0 else None)
    server_cls = SocketServer if args.frontend == "threaded" \
        else AsyncSocketServer
    socket_server = server_cls(server, host=args.host, port=args.port)
    host, port = socket_server.start_background()
    mode = f"durable ({args.db})" if args.db else "in-memory"
    print(f"demo server listening on {host}:{port} "
          f"(user=monetdb password=monetdb database=demo, {mode}, "
          f"{args.frontend} front end)")
    print(f"CSV workload: {setup.workload.total_rows} rows in "
          f"{len(setup.workload.files)} files under {setup.csv_directory}")
    print(json.dumps({"host": host, "port": port}, indent=2))
    if args.block:
        try:
            socket_server._thread.join()  # noqa: SLF001 - CLI convenience
        except KeyboardInterrupt:
            pass
        finally:
            socket_server.stop()
            server.database.close()  # auto-checkpoint for durable databases
    else:
        socket_server.stop()
        server.database.close()
    return 0


# --------------------------------------------------------------------------- #
# argument parsing
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="devudf",
        description="devUDF: develop and debug in-database Python UDFs from your IDE",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    configure = sub.add_parser("configure", help="store connection/debug settings (Figure 2)")
    configure.add_argument("--project", required=True)
    configure.add_argument("--host")
    configure.add_argument("--port", type=int)
    configure.add_argument("--database")
    configure.add_argument("--username")
    configure.add_argument("--password")
    configure.add_argument("--debug-query", dest="debug_query")
    configure.add_argument("--compression", choices=["none", "zlib", "rle"])
    configure.add_argument("--encrypt", action=argparse.BooleanOptionalAction)
    configure.add_argument("--sample-size", type=int, dest="sample_size")
    configure.set_defaults(func=cmd_configure)

    list_parser = sub.add_parser("list", help="list Python UDFs stored on the server")
    list_parser.add_argument("--project", required=True)
    list_parser.set_defaults(func=cmd_list)

    import_parser = sub.add_parser("import", help="Import UDFs (Figure 3a)")
    import_parser.add_argument("--project", required=True)
    import_parser.add_argument("udfs", nargs="*")
    import_parser.set_defaults(func=cmd_import)

    export_parser = sub.add_parser("export", help="Export UDFs (Figure 3b)")
    export_parser.add_argument("--project", required=True)
    export_parser.add_argument("udfs", nargs="*")
    export_parser.set_defaults(func=cmd_export)

    debug_parser = sub.add_parser("debug", help="debug a UDF locally")
    debug_parser.add_argument("--project", required=True)
    debug_parser.add_argument("--udf")
    debug_parser.add_argument("--query")
    debug_parser.add_argument("--breakpoint", type=int, action="append")
    debug_parser.add_argument("--breakpoint-text", dest="breakpoint_text")
    debug_parser.add_argument("--watch", action="append")
    debug_parser.add_argument("--run-only", action="store_true", dest="run_only")
    debug_parser.add_argument("--max-stops", type=int, default=20, dest="max_stops")
    debug_parser.set_defaults(func=cmd_debug)

    history_parser = sub.add_parser("history", help="show the project's UDF version history")
    history_parser.add_argument("--project", required=True)
    history_parser.set_defaults(func=cmd_history)

    table1_parser = sub.add_parser("table1", help="print Table 1 (IDE popularity)")
    table1_parser.set_defaults(func=cmd_table1)

    demo_parser = sub.add_parser("demo-server", help="start the demo database server")
    demo_parser.add_argument("--csv-dir", required=True, dest="csv_dir")
    demo_parser.add_argument("--host", default="127.0.0.1")
    demo_parser.add_argument("--port", type=int, default=0)
    demo_parser.add_argument("--db", default=None, metavar="PATH",
                             help="durable single-file database path "
                                  "(default: in-memory)")
    demo_parser.add_argument("--fixed", action="store_true",
                             help="register the corrected mean_deviation instead of the buggy one")
    demo_parser.add_argument("--with-classifier", action="store_true", dest="with_classifier")
    demo_parser.add_argument("--block", action="store_true",
                             help="keep serving until interrupted")
    demo_parser.add_argument("--slow-query-ms", type=float, default=None,
                             dest="slow_query_ms", metavar="MILLISECONDS",
                             help="log queries slower than this to the "
                                  "server's bounded slow-query ring "
                                  "(0 disables; default: server's 500)")
    frontend = demo_parser.add_mutually_exclusive_group()
    frontend.add_argument("--async", action="store_const", dest="frontend",
                          const="async",
                          help="selector event-loop front end (default)")
    frontend.add_argument("--threaded", action="store_const", dest="frontend",
                          const="threaded",
                          help="thread-per-connection front end")
    demo_parser.set_defaults(func=cmd_demo_server, frontend="async")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
