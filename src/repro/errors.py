"""Shared exception hierarchy for the devUDF reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers (the CLI, the IDE model, the workflow simulators) can distinguish
"expected" failures (bad SQL, unknown UDF, wrong password) from genuine bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""

    #: Whether retrying the same operation may succeed (server saturation,
    #: dropped connections).  Clients consult this — together with statement
    #: idempotence — before automatically retrying.
    retryable = False


# --------------------------------------------------------------------------- #
# SQL engine errors
# --------------------------------------------------------------------------- #
class SQLError(ReproError):
    """Base class for errors raised by the embedded SQL engine."""


class ParseError(SQLError):
    """The SQL text could not be tokenised or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class CatalogError(SQLError):
    """A schema object (table, function, column) is missing or duplicated."""


class ExecutionError(SQLError):
    """A statement failed during execution."""


class TypeMismatchError(ExecutionError):
    """A value could not be coerced to the declared SQL type."""


class PersistenceError(SQLError):
    """The on-disk database file or write-ahead log is invalid or corrupt."""


class CorruptionError(PersistenceError):
    """A checksum mismatch pinned to a location inside a database file.

    Raised when a crc32 check fails (or a quarantined row range is touched):
    ``table``, ``row_range`` (a ``(start, stop)`` half-open interval) and the
    file ``offset`` locate the damage precisely so an operator — or the
    ``salvage=True`` quarantine machinery — can contain it to one segment
    instead of discarding the whole database.
    """

    def __init__(self, message: str, *, table: str | None = None,
                 row_range: tuple[int, int] | None = None,
                 offset: int | None = None) -> None:
        super().__init__(message)
        self.table = table
        self.row_range = row_range
        self.offset = offset


class QueryAbortedError(ExecutionError):
    """A statement was stopped before completing (timeout or cancellation)."""


class QueryCancelledError(QueryAbortedError):
    """The statement was cancelled through its :class:`QueryContext`."""


class QueryTimeoutError(QueryAbortedError):
    """The statement exceeded its deadline and was aborted."""


class UDFError(ExecutionError):
    """A Python UDF raised an exception or returned an invalid result."""

    def __init__(self, function_name: str, message: str,
                 original: BaseException | None = None) -> None:
        super().__init__(f"UDF {function_name!r}: {message}")
        self.function_name = function_name
        self.original = original


# --------------------------------------------------------------------------- #
# Client protocol errors
# --------------------------------------------------------------------------- #
class ProtocolError(ReproError):
    """Base class for wire-protocol errors."""


class AuthenticationError(ProtocolError):
    """Login was rejected (unknown user or wrong password)."""


class ConnectionClosedError(ProtocolError):
    """An operation was attempted on a closed connection."""


class WireFormatError(ProtocolError):
    """A message frame could not be decoded."""


class DecryptionError(ProtocolError):
    """An encrypted payload failed integrity verification (wrong key?)."""


class ConnectionLostError(ProtocolError):
    """The peer went away mid-conversation (reset, EOF, or send timeout).

    Distinct from :class:`ConnectionClosedError` (local misuse of an already
    closed connection): losing the peer is an environmental fault, so
    idempotent statements may be retried on a fresh connection.
    """

    retryable = True


class ServerBusyError(ProtocolError):
    """The server refused the query: saturated or shutting down.

    Carries the structured wire error ``code`` (``saturated`` /
    ``shutting_down`` / ``session_limit``) so clients can distinguish
    transient overload from a drain in progress.
    """

    retryable = True

    def __init__(self, message: str, *, code: str = "saturated") -> None:
        super().__init__(message)
        self.code = code


# --------------------------------------------------------------------------- #
# devUDF plugin errors
# --------------------------------------------------------------------------- #
class DevUDFError(ReproError):
    """Base class for errors raised by the devUDF core."""


class SettingsError(DevUDFError):
    """The plugin settings are incomplete or inconsistent."""


class TransformError(DevUDFError):
    """A UDF body could not be transformed to/from a runnable file."""


class ImportUDFError(DevUDFError):
    """Importing UDFs from the database failed."""


class ExportUDFError(DevUDFError):
    """Exporting UDFs back to the database failed."""


class ExtractionError(DevUDFError):
    """The debug query could not be rewritten or the input data extracted."""


class DebugSessionError(DevUDFError):
    """The local debug session could not be started or driven."""


class VCSError(DevUDFError):
    """A version-control operation failed."""


class ProjectError(DevUDFError):
    """An IDE project operation failed."""
