"""JSON-lines structured event log with sampled emission.

One :class:`EventLog` serialises events — small flat dicts with an
``event`` kind plus caller fields — as one JSON object per line, either to
a caller-supplied stream or to a file opened lazily on first emit.  A
``sample_every=N`` log keeps every Nth event of each kind; callers pass
``force=True`` for events that must never be dropped (slow queries,
errors).  All methods are thread-safe.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, IO

__all__ = ["EventLog"]


class EventLog:
    """Append-only JSON-lines event sink."""

    def __init__(self, target: "str | IO[str] | None" = None, *,
                 sample_every: int = 1) -> None:
        self._path = target if isinstance(target, str) else None
        self._stream: IO[str] | None = None if isinstance(target, str) else target
        self._sample_every = max(1, int(sample_every))
        self._lock = threading.Lock()
        self._seen: dict[str, int] = {}
        self.events_emitted = 0
        self.events_sampled_out = 0

    def _ensure_stream(self) -> "IO[str] | None":
        if self._stream is None and self._path is not None:
            self._stream = open(self._path, "a", encoding="utf-8")
        return self._stream

    def emit(self, event: str, *, force: bool = False, **fields: Any) -> bool:
        """Emit one event; returns whether it was written (vs sampled out)."""
        with self._lock:
            seen = self._seen.get(event, 0)
            self._seen[event] = seen + 1
            if not force and seen % self._sample_every != 0:
                self.events_sampled_out += 1
                return False
            stream = self._ensure_stream()
            if stream is None:
                return False
            record: dict[str, Any] = {"ts": round(time.time(), 6),
                                      "event": event}
            record.update(fields)
            stream.write(json.dumps(record, default=str) + "\n")
            stream.flush()
            self.events_emitted += 1
            return True

    def close(self) -> None:
        with self._lock:
            stream, self._stream = self._stream, None
            if stream is not None and self._path is not None:
                stream.close()  # only close streams we opened ourselves
