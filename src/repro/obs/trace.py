"""Per-query trace spans: a tree of named monotonic time intervals.

A query gets one root :class:`TraceSpan` (created by whichever front end
accepted it) plus a 16-hex-char trace id that travels with the
``QueryContext`` through the engine and back to the client in the result
header.  Layers attach children for their phase — ``parse``, ``plan``,
``execute``, ``encode`` — either with the context-manager protocol or, on
hot paths that already hold two ``perf_counter`` readings, with
:meth:`TraceSpan.add`, which records a finished child without extra clock
calls.

Spans are built by **one thread at a time** (the thread driving the query);
per-morsel worker timings are aggregated by the plan instrumentation in
:mod:`repro.sqldb.plan`, not recorded as spans, so no locking is needed
here.  Recording a span costs two ``perf_counter()`` calls and one list
append — cheap enough to leave on for every query, which is what makes the
"slow queries always carry a full breakdown" policy possible: by the time a
query turns out to be slow, its spans already exist.
"""

from __future__ import annotations

import time
import uuid
from typing import Any, Iterator

__all__ = ["TraceSpan", "new_trace_id"]


def new_trace_id() -> str:
    """A 16-hex-char random trace id (64 bits — plenty for correlation)."""
    return uuid.uuid4().hex[:16]


class TraceSpan:
    """One named interval on the monotonic clock, with child spans."""

    __slots__ = ("name", "start", "end", "children", "attrs")

    def __init__(self, name: str, *, start: float | None = None,
                 attrs: dict[str, Any] | None = None) -> None:
        self.name = name
        self.start = time.perf_counter() if start is None else start
        self.end: float | None = None
        self.children: list[TraceSpan] = []
        self.attrs: dict[str, Any] | None = attrs

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def child(self, name: str) -> "TraceSpan":
        """Start a child span now and return it (caller must finish it)."""
        span = TraceSpan(name)
        self.children.append(span)
        return span

    def add(self, name: str, start: float, end: float) -> "TraceSpan":
        """Attach an already-measured child (both ends are
        ``perf_counter`` readings the caller took anyway)."""
        span = TraceSpan(name, start=start)
        span.end = end
        self.children.append(span)
        return span

    def finish(self) -> "TraceSpan":
        if self.end is None:
            self.end = time.perf_counter()
        return self

    def __enter__(self) -> "TraceSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.finish()

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    @property
    def duration_us(self) -> int:
        """Elapsed µs; an unfinished span reads as elapsed-so-far."""
        end = time.perf_counter() if self.end is None else self.end
        return max(0, int((end - self.start) * 1e6))

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "TraceSpan"]]:
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def breakdown(self) -> list[dict[str, Any]]:
        """Flattened span list for logs / the slow-query ring buffer."""
        return [{"span": span.name, "depth": depth, "us": span.duration_us}
                for depth, span in self.walk()]

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"span": self.name, "us": self.duration_us}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceSpan({self.name!r}, us={self.duration_us})"
