"""``repro.obs`` — zero-dependency observability primitives.

Three small, threading-safe building blocks shared by every layer of the
engine (sqldb, persist, netproto):

* :mod:`~repro.obs.metrics` — a :class:`MetricsRegistry` of named counters,
  gauges and log-bucketed latency :class:`Histogram`\\ s.  Snapshots are flat
  ``{name: int}`` dicts, so they merge directly into ``SHOW STATS`` and the
  wire ``stats`` message.
* :mod:`~repro.obs.trace` — a per-query :class:`TraceSpan` tree with
  monotonic (``perf_counter``) timings and 16-hex-char trace ids, used for
  the parse/plan/execute/encode breakdown behind the slow-query log.
* :mod:`~repro.obs.events` — a JSON-lines structured :class:`EventLog`
  (sampled emission) for offline analysis.

The package has **no third-party dependencies** and importing it never
touches the filesystem; an :class:`EventLog` opens its file lazily on first
emit.
"""

from __future__ import annotations

from .events import EventLog
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, NULL_REGISTRY
from .trace import TraceSpan, new_trace_id

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "TraceSpan",
    "new_trace_id",
]
