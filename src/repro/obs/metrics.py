"""Thread-safe metrics: counters, gauges, log-bucketed latency histograms.

Design notes
------------

* **Names are the namespace.**  A metric's full dotted name (for example
  ``db.query_us`` or ``persist.wal_fsync_us``) is chosen by the caller, so a
  registry snapshot is a flat ``{name: int}`` dict that merges directly into
  ``Database.stats_snapshot()`` (and from there into ``SHOW STATS`` and the
  wire ``stats`` message) without any renaming layer.
* **Histograms are log-bucketed.**  Observations are recorded in
  microseconds into geometric buckets (factor ``sqrt(2)``, ~41 % worst-case
  bucket width) covering 1 µs .. ~18 minutes; quantiles interpolate linearly
  inside the winning bucket.  That bounds relative quantile error to about
  half a bucket while keeping ``observe`` O(log n_buckets) and allocation
  free.
* **One lock per metric.**  Observations from the morsel pool, the server
  worker pool and the selector loop race against snapshot readers; each
  metric guards its own few fields with a private lock, so uncontended
  updates stay cheap and a snapshot never blocks the whole registry.
* **A registry can be disabled.**  ``MetricsRegistry(enabled=False)`` turns
  every ``inc``/``set``/``observe`` into an early return — this is how the
  ``obs_overhead`` benchmark measures the instrumented-vs-bare delta and how
  ``Database(observability=False)`` opts out.  :data:`NULL_REGISTRY` is a
  shared disabled registry for components constructed without one.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "_lock", "_value", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot(self) -> dict[str, int]:
        return {self.name: self.value}

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A value that goes up and down (pool occupancy, queue depth, ...)."""

    __slots__ = ("name", "_lock", "_value", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value: int) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = int(value)

    def adjust(self, delta: int) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += delta

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot(self) -> dict[str, int]:
        return {self.name: self.value}

    def reset(self) -> None:
        with self._lock:
            self._value = 0


def _geometric_bounds() -> tuple[float, ...]:
    """Bucket upper bounds in µs: 1 µs · sqrt(2)^i up to ~2^30 µs (~18 min)."""
    bounds: list[float] = []
    value = 1.0
    factor = 2.0 ** 0.5
    while value <= 2.0 ** 30:
        bounds.append(value)
        value *= factor
    return tuple(bounds)


_BUCKET_BOUNDS = _geometric_bounds()
_OVERFLOW = len(_BUCKET_BOUNDS)  # index of the catch-all top bucket


class Histogram:
    """Log-bucketed latency histogram; observations are in **seconds**,
    exported quantiles in integer **microseconds**."""

    __slots__ = ("name", "_lock", "_counts", "_count", "_sum_us", "_max_us",
                 "_registry")

    #: Quantiles exported by :meth:`snapshot`, as (suffix, fraction).
    QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry
        self._lock = threading.Lock()
        self._counts = [0] * (_OVERFLOW + 1)
        self._count = 0
        self._sum_us = 0.0
        self._max_us = 0.0

    def observe(self, seconds: float) -> None:
        if not self._registry.enabled:
            return
        us = seconds * 1e6
        if us < 0.0:
            us = 0.0
        index = bisect_left(_BUCKET_BOUNDS, us)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum_us += us
            if us > self._max_us:
                self._max_us = us

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum_us(self) -> float:
        with self._lock:
            return self._sum_us

    def quantile(self, q: float) -> float:
        """The ``q``-quantile in µs (linear interpolation inside the bucket)."""
        with self._lock:
            return self._quantile_locked(q, self._counts, self._count,
                                         self._max_us)

    @staticmethod
    def _quantile_locked(q: float, counts: list[int], total: int,
                         max_us: float) -> float:
        if total <= 0:
            return 0.0
        q = min(1.0, max(0.0, q))
        target = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                lower = _BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
                if index >= _OVERFLOW:
                    upper = max(max_us, _BUCKET_BOUNDS[-1])
                else:
                    upper = _BUCKET_BOUNDS[index]
                within = (target - previous) / bucket_count
                return lower + (upper - lower) * within
        return max_us  # pragma: no cover - unreachable (cumulative == total)

    def snapshot(self) -> dict[str, int]:
        """``{name_count, name_sum_us, name_p50, name_p95, name_p99}``."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            sum_us = self._sum_us
            max_us = self._max_us
        out = {
            f"{self.name}_count": total,
            f"{self.name}_sum_us": int(sum_us),
        }
        for suffix, q in self.QUANTILES:
            out[f"{self.name}_{suffix}"] = int(
                self._quantile_locked(q, counts, total, max_us))
        return out

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (_OVERFLOW + 1)
            self._count = 0
            self._sum_us = 0.0
            self._max_us = 0.0


class MetricsRegistry:
    """Named metrics with get-or-create semantics and a flat int snapshot."""

    def __init__(self, *, enabled: bool = True) -> None:
        #: Mutable switch read by every metric on the hot path.  Flipping it
        #: enables/disables recording without rebuilding metric objects.
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, cls):  # type: ignore[no-untyped-def]
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, self)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}")
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def metrics(self) -> Iterable[Counter | Gauge | Histogram]:
        with self._lock:
            return list(self._metrics.values())

    def snapshot(self) -> dict[str, int]:
        """Flat ``{name: int}`` over every registered metric (stable names)."""
        out: dict[str, int] = {}
        for metric in self.metrics():
            out.update(metric.snapshot())
        return out

    def reset(self) -> None:
        for metric in self.metrics():
            metric.reset()


#: Shared always-disabled registry: a safe default for components
#: (e.g. a standalone ``WriteAheadLog``) constructed without one.
NULL_REGISTRY = MetricsRegistry(enabled=False)
