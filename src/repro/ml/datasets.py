"""Synthetic classification datasets for the paper's classifier example.

The paper does not specify the training data behind ``train_rnforest``; the
reproduction generates Gaussian-blob classification problems (the standard
substitute) so that the nested-UDF experiment (Listing 3) has a training and a
testing set to store in the database.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ClassificationDataset:
    """Feature matrix plus labels, with helpers to flatten into SQL columns."""

    data: np.ndarray
    labels: np.ndarray
    n_classes: int

    @property
    def n_rows(self) -> int:
        return len(self.data)

    @property
    def n_features(self) -> int:
        return self.data.shape[1]

    def feature_columns(self) -> dict[str, np.ndarray]:
        """One SQL column per feature: f0, f1, ... plus the label column."""
        columns = {f"f{i}": self.data[:, i] for i in range(self.n_features)}
        columns["label"] = self.labels
        return columns


def make_blobs(n_rows: int = 200, n_features: int = 2, n_classes: int = 2, *,
               separation: float = 3.0, noise: float = 1.0,
               seed: int | None = 0) -> ClassificationDataset:
    """Gaussian blobs, one per class, arranged on a circle."""
    if n_rows < n_classes:
        raise ValueError("need at least one row per class")
    rng = np.random.default_rng(seed)
    angles = np.linspace(0.0, 2.0 * np.pi, n_classes, endpoint=False)
    centers = np.zeros((n_classes, n_features))
    centers[:, 0] = separation * np.cos(angles)
    if n_features > 1:
        centers[:, 1] = separation * np.sin(angles)
    rows_per_class = [n_rows // n_classes] * n_classes
    for index in range(n_rows % n_classes):
        rows_per_class[index] += 1
    data_parts = []
    label_parts = []
    for label, count in enumerate(rows_per_class):
        points = rng.normal(loc=centers[label], scale=noise, size=(count, n_features))
        data_parts.append(points)
        label_parts.append(np.full(count, label))
    data = np.vstack(data_parts)
    labels = np.concatenate(label_parts)
    order = rng.permutation(len(data))
    return ClassificationDataset(data=data[order], labels=labels[order].astype(int),
                                 n_classes=n_classes)


def make_noisy_parity(n_rows: int = 200, *, flip_fraction: float = 0.05,
                      seed: int | None = 0) -> ClassificationDataset:
    """A harder dataset: XOR-like parity of two thresholded features."""
    rng = np.random.default_rng(seed)
    data = rng.uniform(-1.0, 1.0, size=(n_rows, 2))
    labels = ((data[:, 0] > 0) ^ (data[:, 1] > 0)).astype(int)
    flips = rng.random(n_rows) < flip_fraction
    labels = labels ^ flips.astype(int)
    return ClassificationDataset(data=data, labels=labels, n_classes=2)
