"""A from-scratch CART decision-tree classifier.

The paper's running example (Listings 1 and 3) trains an sklearn
``RandomForestClassifier`` inside a UDF, pickles the fitted model into the
result table, and evaluates it from a nested UDF.  scikit-learn is not
available offline, so :mod:`repro.ml` provides a small, picklable classifier
with the same ``fit`` / ``predict`` surface; the devUDF workflow only needs a
model object that can round-trip through ``pickle`` and be scored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np


@dataclass
class TreeNode:
    """A node of the decision tree."""

    feature: int | None = None
    threshold: float | None = None
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    prediction: Any = None
    samples: int = 0
    impurity: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


def gini_impurity(labels: np.ndarray) -> float:
    """Gini impurity of a label vector."""
    if len(labels) == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    proportions = counts / counts.sum()
    return float(1.0 - np.sum(proportions ** 2))


def _majority(labels: np.ndarray) -> Any:
    values, counts = np.unique(labels, return_counts=True)
    return values[int(np.argmax(counts))]


@dataclass
class DecisionTreeClassifier:
    """CART classifier with Gini splits.

    Parameters mirror the sklearn names the paper's UDF code would pass.
    """

    max_depth: int | None = None
    min_samples_split: int = 2
    max_features: int | None = None
    random_state: int | None = None
    root: TreeNode | None = field(default=None, repr=False)
    n_features_: int = 0
    classes_: list[Any] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #
    def fit(self, data: Sequence[Sequence[float]], labels: Sequence[Any]
            ) -> "DecisionTreeClassifier":
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(-1, 1)
        target = np.asarray(labels)
        if len(matrix) != len(target):
            raise ValueError(
                f"data has {len(matrix)} rows but labels has {len(target)}"
            )
        if len(matrix) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.n_features_ = matrix.shape[1]
        self.classes_ = sorted(np.unique(target).tolist())
        rng = np.random.default_rng(self.random_state)
        self.root = self._build(matrix, target, depth=0, rng=rng)
        return self

    def _build(self, matrix: np.ndarray, target: np.ndarray, *, depth: int,
               rng: np.random.Generator) -> TreeNode:
        node = TreeNode(samples=len(target), impurity=gini_impurity(target),
                        prediction=_majority(target))
        if (
            node.impurity == 0.0
            or len(target) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node
        split = self._best_split(matrix, target, rng)
        if split is None:
            return node
        feature, threshold = split
        mask = matrix[:, feature] <= threshold
        if mask.all() or (~mask).all():
            return node
        node.feature = feature
        node.threshold = float(threshold)
        node.left = self._build(matrix[mask], target[mask], depth=depth + 1, rng=rng)
        node.right = self._build(matrix[~mask], target[~mask], depth=depth + 1, rng=rng)
        return node

    def _best_split(self, matrix: np.ndarray, target: np.ndarray,
                    rng: np.random.Generator) -> tuple[int, float] | None:
        n_features = matrix.shape[1]
        if self.max_features is not None and self.max_features < n_features:
            features = rng.choice(n_features, size=self.max_features, replace=False)
        else:
            features = np.arange(n_features)
        best: tuple[int, float] | None = None
        best_score = float("inf")
        parent_size = len(target)
        for feature in features:
            column = matrix[:, feature]
            candidates = np.unique(column)
            if len(candidates) <= 1:
                continue
            midpoints = (candidates[:-1] + candidates[1:]) / 2.0
            for threshold in midpoints:
                mask = column <= threshold
                left, right = target[mask], target[~mask]
                if len(left) == 0 or len(right) == 0:
                    continue
                score = (
                    len(left) / parent_size * gini_impurity(left)
                    + len(right) / parent_size * gini_impurity(right)
                )
                if score < best_score:
                    best_score = score
                    best = (int(feature), float(threshold))
        return best

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #
    def predict(self, data: Sequence[Sequence[float]]) -> np.ndarray:
        if self.root is None:
            raise ValueError("classifier is not fitted")
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(-1, 1)
        if matrix.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {matrix.shape[1]}"
            )
        return np.array([self._predict_row(row) for row in matrix])

    def _predict_row(self, row: np.ndarray) -> Any:
        node = self.root
        assert node is not None
        while not node.is_leaf:
            assert node.feature is not None and node.threshold is not None
            node = node.left if row[node.feature] <= node.threshold else node.right
            assert node is not None
        return node.prediction

    def score(self, data: Sequence[Sequence[float]], labels: Sequence[Any]) -> float:
        predictions = self.predict(data)
        target = np.asarray(labels)
        return float(np.mean(predictions == target))

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def depth(self) -> int:
        def walk(node: TreeNode | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root)

    def node_count(self) -> int:
        def walk(node: TreeNode | None) -> int:
            if node is None:
                return 0
            return 1 + walk(node.left) + walk(node.right)

        return walk(self.root)
