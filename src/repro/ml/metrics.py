"""Classification metrics used by the nested-UDF example and its tests."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np


def accuracy_score(true_labels: Sequence[Any], predicted: Sequence[Any]) -> float:
    """Fraction of predictions that match the true labels."""
    truth = np.asarray(true_labels)
    guess = np.asarray(predicted)
    if len(truth) != len(guess):
        raise ValueError("length mismatch between labels and predictions")
    if len(truth) == 0:
        raise ValueError("cannot compute accuracy of zero predictions")
    return float(np.mean(truth == guess))


def correct_predictions(true_labels: Sequence[Any], predicted: Sequence[Any]) -> int:
    """Number of correct predictions (the quantity Listing 3 maximises)."""
    truth = np.asarray(true_labels)
    guess = np.asarray(predicted)
    if len(truth) != len(guess):
        raise ValueError("length mismatch between labels and predictions")
    return int(np.sum(truth == guess))


def confusion_matrix(true_labels: Sequence[Any], predicted: Sequence[Any]
                     ) -> tuple[list[Any], np.ndarray]:
    """Confusion matrix; returns (ordered class labels, matrix)."""
    truth = np.asarray(true_labels)
    guess = np.asarray(predicted)
    classes = sorted(set(truth.tolist()) | set(guess.tolist()))
    index = {cls: i for i, cls in enumerate(classes)}
    matrix = np.zeros((len(classes), len(classes)), dtype=int)
    for actual, got in zip(truth.tolist(), guess.tolist()):
        matrix[index[actual], index[got]] += 1
    return classes, matrix


def train_test_split(data: Sequence[Sequence[float]], labels: Sequence[Any], *,
                     test_fraction: float = 0.25, seed: int | None = None
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split rows into train and test sets (uniform, without replacement)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    matrix = np.asarray(data, dtype=float)
    if matrix.ndim == 1:
        matrix = matrix.reshape(-1, 1)
    target = np.asarray(labels)
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(matrix))
    cut = max(1, int(round(len(matrix) * test_fraction)))
    test_idx, train_idx = order[:cut], order[cut:]
    return matrix[train_idx], target[train_idx], matrix[test_idx], target[test_idx]
