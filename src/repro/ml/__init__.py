"""``repro.ml`` — a small, picklable ML library (the scikit-learn stand-in).

The paper's example UDFs train an sklearn ``RandomForestClassifier`` inside
the database and pickle the fitted model into the result (Listings 1 and 3).
This package provides a from-scratch decision tree and random forest with the
same ``fit`` / ``predict`` / pickle behaviour so those UDFs run unmodified in
spirit.
"""

from .datasets import ClassificationDataset, make_blobs, make_noisy_parity
from .forest import RandomForestClassifier
from .metrics import accuracy_score, confusion_matrix, correct_predictions, train_test_split
from .tree import DecisionTreeClassifier, TreeNode, gini_impurity

__all__ = [
    "ClassificationDataset",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "TreeNode",
    "accuracy_score",
    "confusion_matrix",
    "correct_predictions",
    "gini_impurity",
    "make_blobs",
    "make_noisy_parity",
    "train_test_split",
]
