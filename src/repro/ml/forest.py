"""A from-scratch random-forest classifier (the sklearn stand-in).

``RandomForestClassifier(n_estimators)`` is exactly the constructor call the
paper's ``train_rnforest`` UDF makes (Listing 1); the nested UDF of Listing 3
then sweeps ``n_estimators`` to pick the best classifier.  This implementation
keeps that interface: bootstrap-sampled CART trees with feature subsampling
and majority voting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from .tree import DecisionTreeClassifier


@dataclass
class RandomForestClassifier:
    """Bagged CART trees with majority voting."""

    n_estimators: int = 10
    max_depth: int | None = None
    min_samples_split: int = 2
    max_features: str | int | None = "sqrt"
    random_state: int | None = None
    estimators_: list[DecisionTreeClassifier] = field(default_factory=list, repr=False)
    classes_: list[Any] = field(default_factory=list)
    n_features_: int = 0

    def __post_init__(self) -> None:
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #
    def _resolve_max_features(self, n_features: int) -> int | None:
        if self.max_features is None:
            return None
        if isinstance(self.max_features, int):
            return max(1, min(self.max_features, n_features))
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if self.max_features == "log2":
            return max(1, int(np.log2(n_features))) if n_features > 1 else 1
        raise ValueError(f"unsupported max_features {self.max_features!r}")

    def fit(self, data: Sequence[Sequence[float]], labels: Sequence[Any]
            ) -> "RandomForestClassifier":
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(-1, 1)
        target = np.asarray(labels)
        if len(matrix) == 0:
            raise ValueError("cannot fit on an empty dataset")
        if len(matrix) != len(target):
            raise ValueError("data and labels length mismatch")
        self.n_features_ = matrix.shape[1]
        self.classes_ = sorted(np.unique(target).tolist())
        max_features = self._resolve_max_features(self.n_features_)
        rng = np.random.default_rng(self.random_state)
        self.estimators_ = []
        n_rows = len(matrix)
        for index in range(self.n_estimators):
            bootstrap = rng.integers(0, n_rows, size=n_rows)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=max_features,
                random_state=None if self.random_state is None
                else self.random_state + index,
            )
            tree.fit(matrix[bootstrap], target[bootstrap])
            self.estimators_.append(tree)
        return self

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #
    def predict(self, data: Sequence[Sequence[float]]) -> np.ndarray:
        if not self.estimators_:
            raise ValueError("classifier is not fitted")
        votes = np.stack([tree.predict(data) for tree in self.estimators_])
        predictions = []
        for column in votes.T:
            values, counts = np.unique(column, return_counts=True)
            predictions.append(values[int(np.argmax(counts))])
        return np.array(predictions)

    def predict_proba(self, data: Sequence[Sequence[float]]) -> np.ndarray:
        """Per-class vote fractions (rows sum to 1)."""
        if not self.estimators_:
            raise ValueError("classifier is not fitted")
        votes = np.stack([tree.predict(data) for tree in self.estimators_])
        class_index = {cls: i for i, cls in enumerate(self.classes_)}
        proba = np.zeros((votes.shape[1], len(self.classes_)))
        for tree_votes in votes:
            for row, vote in enumerate(tree_votes):
                key = vote.item() if hasattr(vote, "item") else vote
                proba[row, class_index[key]] += 1
        return proba / len(self.estimators_)

    def score(self, data: Sequence[Sequence[float]], labels: Sequence[Any]) -> float:
        predictions = self.predict(data)
        target = np.asarray(labels)
        return float(np.mean(predictions == target))
