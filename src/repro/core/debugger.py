"""The interactive debugger (the paper's central IDE feature).

"IDEs are also attractive because they facilitate the usage of sophisticated
interactive debugging techniques, such as stepping through the code line by
line and pausing code execution.  However, these techniques cannot be used in
conjunction with UDFs because the RDBMS must be in control of the code flow
while the UDF is being executed." (§1)

Because devUDF executes the transformed UDF *locally*, the IDE's debugger can
attach.  The reproduction implements a scriptable interactive debugger on top
of :mod:`bdb` (the machinery PyCharm's own pydevd builds on): breakpoints,
step over / into / out, pause-and-inspect locals, watch expressions, and a
recorded trace — everything the demo scenarios need to locate their bugs.
"""

from __future__ import annotations

import bdb
import contextlib
import io
import os
from dataclasses import dataclass, field
from pathlib import Path
from types import FrameType
from typing import Any, Callable

from ..errors import DebugSessionError

#: Commands a controller may issue at a stop (subset of the pydevd/PyCharm set).
STEP_INTO = "step"
STEP_OVER = "next"
STEP_OUT = "return"
CONTINUE = "continue"
QUIT = "quit"

_VALID_COMMANDS = {STEP_INTO, STEP_OVER, STEP_OUT, CONTINUE, QUIT}


@dataclass(frozen=True)
class Breakpoint:
    """A source breakpoint (file is implied: the debugged script)."""

    line: int
    condition: str | None = None


@dataclass
class StopPoint:
    """One pause of the debugger: where we are and what is visible."""

    index: int
    line: int
    function: str
    event: str  # "line" | "call" | "return" | "exception"
    locals: dict[str, Any] = field(default_factory=dict)
    watches: dict[str, Any] = field(default_factory=dict)
    is_breakpoint: bool = False

    def local(self, name: str, default: Any = None) -> Any:
        return self.locals.get(name, default)


@dataclass
class DebugOutcome:
    """The result of one debug session."""

    completed: bool
    result: Any = None
    stops: list[StopPoint] = field(default_factory=list)
    lines_executed: int = 0
    exception_type: str | None = None
    exception_message: str | None = None
    exception_line: int | None = None
    stdout: str = ""
    quit_requested: bool = False

    @property
    def breakpoint_stops(self) -> list[StopPoint]:
        return [stop for stop in self.stops if stop.is_breakpoint]

    def stops_at_line(self, line: int) -> list[StopPoint]:
        return [stop for stop in self.stops if stop.line == line]


#: A controller decides what to do at each stop.  It receives the stop and the
#: session and returns one of the command strings above.
Controller = Callable[[StopPoint, "DebugSession"], str]


def run_to_completion_controller(stop: StopPoint, session: "DebugSession") -> str:
    """Default controller: continue after every stop (breakpoints only pause)."""
    return CONTINUE


class ScriptedController:
    """Replays a fixed list of commands, then continues."""

    def __init__(self, commands: list[str]) -> None:
        unknown = [c for c in commands if c not in _VALID_COMMANDS]
        if unknown:
            raise DebugSessionError(f"unknown debugger commands: {unknown}")
        self.commands = list(commands)
        self._position = 0

    def __call__(self, stop: StopPoint, session: "DebugSession") -> str:
        if self._position < len(self.commands):
            command = self.commands[self._position]
            self._position += 1
            return command
        return CONTINUE


class StepUntilController:
    """Keeps stepping while ``predicate(stop)`` is False; stops the session once True.

    This is the programmatic equivalent of a developer stepping through the
    loop in Scenario A until they see the variable go wrong.
    """

    def __init__(self, predicate: Callable[[StopPoint], bool], *,
                 step_command: str = STEP_OVER, max_steps: int = 100000) -> None:
        self.predicate = predicate
        self.step_command = step_command
        self.max_steps = max_steps
        self.steps_taken = 0
        self.matched_stop: StopPoint | None = None

    def __call__(self, stop: StopPoint, session: "DebugSession") -> str:
        if self.predicate(stop):
            self.matched_stop = stop
            return QUIT
        self.steps_taken += 1
        if self.steps_taken >= self.max_steps:
            return QUIT
        return self.step_command


class _Bdb(bdb.Bdb):
    """bdb engine wired to a :class:`DebugSession`."""

    def __init__(self, session: "DebugSession") -> None:
        super().__init__()
        self.session = session

    def user_line(self, frame: FrameType) -> None:
        if not self.session._in_target(frame):
            return
        is_breakpoint = bool(self.break_here(frame))
        command = self.session._record_stop(frame, "line", is_breakpoint=is_breakpoint)
        self._apply(command, frame)

    def user_return(self, frame: FrameType, return_value: Any) -> None:
        if not self.session._in_target(frame):
            return
        if not self.session._stepping:
            return
        command = self.session._record_stop(frame, "return")
        self._apply(command, frame)

    def user_exception(self, frame: FrameType, exc_info: tuple) -> None:
        if not self.session._in_target(frame):
            return
        self.session._record_exception(frame, exc_info)

    def _apply(self, command: str, frame: FrameType) -> None:
        if command == STEP_INTO:
            self.session._stepping = True
            self.set_step()
        elif command == STEP_OVER:
            self.session._stepping = True
            self.set_next(frame)
        elif command == STEP_OUT:
            self.session._stepping = True
            self.set_return(frame)
        elif command == QUIT:
            self.session._quit_requested = True
            self.set_quit()
        else:  # CONTINUE
            self.session._stepping = False
            self.set_continue()


class DebugSession:
    """A scriptable interactive debug session over one generated UDF file."""

    RESULT_VARIABLE = "__devudf_result__"
    #: Local variables are snapshotted at each stop; values larger than this
    #: (in repr length) are replaced by a summary to keep traces small.
    MAX_VALUE_REPR = 2000

    def __init__(self, script_path: str | Path, *,
                 breakpoints: list[Breakpoint | int] | None = None,
                 controller: Controller | None = None,
                 watches: dict[str, str] | None = None,
                 working_directory: str | Path | None = None,
                 max_stops: int = 200000) -> None:
        self.script_path = Path(script_path)
        if not self.script_path.exists():
            raise DebugSessionError(f"script {self.script_path} does not exist")
        self.breakpoints = [
            bp if isinstance(bp, Breakpoint) else Breakpoint(line=int(bp))
            for bp in (breakpoints or [])
        ]
        self.controller: Controller = controller or run_to_completion_controller
        self.watches = dict(watches or {})
        self.working_directory = Path(working_directory) if working_directory \
            else self.script_path.parent
        self.max_stops = max_stops

        self._stops: list[StopPoint] = []
        self._stepping = False
        self._quit_requested = False
        self._lines_executed = 0
        self._exception: tuple[str, str, int | None] | None = None
        self._canonical_path = str(self.script_path.resolve())

    # ------------------------------------------------------------------ #
    # engine callbacks
    # ------------------------------------------------------------------ #
    def _in_target(self, frame: FrameType) -> bool:
        return frame.f_code.co_filename == self._canonical_path

    def _snapshot_locals(self, frame: FrameType) -> dict[str, Any]:
        snapshot: dict[str, Any] = {}
        for name, value in frame.f_locals.items():
            if name.startswith("__") and name.endswith("__"):
                continue
            if isinstance(value, (int, float, str, bool, bytes, type(None))):
                snapshot[name] = value
            else:
                text = repr(value)
                if len(text) > self.MAX_VALUE_REPR:
                    text = text[: self.MAX_VALUE_REPR] + "...<truncated>"
                snapshot[name] = text
        return snapshot

    def _evaluate_watches(self, frame: FrameType) -> dict[str, Any]:
        results: dict[str, Any] = {}
        for label, expression in self.watches.items():
            try:
                results[label] = eval(expression, frame.f_globals, frame.f_locals)  # noqa: S307
            except Exception as exc:  # noqa: BLE001 - watch errors are data
                results[label] = f"<error: {type(exc).__name__}: {exc}>"
        return results

    def _record_stop(self, frame: FrameType, event: str, *,
                     is_breakpoint: bool = False) -> str:
        self._lines_executed += 1
        should_pause = is_breakpoint or self._stepping
        if not should_pause:
            return CONTINUE
        if len(self._stops) >= self.max_stops:
            return QUIT
        stop = StopPoint(
            index=len(self._stops),
            line=frame.f_lineno,
            function=frame.f_code.co_name,
            event=event,
            locals=self._snapshot_locals(frame),
            watches=self._evaluate_watches(frame),
            is_breakpoint=is_breakpoint,
        )
        self._stops.append(stop)
        command = self.controller(stop, self)
        if command not in _VALID_COMMANDS:
            raise DebugSessionError(f"controller returned unknown command {command!r}")
        return command

    def _record_exception(self, frame: FrameType, exc_info: tuple) -> None:
        exc_type, exc_value, _ = exc_info
        self._exception = (exc_type.__name__, str(exc_value), frame.f_lineno)

    # ------------------------------------------------------------------ #
    # running
    # ------------------------------------------------------------------ #
    def run(self) -> DebugOutcome:
        """Run the script under the debugger and return the recorded outcome."""
        source = self.script_path.read_text(encoding="utf-8")
        code = compile(source, self._canonical_path, "exec")
        namespace: dict[str, Any] = {"__name__": "__main__",
                                     "__file__": self._canonical_path}
        engine = _Bdb(self)
        for breakpoint_spec in self.breakpoints:
            error = engine.set_break(self._canonical_path, breakpoint_spec.line,
                                     cond=breakpoint_spec.condition)
            if error:
                raise DebugSessionError(f"cannot set breakpoint: {error}")
        # When there are no breakpoints, start in stepping mode so the
        # controller is consulted from the first line (that is what a
        # developer pressing "Step Into" on the Debug action gets).
        self._stepping = not self.breakpoints

        stdout = io.StringIO()
        previous_dir = os.getcwd()
        exception: BaseException | None = None
        try:
            os.chdir(self.working_directory)
            with contextlib.redirect_stdout(stdout):
                try:
                    engine.run(code, namespace)
                except bdb.BdbQuit:
                    pass
                except DebugSessionError:
                    raise
                except BaseException as exc:  # noqa: BLE001 - reported in the outcome
                    exception = exc
        finally:
            os.chdir(previous_dir)

        outcome = DebugOutcome(
            completed=exception is None and not self._quit_requested,
            result=namespace.get(self.RESULT_VARIABLE),
            stops=self._stops,
            lines_executed=self._lines_executed,
            stdout=stdout.getvalue(),
            quit_requested=self._quit_requested,
        )
        if exception is not None:
            outcome.exception_type = type(exception).__name__
            outcome.exception_message = str(exception)
            import traceback as _traceback

            for frame, lineno in _traceback.walk_tb(exception.__traceback__):
                if frame.f_code.co_filename == self._canonical_path:
                    outcome.exception_line = lineno
        elif self._exception is not None and not outcome.completed:
            outcome.exception_type, outcome.exception_message, outcome.exception_line = \
                self._exception
        return outcome


def debug_file(script_path: str | Path, *, breakpoints: list[int] | None = None,
               watches: dict[str, str] | None = None,
               controller: Controller | None = None,
               working_directory: str | Path | None = None) -> DebugOutcome:
    """Convenience wrapper: build a session and run it."""
    session = DebugSession(
        script_path,
        breakpoints=list(breakpoints or []),
        watches=watches,
        controller=controller,
        working_directory=working_directory,
    )
    return session.run()
