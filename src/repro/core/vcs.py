"""A minimal version-control store for UDF project files.

The paper's motivation (§1): "UDFs are stored within the database server.  As
a result, version control systems (VCSs) such as Git cannot be easily
integrated to keep track of changes to UDFs.  Without a VCS, cooperative
development is challenging and the development history is not stored."

Once devUDF has imported the UDFs as files in the IDE project, any VCS can
track them.  The reproduction ships a small content-addressed store (commits
of file snapshots, diffs, history, checkout) so the workflow benchmarks and
examples can demonstrate the point without requiring a git binary.
"""

from __future__ import annotations

import difflib
import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import VCSError


@dataclass(frozen=True)
class Commit:
    """One snapshot of the tracked files."""

    commit_id: str
    message: str
    timestamp: float
    files: dict[str, str]  # relative path -> blob hash
    parent: str | None = None

    def short_id(self) -> str:
        return self.commit_id[:10]


@dataclass
class FileDiff:
    """Unified diff of one file between two commits."""

    path: str
    status: str  # "added" | "removed" | "modified"
    diff: str = ""


class MiniVCS:
    """Content-addressed snapshots of a project directory."""

    def __init__(self, root: str | Path, *, store_dir: str = ".devudf_vcs",
                 track_glob: str = "**/*.py") -> None:
        self.root = Path(root)
        self.store = self.root / store_dir
        self.track_glob = track_glob
        self._blobs_dir = self.store / "blobs"
        self._commits_file = self.store / "commits.json"
        self._blobs_dir.mkdir(parents=True, exist_ok=True)
        if not self._commits_file.exists():
            self._commits_file.write_text("[]", encoding="utf-8")

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def _tracked_files(self) -> list[Path]:
        files = []
        for path in sorted(self.root.glob(self.track_glob)):
            if path.is_file() and self.store not in path.parents:
                files.append(path)
        return files

    def _store_blob(self, content: bytes) -> str:
        digest = hashlib.sha256(content).hexdigest()
        blob_path = self._blobs_dir / digest
        if not blob_path.exists():
            blob_path.write_bytes(content)
        return digest

    def _read_blob(self, digest: str) -> bytes:
        blob_path = self._blobs_dir / digest
        if not blob_path.exists():
            raise VCSError(f"missing blob {digest}")
        return blob_path.read_bytes()

    def _load_commits(self) -> list[Commit]:
        raw = json.loads(self._commits_file.read_text(encoding="utf-8"))
        return [Commit(**entry) for entry in raw]

    def _save_commits(self, commits: list[Commit]) -> None:
        payload = [
            {
                "commit_id": c.commit_id,
                "message": c.message,
                "timestamp": c.timestamp,
                "files": c.files,
                "parent": c.parent,
            }
            for c in commits
        ]
        self._commits_file.write_text(json.dumps(payload, indent=2), encoding="utf-8")

    # ------------------------------------------------------------------ #
    # porcelain
    # ------------------------------------------------------------------ #
    def commit(self, message: str) -> Commit:
        """Snapshot all tracked files."""
        commits = self._load_commits()
        files: dict[str, str] = {}
        for path in self._tracked_files():
            relative = str(path.relative_to(self.root))
            files[relative] = self._store_blob(path.read_bytes())
        parent = commits[-1].commit_id if commits else None
        raw_id = json.dumps({"files": files, "message": message, "parent": parent},
                            sort_keys=True).encode("utf-8")
        commit_id = hashlib.sha256(raw_id + str(len(commits)).encode()).hexdigest()
        commit = Commit(commit_id=commit_id, message=message, timestamp=time.time(),
                        files=files, parent=parent)
        commits.append(commit)
        self._save_commits(commits)
        return commit

    def log(self) -> list[Commit]:
        """All commits, oldest first."""
        return self._load_commits()

    def head(self) -> Commit | None:
        commits = self._load_commits()
        return commits[-1] if commits else None

    def get_commit(self, commit_id: str) -> Commit:
        for commit in self._load_commits():
            if commit.commit_id.startswith(commit_id):
                return commit
        raise VCSError(f"unknown commit {commit_id!r}")

    def file_at(self, commit_id: str, relative: str) -> str:
        """Content of one file as of a commit."""
        commit = self.get_commit(commit_id)
        if relative not in commit.files:
            raise VCSError(f"{relative!r} is not part of commit {commit.short_id()}")
        return self._read_blob(commit.files[relative]).decode("utf-8")

    def status(self) -> dict[str, str]:
        """Working-tree status relative to HEAD: path -> added/modified/clean."""
        head = self.head()
        tracked = {str(p.relative_to(self.root)): p for p in self._tracked_files()}
        result: dict[str, str] = {}
        head_files = head.files if head else {}
        for relative, path in tracked.items():
            digest = hashlib.sha256(path.read_bytes()).hexdigest()
            if relative not in head_files:
                result[relative] = "added"
            elif head_files[relative] != digest:
                result[relative] = "modified"
            else:
                result[relative] = "clean"
        for relative in head_files:
            if relative not in tracked:
                result[relative] = "removed"
        return result

    def diff(self, old_commit_id: str, new_commit_id: str | None = None) -> list[FileDiff]:
        """Diffs between two commits (or a commit and the working tree)."""
        old = self.get_commit(old_commit_id)
        if new_commit_id is not None:
            new_files = self.get_commit(new_commit_id).files
            read_new = lambda rel: self._read_blob(new_files[rel]).decode("utf-8")  # noqa: E731
        else:
            tracked = {str(p.relative_to(self.root)): p for p in self._tracked_files()}
            new_files = {rel: "" for rel in tracked}
            read_new = lambda rel: tracked[rel].read_text(encoding="utf-8")  # noqa: E731

        diffs: list[FileDiff] = []
        for relative in sorted(set(old.files) | set(new_files)):
            in_old = relative in old.files
            in_new = relative in new_files
            if in_old and not in_new:
                diffs.append(FileDiff(relative, "removed"))
                continue
            old_text = self._read_blob(old.files[relative]).decode("utf-8") if in_old else ""
            new_text = read_new(relative)
            if in_old and old_text == new_text:
                continue
            diff_text = "".join(difflib.unified_diff(
                old_text.splitlines(keepends=True),
                new_text.splitlines(keepends=True),
                fromfile=f"a/{relative}", tofile=f"b/{relative}",
            ))
            diffs.append(FileDiff(relative, "modified" if in_old else "added", diff_text))
        return diffs

    def checkout(self, commit_id: str) -> int:
        """Restore all files of a commit into the working tree; returns files written."""
        commit = self.get_commit(commit_id)
        written = 0
        for relative, digest in commit.files.items():
            target = self.root / relative
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(self._read_blob(digest))
            written += 1
        return written
