"""Exporting UDFs from the IDE project back to the database (Figure 3b).

"The developer can then modify the code of the UDFs in these files, use
version control to keep track of changes to the UDFs and export the UDFs back
to the database server for execution through the 'Export UDFs' window."
(paper §2.1)  "When the user wants to export the UDF back to the database,
these transformations are reversed and only the function body is committed."
(paper §2.2)

The exporter reads each (edited) generated file, reverses the transformation —
extracting the function body and the embedded signature metadata — renders a
``CREATE OR REPLACE FUNCTION`` statement, and runs it on the server.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ExportUDFError, ProjectError, TransformError
from ..netproto.client import Connection
from ..sqldb.schema import FunctionSignature
from .project import DevUDFProject
from .transform import UDFCodeTransformer


@dataclass
class ExportedUDF:
    """One UDF written back to the server."""

    name: str
    create_statement: str
    was_nested: bool = False


@dataclass
class ExportReport:
    """Outcome of one Export UDFs action."""

    exported: list[ExportedUDF] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)
    queries_issued: int = 0

    @property
    def exported_names(self) -> list[str]:
        return [udf.name for udf in self.exported]

    @property
    def ok(self) -> bool:
        return not self.failed


class UDFExporter:
    """Reverses the code transformation and re-creates UDFs on the server."""

    def __init__(self, connection: Connection, project: DevUDFProject) -> None:
        self.connection = connection
        self.project = project
        self.transformer = UDFCodeTransformer()

    # ------------------------------------------------------------------ #
    # building the CREATE statements
    # ------------------------------------------------------------------ #
    def build_create_statement(self, signature: FunctionSignature) -> str:
        """The ``CREATE OR REPLACE FUNCTION`` SQL for one reconstructed signature."""
        return signature.to_create_sql(or_replace=True)

    def signatures_in_file(self, udf_name: str, *, include_nested: bool = True
                           ) -> list[FunctionSignature]:
        """Reconstruct the signatures (main and optionally nested) from a file."""
        source = self.project.udf_source(udf_name)
        names = self.transformer.list_embedded_udfs(source)
        if not names:
            raise ExportUDFError(f"file for UDF {udf_name!r} has no devUDF metadata")
        entry = self.project.entry_for(udf_name)
        ordered: list[str] = []
        if include_nested:
            ordered.extend(entry.nested_udfs)
        ordered.append(udf_name)
        signatures = []
        for name in ordered:
            try:
                signatures.append(
                    self.transformer.standalone_to_signature(source, expected_name=name)
                )
            except TransformError as exc:
                raise ExportUDFError(f"cannot reconstruct UDF {name!r}: {exc}") from exc
        return signatures

    # ------------------------------------------------------------------ #
    # the Export UDFs action
    # ------------------------------------------------------------------ #
    def export_udfs(self, names: list[str] | None = None, *,
                    include_nested: bool = True,
                    commit_message: str | None = "Export UDFs to database"
                    ) -> ExportReport:
        """Export selected imported UDFs (or all of them) back to the server."""
        report = ExportReport()
        queries_before = self.connection.stats.queries
        if names is None:
            names = [entry.udf_name for entry in self.project.imported_udfs()]
        if not names:
            raise ExportUDFError("no imported UDFs to export")

        exported_names: set[str] = set()
        for name in names:
            try:
                signatures = self.signatures_in_file(name, include_nested=include_nested)
            except (ExportUDFError, ProjectError) as exc:
                report.failed[name] = str(exc)
                continue
            for signature in signatures:
                if signature.name.lower() in exported_names:
                    continue
                statement = self.build_create_statement(signature)
                try:
                    self.connection.execute(statement)
                except Exception as exc:  # noqa: BLE001 - surfaced in the report
                    report.failed[signature.name] = str(exc)
                    continue
                exported_names.add(signature.name.lower())
                report.exported.append(ExportedUDF(
                    name=signature.name,
                    create_statement=statement,
                    was_nested=signature.name.lower() != name.lower(),
                ))

        report.queries_issued = self.connection.stats.queries - queries_before
        if report.exported and commit_message and self.project.vcs is not None:
            self.project.commit(commit_message)
        return report
