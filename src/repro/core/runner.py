"""Local execution of transformed UDF files.

Running the generated file (Listing 2) executes the UDF "locally on the
developers' machine instead of remotely inside the database server" (§2.1).
The runner executes a generated file in-process — which is what allows the
interactive debugger to attach — captures its printed output, the value the
trailing call produced, and any exception with its location.
"""

from __future__ import annotations

import contextlib
import io
import os
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import DebugSessionError


@dataclass
class RunResult:
    """What happened when a generated UDF file was executed locally."""

    path: Path
    completed: bool
    result: Any = None
    stdout: str = ""
    exception: BaseException | None = None
    exception_type: str | None = None
    exception_message: str | None = None
    exception_line: int | None = None
    traceback_text: str = ""
    globals: dict[str, Any] = field(default_factory=dict, repr=False)

    @property
    def failed(self) -> bool:
        return not self.completed


@contextlib.contextmanager
def _working_directory(path: Path):
    previous = os.getcwd()
    os.chdir(path)
    try:
        yield
    finally:
        os.chdir(previous)


class LocalUDFRunner:
    """Executes generated UDF files in-process (the plain 'Run' action)."""

    #: Name of the variable the generated trailing call assigns its result to.
    RESULT_VARIABLE = "__devudf_result__"

    def run_file(self, path: str | Path, *, working_directory: str | Path | None = None,
                 extra_globals: dict[str, Any] | None = None) -> RunResult:
        """Execute one generated file and capture the outcome."""
        script = Path(path)
        if not script.exists():
            raise DebugSessionError(f"script {script} does not exist")
        workdir = Path(working_directory) if working_directory else script.parent
        source = script.read_text(encoding="utf-8")
        namespace: dict[str, Any] = {"__name__": "__main__", "__file__": str(script)}
        if extra_globals:
            namespace.update(extra_globals)
        stdout = io.StringIO()
        try:
            code = compile(source, str(script), "exec")
        except SyntaxError as exc:
            return RunResult(
                path=script, completed=False, exception=exc,
                exception_type="SyntaxError", exception_message=str(exc),
                exception_line=exc.lineno, traceback_text=traceback.format_exc(),
            )
        try:
            with _working_directory(workdir), contextlib.redirect_stdout(stdout):
                exec(code, namespace)  # noqa: S102 - running the generated UDF is the feature
        except BaseException as exc:  # noqa: BLE001 - reported to the developer
            line = _exception_line(exc, str(script))
            return RunResult(
                path=script, completed=False, result=None, stdout=stdout.getvalue(),
                exception=exc, exception_type=type(exc).__name__,
                exception_message=str(exc), exception_line=line,
                traceback_text=traceback.format_exc(), globals=namespace,
            )
        return RunResult(
            path=script, completed=True,
            result=namespace.get(self.RESULT_VARIABLE),
            stdout=stdout.getvalue(), globals=namespace,
        )


def _exception_line(exc: BaseException, script_path: str) -> int | None:
    """The last line number inside the script where the exception passed through."""
    line = None
    for frame, lineno in traceback.walk_tb(exc.__traceback__):
        if frame.f_code.co_filename == script_path:
            line = lineno
    return line
