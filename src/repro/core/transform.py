"""UDF code transformations (paper §2.2, Listings 1 and 2).

MonetDB stores only the *body* of a Python UDF in its meta tables.  To edit
and debug the function inside the IDE, devUDF synthesises a runnable
standalone Python file:

* the ``def`` header is rebuilt from the function name and its catalog
  parameters,
* the input data is loaded from a binary blob (``./input.bin``) with
  ``pickle`` and passed as the arguments,
* a trailing call executes the function so that running the file runs the UDF.

When the developer exports the UDF back to the database "these transformations
are reversed and only the function body is committed".  Both directions live
here, together with the embedded-metadata header that lets a generated file be
exported without access to the original catalog entry.
"""

from __future__ import annotations

import ast as python_ast
import json
import textwrap
from dataclasses import dataclass, field
from typing import Any

from ..errors import TransformError
from ..sqldb.schema import ColumnDef, FunctionParameter, FunctionSignature
from ..sqldb.types import ColumnType, SQLType

#: Default location of the pickled input parameters, as in Listing 2.
DEFAULT_INPUT_FILE = "./input.bin"

#: Marker line embedding the catalog signature in generated files.
SIGNATURE_MARKER = "# devudf:signature:"

#: Marker naming nested UDFs included in a generated file (paper §2.3).
NESTED_MARKER = "# devudf:nested:"


# --------------------------------------------------------------------------- #
# signature <-> JSON (the embedded metadata header)
# --------------------------------------------------------------------------- #
def signature_to_json(signature: FunctionSignature) -> str:
    payload = {
        "name": signature.name,
        "language": signature.language,
        "parameters": [
            {"name": p.name, "type": p.sql_type.value, "number": p.number}
            for p in signature.parameters
        ],
        "returns_table": signature.returns_table,
        "return_columns": [
            {"name": c.name, "type": c.sql_type.value} for c in signature.return_columns
        ],
        "return_type": signature.return_type.value if signature.return_type else None,
    }
    return json.dumps(payload, sort_keys=True)


def signature_from_json(payload_text: str, *, body: str = "") -> FunctionSignature:
    try:
        payload = json.loads(payload_text)
    except json.JSONDecodeError as exc:
        raise TransformError(f"invalid embedded signature metadata: {exc}") from exc
    parameters = [
        FunctionParameter(p["name"], SQLType(p["type"]), int(p.get("number", i)))
        for i, p in enumerate(payload.get("parameters", []))
    ]
    return_columns = [
        ColumnDef(c["name"], ColumnType(SQLType(c["type"])))
        for c in payload.get("return_columns", [])
    ]
    return_type = SQLType(payload["return_type"]) if payload.get("return_type") else None
    return FunctionSignature(
        name=payload["name"],
        parameters=parameters,
        returns_table=bool(payload.get("returns_table", False)),
        return_columns=return_columns,
        return_type=return_type,
        language=payload.get("language", "PYTHON"),
        body=body,
    )


# --------------------------------------------------------------------------- #
# catalog text -> body
# --------------------------------------------------------------------------- #
def strip_catalog_braces(func_text: str) -> str:
    """Strip the ``{ ... };`` wrapper MonetDB stores around a Python UDF body.

    Listing 1 shows the stored format: the body is wrapped in braces and
    terminated with a semicolon.  Bodies that are already bare pass through.
    """
    text = func_text.strip()
    if text.startswith("{"):
        text = text[1:]
        if text.rstrip().endswith("};"):
            text = text.rstrip()[:-2]
        elif text.rstrip().endswith("}"):
            text = text.rstrip()[:-1]
    return textwrap.dedent(text).strip("\n").rstrip()


def normalise_body(body: str) -> str:
    """Canonical form of a UDF body used for round-trip comparisons."""
    return textwrap.dedent(body).strip("\n").rstrip() + "\n"


# --------------------------------------------------------------------------- #
# the local loopback connection template (nested UDFs, paper §2.3)
# --------------------------------------------------------------------------- #
_LOCAL_CONNECTION_TEMPLATE = '''\
class _DevUDFLocalConnection:
    """Local stand-in for the MonetDB/Python ``_conn`` loopback object.

    Loopback queries whose results were extracted from the server are replayed
    from the transferred data; loopback queries that call a nested UDF are
    executed locally against the nested function defined in this file.
    """

    def __init__(self, loopback_data, local_functions):
        self._loopback_data = dict(loopback_data or {})
        self._local_functions = dict(local_functions or {})
        self.queries = []

    @staticmethod
    def _normalize(query):
        return " ".join(str(query).split()).strip("; ").lower()

    def execute(self, query):
        import re
        normalized = self._normalize(query)
        self.queries.append(normalized)
        for name, function in self._local_functions.items():
            match = re.search(r"from\\s+" + re.escape(name.lower()) + r"\\s*\\(", normalized)
            if match:
                return self._call_local(name, function, normalized, match.end() - 1)
        if normalized in self._loopback_data:
            return self._loopback_data[normalized]
        raise KeyError(
            "devUDF: no extracted data available for loopback query: %r" % normalized
        )

    def _call_local(self, name, function, query, open_position):
        argument_text = self._argument_text(query, open_position)
        arguments = []
        for part in self._split_arguments(argument_text):
            part = part.strip()
            if not part:
                continue
            if part.startswith("(") and part.endswith(")"):
                inner = self._normalize(part[1:-1])
                if inner.startswith("select"):
                    data = self._loopback_data.get(inner)
                    if data is None:
                        raise KeyError(
                            "devUDF: no extracted data for nested subquery: %r" % inner
                        )
                    arguments.extend(data[key] for key in data)
                    continue
                part = part[1:-1].strip()
            arguments.append(self._parse_scalar(part))
        result = function(*arguments, _conn=self)
        if isinstance(result, dict):
            # normalise to column shape (as the server would return it)
            normalized = {}
            for key, value in result.items():
                if isinstance(value, (str, bytes)) or not hasattr(value, "__len__"):
                    normalized[key] = [value]
                else:
                    normalized[key] = value
            return normalized
        return {name: result}

    @staticmethod
    def _argument_text(query, open_position):
        depth = 0
        for index in range(open_position, len(query)):
            char = query[index]
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
                if depth == 0:
                    return query[open_position + 1:index]
        raise ValueError("devUDF: unbalanced parentheses in loopback query")

    @staticmethod
    def _split_arguments(argument_text):
        parts, depth, current = [], 0, []
        for char in argument_text:
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
            if char == "," and depth == 0:
                parts.append("".join(current))
                current = []
            else:
                current.append(char)
        if current:
            parts.append("".join(current))
        return parts

    @staticmethod
    def _parse_scalar(text):
        text = text.strip()
        if text.startswith("'") and text.endswith("'"):
            return text[1:-1]
        try:
            return int(text)
        except ValueError:
            pass
        try:
            return float(text)
        except ValueError:
            return text
'''


@dataclass
class TransformedUDF:
    """The result of transforming a stored UDF into a standalone file."""

    signature: FunctionSignature
    source: str
    file_name: str
    nested_names: list[str] = field(default_factory=list)


class UDFCodeTransformer:
    """Implements the Listing 1 -> Listing 2 transformation and its reverse."""

    def __init__(self, *, input_file: str = DEFAULT_INPUT_FILE) -> None:
        self.input_file = input_file

    # ------------------------------------------------------------------ #
    # forward: catalog signature -> standalone runnable file
    # ------------------------------------------------------------------ #
    def render_function_def(self, signature: FunctionSignature) -> str:
        """Only the ``def`` for the UDF (used for nested UDFs too)."""
        params = list(signature.parameter_names) + ["_conn=None"]
        header = f"def {signature.name}({', '.join(params)}):"
        body = normalise_body(signature.body) if signature.body.strip() else "pass\n"
        indented = textwrap.indent(body.rstrip("\n"), "    ")
        return f"{header}\n{indented}\n"

    def udf_to_standalone(
        self,
        signature: FunctionSignature,
        *,
        nested: list[FunctionSignature] | None = None,
        input_file: str | None = None,
    ) -> TransformedUDF:
        """Generate the full standalone debug/edit file for a UDF.

        The layout follows Listing 2: imports, the synthesised function
        definition(s), loading of ``input_parameters`` from the pickled blob,
        and the trailing call that executes the UDF with those inputs.  Files
        with nested UDFs additionally define the nested functions and a local
        ``_conn`` replacement (paper §2.3).
        """
        nested = nested or []
        input_file = input_file or self.input_file
        parts: list[str] = []
        parts.append(f'"""devUDF export of UDF {signature.name!r}.\n\n'
                     "Generated by the devUDF plugin: edit the function below, debug it\n"
                     "locally with the IDE's interactive debugger, then export it back to\n"
                     "the database through the 'Export UDFs' action.\n"
                     '"""\n')
        parts.append(f"{SIGNATURE_MARKER} {signature_to_json(signature)}\n")
        if nested:
            nested_names = ",".join(sig.name for sig in nested)
            parts.append(f"{NESTED_MARKER} {nested_names}\n")
        # MonetDB/Python pre-imports numpy into the UDF namespace; the
        # generated file has to do so explicitly to run outside the server.
        parts.append("\nimport pickle\n\nimport numpy\n\n")

        for nested_signature in nested:
            parts.append("\n# --- nested UDF (imported together with the main UDF) ---\n")
            parts.append(f"{SIGNATURE_MARKER} {signature_to_json(nested_signature)}\n")
            parts.append(self.render_function_def(nested_signature))
            parts.append("\n")

        parts.append("\n# --- main UDF ---\n")
        parts.append(self.render_function_def(signature))
        parts.append("\n")

        needs_conn = bool(nested) or "_conn" in signature.body
        if needs_conn:
            parts.append("\n" + _LOCAL_CONNECTION_TEMPLATE + "\n")

        # Trailing load-and-call block, exactly like Listing 2: running the
        # file loads the transferred inputs and executes the UDF locally.
        parts.append("\n")
        parts.append(f"input_parameters = pickle.load(open({input_file!r}, 'rb'))\n\n")
        if needs_conn:
            local_functions = "{" + ", ".join(
                f"{sig.name!r}: {sig.name}" for sig in nested
            ) + "}"
            parts.append("_conn = _DevUDFLocalConnection(\n")
            parts.append("    input_parameters.get('_loopback', {}),\n")
            parts.append(f"    {local_functions},\n")
            parts.append(")\n\n")
        else:
            parts.append("_conn = None\n\n")
        call_args = ",\n    ".join(
            f"input_parameters[{p!r}]" for p in signature.parameter_names
        )
        if call_args:
            call = (f"__devudf_result__ = {signature.name}(\n"
                    f"    {call_args},\n    _conn=_conn)\n")
        else:
            call = f"__devudf_result__ = {signature.name}(_conn=_conn)\n"
        parts.append(call)
        parts.append("print('devUDF result:', __devudf_result__)\n")

        source = "".join(parts)
        self._check_compiles(signature.name, source)
        return TransformedUDF(
            signature=signature,
            source=source,
            file_name=f"{signature.name}.py",
            nested_names=[sig.name for sig in nested],
        )

    @staticmethod
    def _check_compiles(name: str, source: str) -> None:
        try:
            compile(source, f"<devudf {name}>", "exec")
        except SyntaxError as exc:
            raise TransformError(
                f"generated file for UDF {name!r} does not compile: {exc}"
            ) from exc

    # ------------------------------------------------------------------ #
    # reverse: standalone file -> body + signature (paper: "transformations
    # are reversed and only the function body is committed")
    # ------------------------------------------------------------------ #
    def standalone_to_signature(self, source: str,
                                expected_name: str | None = None) -> FunctionSignature:
        """Parse a generated (and possibly edited) file back into a signature.

        The declared SQL types come from the embedded metadata header; the
        body is re-extracted from the (edited) function definition so that the
        developer's changes are what gets exported.
        """
        metadata = self._extract_metadata(source, expected_name)
        name = expected_name or metadata["name"]
        body = extract_function_body(source, name)
        signature = signature_from_json(json.dumps(metadata), body=body)
        return signature

    def _extract_metadata(self, source: str, expected_name: str | None) -> dict[str, Any]:
        candidates: list[dict[str, Any]] = []
        for line in source.splitlines():
            stripped = line.strip()
            if stripped.startswith(SIGNATURE_MARKER):
                payload_text = stripped[len(SIGNATURE_MARKER):].strip()
                try:
                    candidates.append(json.loads(payload_text))
                except json.JSONDecodeError as exc:
                    raise TransformError(f"corrupt signature metadata: {exc}") from exc
        if not candidates:
            raise TransformError(
                "file has no devUDF signature metadata; was it generated by Import UDFs?"
            )
        if expected_name is None:
            # the *first* signature block belongs to the main UDF (it is
            # emitted in the file header, before the nested ones)
            return candidates[0]
        for candidate in candidates:
            if candidate.get("name", "").lower() == expected_name.lower():
                return candidate
        raise TransformError(f"no signature metadata for UDF {expected_name!r} in file")

    def list_embedded_udfs(self, source: str) -> list[str]:
        """Names of every UDF (main + nested) defined in a generated file."""
        names = []
        for line in source.splitlines():
            stripped = line.strip()
            if stripped.startswith(SIGNATURE_MARKER):
                payload = json.loads(stripped[len(SIGNATURE_MARKER):].strip())
                names.append(payload["name"])
        return names


def extract_function_body(source: str, function_name: str) -> str:
    """Extract the (dedented) body text of ``def function_name`` from a file."""
    try:
        module = python_ast.parse(source)
    except SyntaxError as exc:
        raise TransformError(f"cannot parse exported file: {exc}") from exc
    for node in python_ast.walk(module):
        if isinstance(node, python_ast.FunctionDef) and node.name == function_name:
            lines = source.splitlines()
            first = node.body[0].lineno
            last = node.body[-1].end_lineno or node.body[-1].lineno
            body_lines = lines[first - 1:last]
            return textwrap.dedent("\n".join(body_lines)).rstrip() + "\n"
    raise TransformError(f"no function definition {function_name!r} found in file")


def function_names_in_source(source: str) -> list[str]:
    """All top-level function names defined in a Python source file."""
    try:
        module = python_ast.parse(source)
    except SyntaxError as exc:
        raise TransformError(f"cannot parse file: {exc}") from exc
    return [node.name for node in module.body if isinstance(node, python_ast.FunctionDef)]
