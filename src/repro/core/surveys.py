"""Table 1 of the paper: most popular development environments.

The table is external survey data (the PYPL "Top IDE index" as of 2018, the
paper's reference [2]); devUDF argues from it that IDEs dominate plain text
editors, hence IDE integration is where UDF tooling should live.  The
reproduction ships the table verbatim plus the derived statistics the argument
rests on, so the T1 benchmark can print the same rows and the same conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DevelopmentEnvironment:
    """One row of Table 1."""

    name: str
    market_share: float  # percent
    kind: str  # "IDE" or "Text Editor"


#: Table 1, exactly as printed in the paper.
TABLE_1: tuple[DevelopmentEnvironment, ...] = (
    DevelopmentEnvironment("Eclipse", 25.2, "IDE"),
    DevelopmentEnvironment("Visual Studio", 19.5, "IDE"),
    DevelopmentEnvironment("Android Studio", 9.5, "IDE"),
    DevelopmentEnvironment("Vim", 7.9, "Text Editor"),
    DevelopmentEnvironment("XCode", 5.2, "IDE"),
    DevelopmentEnvironment("IntelliJ", 4.8, "IDE"),
    DevelopmentEnvironment("NetBeans", 4.0, "IDE"),
    DevelopmentEnvironment("Xamarin", 3.8, "IDE"),
    DevelopmentEnvironment("Komodo", 3.4, "IDE"),
    DevelopmentEnvironment("Sublime Text", 3.3, "Text Editor"),
    DevelopmentEnvironment("Visual Studio Code", 3.3, "Text Editor"),
    DevelopmentEnvironment("PyCharm", 2.3, "IDE"),
)


def table_rows() -> list[tuple[str, float, str]]:
    """The rows of Table 1 as plain tuples (name, market share %, type)."""
    return [(env.name, env.market_share, env.kind) for env in TABLE_1]


def total_share(kind: str | None = None) -> float:
    """Total listed market share, optionally restricted to one kind."""
    return round(
        sum(env.market_share for env in TABLE_1 if kind is None or env.kind == kind), 1
    )


def ide_vs_text_editor_share() -> dict[str, float]:
    """The derived statistic the paper argues from: IDE share vs editor share."""
    return {
        "IDE": total_share("IDE"),
        "Text Editor": total_share("Text Editor"),
    }


def ides_preferred_over_text_editors() -> bool:
    """The paper's claim: "IDEs are heavily preferred for development"."""
    shares = ide_vs_text_editor_share()
    return shares["IDE"] > shares["Text Editor"]


def environment(name: str) -> DevelopmentEnvironment:
    for env in TABLE_1:
        if env.name.lower() == name.lower():
            return env
    raise KeyError(name)


def pycharm_rank() -> int:
    """PyCharm's rank by market share in the table (1 = most popular)."""
    ordered = sorted(TABLE_1, key=lambda env: env.market_share, reverse=True)
    return 1 + [env.name for env in ordered].index("PyCharm")


def format_table() -> str:
    """Render Table 1 the way the paper prints it."""
    lines = [f"{'Name':<20} {'Market Share':>12} {'Type':<12}"]
    for env in TABLE_1:
        lines.append(f"{env.name:<20} {env.market_share:>11.1f}% {env.kind:<12}")
    return "\n".join(lines)
