"""Packaging extracted input data into the local ``input.bin`` blob.

Listing 2 shows the generated file loading its inputs with
``pickle.load(open('./input.bin', 'rb'))``.  This module writes that blob from
an :class:`~repro.core.extract.ExtractedInputs`, optionally compressing and/or
encrypting the bytes at rest (the same options that protected the data on the
wire can protect the local copy of sensitive data), and reads it back.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import ExtractionError
from ..netproto import compression as compression_mod
from ..netproto import encryption as encryption_mod
from .extract import ExtractedInputs

#: Key under which loopback replay data is stored inside the blob.
LOOPBACK_KEY = "_loopback"

_ENCRYPTED_WRAPPER_KEY = "__devudf_encrypted__"
_COMPRESSED_WRAPPER_KEY = "__devudf_compressed__"


@dataclass
class InputBlobStats:
    """Size accounting for one written input blob."""

    path: Path
    pickled_bytes: int
    stored_bytes: int
    parameters: int
    loopback_queries: int
    compressed: bool = False
    encrypted: bool = False

    @property
    def compression_ratio(self) -> float:
        return self.pickled_bytes / max(self.stored_bytes, 1)


def build_input_parameters(inputs: ExtractedInputs) -> dict[str, Any]:
    """The ``input_parameters`` dictionary the generated file loads."""
    payload: dict[str, Any] = {}
    for name, value in inputs.parameters.items():
        payload[name] = _to_plain(value)
    if inputs.loopback:
        payload[LOOPBACK_KEY] = {
            query: {column: _to_plain(values) for column, values in columns.items()}
            for query, columns in inputs.loopback.items()
        }
    return payload


def _to_plain(value: Any) -> Any:
    """Keep numpy arrays (the UDF-facing format) but normalise other values."""
    if isinstance(value, np.ndarray):
        return value
    if isinstance(value, (list, tuple)):
        try:
            return np.array(value)
        except (ValueError, TypeError):
            return list(value)
    if isinstance(value, np.generic):
        return value.item()
    return value


def write_input_blob(inputs: ExtractedInputs, path: str | Path, *,
                     compress: bool = False, codec: str = compression_mod.CODEC_ZLIB,
                     encrypt_password: str | None = None) -> InputBlobStats:
    """Write ``input.bin`` for a debug run; returns size statistics."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = build_input_parameters(inputs)
    pickled = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    stored = pickled
    compressed = False
    encrypted = False
    if compress:
        stored = compression_mod.compress(stored, codec)
        compressed = True
    if encrypt_password is not None:
        stored = encryption_mod.encrypt(stored, encrypt_password)
        encrypted = True
    if compressed or encrypted:
        # wrap so the reader knows how to undo the at-rest transformations
        wrapper = {
            _COMPRESSED_WRAPPER_KEY: compressed,
            _ENCRYPTED_WRAPPER_KEY: encrypted,
            "payload": stored,
        }
        stored = pickle.dumps(wrapper, protocol=pickle.HIGHEST_PROTOCOL)
    target.write_bytes(stored)
    return InputBlobStats(
        path=target,
        pickled_bytes=len(pickled),
        stored_bytes=target.stat().st_size,
        parameters=len(inputs.parameters),
        loopback_queries=len(inputs.loopback),
        compressed=compressed,
        encrypted=encrypted,
    )


def read_input_blob(path: str | Path, *, password: str | None = None) -> dict[str, Any]:
    """Read an ``input.bin`` written by :func:`write_input_blob`."""
    source = Path(path)
    if not source.exists():
        raise ExtractionError(f"input blob {source} does not exist")
    raw = source.read_bytes()
    payload = pickle.loads(raw)
    if isinstance(payload, dict) and _ENCRYPTED_WRAPPER_KEY in payload:
        data = payload["payload"]
        if payload.get(_ENCRYPTED_WRAPPER_KEY):
            if password is None:
                raise ExtractionError("input blob is encrypted; a password is required")
            data = encryption_mod.decrypt(data, password)
        if payload.get(_COMPRESSED_WRAPPER_KEY):
            data = compression_mod.decompress(data)
        payload = pickle.loads(data)
    if not isinstance(payload, dict):
        raise ExtractionError("input blob does not contain a parameter dictionary")
    return payload
