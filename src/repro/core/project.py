"""The devUDF project: imported UDF files + metadata + VCS + settings.

"After the UDFs are imported, the code of the UDFs is exported from the
database and imported into the IDE as a set of files in the current project"
(paper §2.1).  The devUDF project wraps the IDE project with the bookkeeping
the plugin needs: which file belongs to which UDF, the embedded signatures,
persisted settings, and the version-control store.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ProjectError
from ..ide.project_model import IDEProject
from ..sqldb.schema import FunctionSignature
from .settings import DevUDFSettings
from .transform import UDFCodeTransformer, signature_from_json, signature_to_json
from .vcs import MiniVCS

#: Directory inside the project holding devUDF state.
PLUGIN_DIR = ".devudf"
SETTINGS_FILE = f"{PLUGIN_DIR}/settings.json"
METADATA_FILE = f"{PLUGIN_DIR}/udfs.json"
#: Sub-directory the imported UDF files are placed in.
UDF_DIR = "udfs"


@dataclass
class UDFFileEntry:
    """Metadata about one imported UDF file."""

    udf_name: str
    relative_path: str
    nested_udfs: list[str] = field(default_factory=list)
    imported_from: str = ""

    def as_dict(self) -> dict:
        return {
            "udf_name": self.udf_name,
            "relative_path": self.relative_path,
            "nested_udfs": list(self.nested_udfs),
            "imported_from": self.imported_from,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UDFFileEntry":
        return cls(
            udf_name=data["udf_name"],
            relative_path=data["relative_path"],
            nested_udfs=list(data.get("nested_udfs", [])),
            imported_from=data.get("imported_from", ""),
        )


class DevUDFProject:
    """A devUDF-enabled IDE project."""

    def __init__(self, root: str | Path, *, name: str = "",
                 use_vcs: bool = True) -> None:
        self.ide_project = IDEProject(Path(root), name=name)
        self.transformer = UDFCodeTransformer()
        (self.root / PLUGIN_DIR).mkdir(parents=True, exist_ok=True)
        (self.root / UDF_DIR).mkdir(parents=True, exist_ok=True)
        self.vcs: MiniVCS | None = MiniVCS(self.root) if use_vcs else None

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    @property
    def root(self) -> Path:
        return self.ide_project.root

    @property
    def name(self) -> str:
        return self.ide_project.name

    def udf_file_path(self, udf_name: str) -> str:
        return f"{UDF_DIR}/{udf_name}.py"

    # ------------------------------------------------------------------ #
    # settings persistence
    # ------------------------------------------------------------------ #
    def save_settings(self, settings: DevUDFSettings) -> Path:
        path = self.root / SETTINGS_FILE
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(settings.as_dict(), indent=2), encoding="utf-8")
        return path

    def load_settings(self) -> DevUDFSettings:
        path = self.root / SETTINGS_FILE
        if not path.exists():
            raise ProjectError("project has no saved devUDF settings")
        return DevUDFSettings.from_dict(json.loads(path.read_text(encoding="utf-8")))

    def has_settings(self) -> bool:
        return (self.root / SETTINGS_FILE).exists()

    # ------------------------------------------------------------------ #
    # UDF file registry
    # ------------------------------------------------------------------ #
    def _load_registry(self) -> dict[str, UDFFileEntry]:
        path = self.root / METADATA_FILE
        if not path.exists():
            return {}
        raw = json.loads(path.read_text(encoding="utf-8"))
        return {entry["udf_name"].lower(): UDFFileEntry.from_dict(entry) for entry in raw}

    def _save_registry(self, registry: dict[str, UDFFileEntry]) -> None:
        path = self.root / METADATA_FILE
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = [entry.as_dict() for entry in registry.values()]
        path.write_text(json.dumps(payload, indent=2), encoding="utf-8")

    def register_udf_file(self, udf_name: str, relative_path: str, *,
                          nested_udfs: list[str] | None = None,
                          imported_from: str = "") -> UDFFileEntry:
        registry = self._load_registry()
        entry = UDFFileEntry(udf_name=udf_name, relative_path=relative_path,
                             nested_udfs=list(nested_udfs or []),
                             imported_from=imported_from)
        registry[udf_name.lower()] = entry
        self._save_registry(registry)
        return entry

    def imported_udfs(self) -> list[UDFFileEntry]:
        return sorted(self._load_registry().values(), key=lambda entry: entry.udf_name)

    def entry_for(self, udf_name: str) -> UDFFileEntry:
        registry = self._load_registry()
        entry = registry.get(udf_name.lower())
        if entry is None:
            raise ProjectError(
                f"UDF {udf_name!r} has not been imported into project {self.name!r}"
            )
        return entry

    def has_udf(self, udf_name: str) -> bool:
        return udf_name.lower() in self._load_registry()

    # ------------------------------------------------------------------ #
    # content access
    # ------------------------------------------------------------------ #
    def udf_source(self, udf_name: str) -> str:
        """The (possibly edited, possibly unsaved) source of an imported UDF."""
        entry = self.entry_for(udf_name)
        return self.ide_project.read_text(entry.relative_path)

    def udf_signature(self, udf_name: str) -> FunctionSignature:
        """The signature of an imported UDF reconstructed from its file."""
        source = self.udf_source(udf_name)
        return self.transformer.standalone_to_signature(source, expected_name=udf_name)

    def open_udf(self, udf_name: str):
        """Open the UDF's file in an editor buffer."""
        entry = self.entry_for(udf_name)
        return self.ide_project.open_file(entry.relative_path)

    # ------------------------------------------------------------------ #
    # VCS convenience
    # ------------------------------------------------------------------ #
    def commit(self, message: str):
        if self.vcs is None:
            raise ProjectError("version control is disabled for this project")
        self.ide_project.save_all()
        return self.vcs.commit(message)

    def history(self):
        if self.vcs is None:
            return []
        return self.vcs.log()


# re-export used by the importer/exporter
__all__ = [
    "DevUDFProject",
    "PLUGIN_DIR",
    "SETTINGS_FILE",
    "METADATA_FILE",
    "UDF_DIR",
    "UDFFileEntry",
    "signature_from_json",
    "signature_to_json",
]
