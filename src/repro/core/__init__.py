"""``repro.core`` — the devUDF plugin: the paper's primary contribution.

The sub-modules map one-to-one onto the paper's sections:

* :mod:`settings` — the Settings dialog (Figure 2).
* :mod:`plugin` — the menu contribution and the facade (Figure 1).
* :mod:`importer` / :mod:`exporter` — Import/Export UDFs (Figure 3).
* :mod:`transform` — the Listing 1 -> Listing 2 code transformations (§2.2).
* :mod:`nested` — nested UDF discovery and handling (§2.3).
* :mod:`extract` — debug-query rewriting and input-data extraction (§2.2).
* :mod:`transfer` — the local ``input.bin`` blob (Listing 2).
* :mod:`debugger` / :mod:`runner` — local interactive debugging (§1, §2.1).
* :mod:`vcs` / :mod:`project` — files in the IDE project, under version control (§1).
* :mod:`rowstore` — the tuple-at-a-time extension (§2.4).
* :mod:`workflow` — traditional vs devUDF workflow simulators (§1, §2.5, §3).
* :mod:`surveys` — Table 1.
"""

from .debugger import (
    Breakpoint,
    CONTINUE,
    DebugOutcome,
    DebugSession,
    QUIT,
    STEP_INTO,
    STEP_OUT,
    STEP_OVER,
    ScriptedController,
    StepUntilController,
    StopPoint,
    debug_file,
)
from .exporter import ExportReport, ExportedUDF, UDFExporter
from .extract import (
    EXTRACT_FUNCTION_PREFIX,
    ExtractedInputs,
    ExtractionPlan,
    ExtractQueryRewriter,
    InputExtractor,
    ParameterSource,
)
from .importer import ImportReport, ImportedUDF, UDFImporter
from .nested import (
    LoopbackQuery,
    analyse_loopback_queries,
    find_loopback_queries,
    find_nested_udf_names,
    normalize_query,
)
from .plugin import DebugPreparation, DevUDFPlugin
from .project import DevUDFProject, UDFFileEntry
from .rowstore import ProcessingModelResult, ProcessingModelSimulator, results_equivalent
from .runner import LocalUDFRunner, RunResult
from .settings import DataTransferSettings, DevUDFSettings
from .surveys import TABLE_1, ide_vs_text_editor_share, pycharm_rank, table_rows
from .transfer import InputBlobStats, build_input_parameters, read_input_blob, write_input_blob
from .transform import (
    TransformedUDF,
    UDFCodeTransformer,
    extract_function_body,
    normalise_body,
    strip_catalog_braces,
)
from .vcs import Commit, FileDiff, MiniVCS
from .workflow import (
    DebuggingScenario,
    DeveloperCostModel,
    DevUDFWorkflow,
    TraditionalWorkflow,
    WorkflowComparison,
    WorkflowMetrics,
    compare_workflows,
)

__all__ = [
    "Breakpoint",
    "CONTINUE",
    "Commit",
    "DataTransferSettings",
    "DebugOutcome",
    "DebugPreparation",
    "DebugSession",
    "DebuggingScenario",
    "DeveloperCostModel",
    "DevUDFPlugin",
    "DevUDFProject",
    "DevUDFSettings",
    "DevUDFWorkflow",
    "EXTRACT_FUNCTION_PREFIX",
    "ExportReport",
    "ExportedUDF",
    "ExtractedInputs",
    "ExtractionPlan",
    "ExtractQueryRewriter",
    "FileDiff",
    "ImportReport",
    "ImportedUDF",
    "InputBlobStats",
    "InputExtractor",
    "LocalUDFRunner",
    "LoopbackQuery",
    "MiniVCS",
    "ParameterSource",
    "ProcessingModelResult",
    "ProcessingModelSimulator",
    "QUIT",
    "RunResult",
    "STEP_INTO",
    "STEP_OUT",
    "STEP_OVER",
    "ScriptedController",
    "StepUntilController",
    "StopPoint",
    "TABLE_1",
    "TraditionalWorkflow",
    "TransformedUDF",
    "UDFCodeTransformer",
    "UDFExporter",
    "UDFFileEntry",
    "UDFImporter",
    "WorkflowComparison",
    "WorkflowMetrics",
    "analyse_loopback_queries",
    "build_input_parameters",
    "compare_workflows",
    "debug_file",
    "extract_function_body",
    "find_loopback_queries",
    "find_nested_udf_names",
    "ide_vs_text_editor_share",
    "normalise_body",
    "normalize_query",
    "pycharm_rank",
    "read_input_blob",
    "results_equivalent",
    "strip_catalog_braces",
    "table_rows",
    "write_input_blob",
]
