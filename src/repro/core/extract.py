"""Input-data extraction for local debugging (paper §2.2).

To debug a UDF locally, devUDF needs the data the UDF would have received
inside the server:

    "we take the user-submitted SQL query containing the call to the UDF, and
     we replace the call to the UDF with a predefined extract function that
     transfers the input data back to the client instead of executing the UDF
     inside the server"

The rewriting is done on the parsed query: the arguments of the UDF call are
turned into a projection over the original FROM/WHERE clause, and that
projection is routed through a server-side *extract function* — a Python
table UDF registered on the fly — which applies the uniform random sample
(when the sample option is enabled) before the data leaves the server.
Compression and encryption are applied by the transfer layer on the way out.

Loopback queries inside the UDF body (paper §2.3) are extracted "in
conjunction with the main UDF data": plain data queries are executed and their
results stored for replay; queries that call nested UDFs have the nested
functions imported and their subquery inputs extracted instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import ExtractionError
from ..netproto.client import Connection, TransferOptions
from ..sqldb import ast_nodes as ast
from ..sqldb.parser import parse_statement
from ..sqldb.render import render_expression, render_select, render_table_ref
from ..sqldb.result import QueryResult
from ..sqldb.schema import FunctionSignature
from .nested import LoopbackQuery, analyse_loopback_queries, normalize_query
from .settings import DataTransferSettings

#: Prefix of the server-side extract functions the plugin registers.
EXTRACT_FUNCTION_PREFIX = "devudf_extract_"


# --------------------------------------------------------------------------- #
# plan data structures
# --------------------------------------------------------------------------- #
@dataclass
class ParameterSource:
    """Where one UDF parameter's debug value comes from."""

    name: str
    kind: str  # "column" (extracted from the server) or "constant" (from the query text)
    expression: str | None = None  # SQL text for column sources
    value: Any = None  # literal value for constant sources
    position: int = 0


@dataclass
class ExtractionPlan:
    """Everything needed to pull a UDF's inputs out of the server."""

    udf_name: str
    parameter_sources: list[ParameterSource] = field(default_factory=list)
    #: SQL creating the server-side extract function (None when no column inputs).
    extract_function_sql: str | None = None
    extract_function_name: str | None = None
    #: The rewritten query that returns the input data instead of running the UDF.
    extraction_query: str | None = None
    #: Loopback queries found in the UDF body, classified.
    loopback_queries: list[LoopbackQuery] = field(default_factory=list)
    #: Nested UDF names that must be imported alongside the main UDF.
    nested_udfs: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def column_parameters(self) -> list[ParameterSource]:
        return [source for source in self.parameter_sources if source.kind == "column"]

    @property
    def constant_parameters(self) -> list[ParameterSource]:
        return [source for source in self.parameter_sources if source.kind == "constant"]


@dataclass
class ExtractedInputs:
    """The extracted data, ready to be packaged into ``input.bin``."""

    udf_name: str
    parameters: dict[str, Any] = field(default_factory=dict)
    loopback: dict[str, dict[str, list[Any]]] = field(default_factory=dict)
    rows_extracted: int = 0
    queries_issued: list[str] = field(default_factory=list)
    wire_bytes: int = 0
    raw_bytes: int = 0
    warnings: list[str] = field(default_factory=list)


# --------------------------------------------------------------------------- #
# query rewriting
# --------------------------------------------------------------------------- #
class ExtractQueryRewriter:
    """Builds an :class:`ExtractionPlan` from the user's debug query."""

    def __init__(self, signatures: Mapping[str, FunctionSignature],
                 transfer: DataTransferSettings | None = None) -> None:
        self._signatures = {name.lower(): sig for name, sig in signatures.items()}
        self.transfer = transfer or DataTransferSettings()

    # -- public API -------------------------------------------------------- #
    def plan(self, debug_query: str, udf_name: str) -> ExtractionPlan:
        signature = self._signature(udf_name)
        try:
            statement = parse_statement(debug_query)
        except Exception as exc:
            raise ExtractionError(f"cannot parse debug query: {exc}") from exc
        if not isinstance(statement, ast.Select):
            raise ExtractionError("the debug query must be a SELECT statement")

        if signature.returns_table:
            plan = self._plan_table_udf(statement, signature)
        else:
            plan = self._plan_scalar_udf(statement, signature)

        plan.loopback_queries = analyse_loopback_queries(
            signature.body, self._signatures.keys()
        )
        plan.nested_udfs = []
        for query in plan.loopback_queries:
            for name in query.nested_udfs:
                if name != udf_name.lower() and name not in plan.nested_udfs:
                    plan.nested_udfs.append(name)
        return plan

    def _signature(self, udf_name: str) -> FunctionSignature:
        signature = self._signatures.get(udf_name.lower())
        if signature is None:
            raise ExtractionError(f"unknown UDF {udf_name!r}")
        return signature

    # -- scalar UDFs --------------------------------------------------------- #
    def _plan_scalar_udf(self, statement: ast.Select,
                         signature: FunctionSignature) -> ExtractionPlan:
        call = self._find_scalar_call(statement, signature.name)
        if call is None:
            raise ExtractionError(
                f"the debug query does not call UDF {signature.name!r}"
            )
        if len(call.args) != len(signature.parameters):
            raise ExtractionError(
                f"debug query calls {signature.name!r} with {len(call.args)} "
                f"arguments but the catalog declares {len(signature.parameters)}"
            )
        plan = ExtractionPlan(udf_name=signature.name)
        column_items: list[tuple[str, str]] = []
        for position, (arg, parameter) in enumerate(zip(call.args, signature.parameters)):
            if isinstance(arg, ast.Literal):
                plan.parameter_sources.append(ParameterSource(
                    name=parameter.name, kind="constant", value=arg.value,
                    position=position))
                continue
            expression_sql = render_expression(arg)
            plan.parameter_sources.append(ParameterSource(
                name=parameter.name, kind="column", expression=expression_sql,
                position=position))
            column_items.append((parameter.name, expression_sql))

        if column_items:
            inner = self._render_projection(statement, column_items)
            plan.extract_function_name, plan.extract_function_sql = (
                self._build_extract_function(signature, plan.column_parameters))
            plan.extraction_query = (
                f"SELECT * FROM {plan.extract_function_name}(({inner}))"
            )
        return plan

    @staticmethod
    def _render_projection(statement: ast.Select,
                           column_items: list[tuple[str, str]]) -> str:
        parts = ["SELECT " + ", ".join(f"{sql} AS {name}" for name, sql in column_items)]
        if statement.from_clause is not None:
            parts.append("FROM " + render_table_ref(statement.from_clause))
        if statement.where is not None:
            parts.append("WHERE " + render_expression(statement.where))
        return " ".join(parts)

    def _find_scalar_call(self, node: Any, udf_name: str) -> ast.FunctionCall | None:
        target = udf_name.lower()
        if isinstance(node, ast.FunctionCall) and node.name.lower() == target:
            return node
        if isinstance(node, ast.Select):
            for item in node.items:
                found = self._find_scalar_call(item.expression, udf_name)
                if found is not None:
                    return found
            for child in (node.where, node.having):
                if child is not None:
                    found = self._find_scalar_call(child, udf_name)
                    if found is not None:
                        return found
            return None
        if isinstance(node, ast.BinaryOp):
            return (self._find_scalar_call(node.left, udf_name)
                    or self._find_scalar_call(node.right, udf_name))
        if isinstance(node, ast.UnaryOp):
            return self._find_scalar_call(node.operand, udf_name)
        if isinstance(node, ast.FunctionCall):
            for arg in node.args:
                found = self._find_scalar_call(arg, udf_name)
                if found is not None:
                    return found
        return None

    # -- table UDFs ----------------------------------------------------------- #
    def _plan_table_udf(self, statement: ast.Select,
                        signature: FunctionSignature) -> ExtractionPlan:
        call = self._find_table_call(statement.from_clause, signature.name)
        if call is None:
            raise ExtractionError(
                f"the debug query does not call table UDF {signature.name!r} "
                "in its FROM clause"
            )
        plan = ExtractionPlan(udf_name=signature.name)
        parameters = list(signature.parameters)
        position = 0
        column_subqueries: list[tuple[str, list[str]]] = []
        for arg in call.args:
            if isinstance(arg, ast.Select):
                subquery_sql = render_select(arg)
                names: list[str] = []
                for item in arg.items:
                    if position >= len(parameters):
                        raise ExtractionError(
                            f"too many arguments for {signature.name!r}")
                    parameter = parameters[position]
                    plan.parameter_sources.append(ParameterSource(
                        name=parameter.name, kind="column",
                        expression=render_expression(item.expression),
                        position=position))
                    names.append(parameter.name)
                    position += 1
                column_subqueries.append((subquery_sql, names))
            else:
                if position >= len(parameters):
                    raise ExtractionError(f"too many arguments for {signature.name!r}")
                parameter = parameters[position]
                if isinstance(arg, ast.Literal):
                    value = arg.value
                else:
                    value = None
                    plan.warnings.append(
                        f"argument {position} of {signature.name!r} is not a literal; "
                        "its value cannot be extracted statically"
                    )
                plan.parameter_sources.append(ParameterSource(
                    name=parameter.name, kind="constant", value=value, position=position))
                position += 1
        if position != len(parameters):
            raise ExtractionError(
                f"debug query provides {position} arguments for {signature.name!r}, "
                f"expected {len(parameters)}"
            )

        if column_subqueries:
            # A single extract function covering all column parameters, fed by
            # the first subquery (multiple subqueries are handled one by one).
            plan.extract_function_name, plan.extract_function_sql = (
                self._build_extract_function(signature, plan.column_parameters))
            if len(column_subqueries) == 1:
                inner = column_subqueries[0][0]
                plan.extraction_query = (
                    f"SELECT * FROM {plan.extract_function_name}(({inner}))"
                )
            else:
                plan.warnings.append(
                    "multiple subquery arguments; extracting each separately without sampling"
                )
                plan.extraction_query = None
                for subquery_sql, names in column_subqueries:
                    plan.warnings.append(f"extract: {subquery_sql} -> {names}")
        return plan

    def _find_table_call(self, node: ast.TableRef | None,
                         udf_name: str) -> ast.TableFunctionCall | None:
        if node is None:
            return None
        target = udf_name.lower()
        if isinstance(node, ast.TableFunctionCall) and node.name.lower() == target:
            return node
        if isinstance(node, ast.Join):
            return (self._find_table_call(node.left, udf_name)
                    or self._find_table_call(node.right, udf_name))
        if isinstance(node, ast.SubquerySource):
            return self._find_table_call(node.query.from_clause, udf_name)
        return None

    # -- the server-side extract function ------------------------------------- #
    def _build_extract_function(self, signature: FunctionSignature,
                                column_parameters: list[ParameterSource]
                                ) -> tuple[str, str]:
        """Render the CREATE FUNCTION for the predefined extract function.

        The function takes the UDF's column parameters, optionally applies the
        uniform random sample server-side, and returns the columns unchanged —
        "transfers the input data back to the client instead of executing the
        UDF inside the server".
        """
        name = EXTRACT_FUNCTION_PREFIX + signature.name.lower()
        parameter_types = {p.name: p.sql_type for p in signature.parameters}
        params_sql = ", ".join(
            f"{source.name} {parameter_types[source.name]}" for source in column_parameters
        )
        returns_sql = ", ".join(
            f"{source.name} {parameter_types[source.name]}" for source in column_parameters
        )
        names_literal = ", ".join(f"'{source.name}': {source.name}"
                                  for source in column_parameters)

        sampling_lines = ""
        spec = self.transfer.sample_spec()
        if spec is not None:
            if spec.size is not None:
                size_expr = f"min({spec.size}, _n)"
            else:
                size_expr = f"max(1, min(_n, int(round(_n * {float(spec.fraction)}))))"
            seed = spec.seed if spec.seed is not None else 0
            sampling_lines = (
                "    _rng = numpy.random.default_rng(%d)\n"
                "    _size = %s\n"
                "    if _size < _n:\n"
                "        _idx = numpy.sort(_rng.choice(_n, size=_size, replace=False))\n"
                "        _columns = {_k: numpy.asarray(_v)[_idx] for _k, _v in _columns.items()}\n"
                % (seed, size_expr)
            )

        body = (
            "    import numpy\n"
            f"    _columns = {{{names_literal}}}\n"
            "    _n = 0\n"
            "    for _v in _columns.values():\n"
            "        if hasattr(_v, '__len__'):\n"
            "            _n = max(_n, len(_v))\n"
            f"{sampling_lines}"
            "    return _columns\n"
        )
        sql = (
            f"CREATE OR REPLACE FUNCTION {name}({params_sql})\n"
            f"RETURNS TABLE({returns_sql}) LANGUAGE PYTHON {{\n{body}}};"
        )
        return name, sql


# --------------------------------------------------------------------------- #
# executing a plan against the server
# --------------------------------------------------------------------------- #
class InputExtractor:
    """Runs an :class:`ExtractionPlan` over a client connection."""

    def __init__(self, connection: Connection,
                 signatures: Mapping[str, FunctionSignature],
                 transfer: DataTransferSettings | None = None) -> None:
        self.connection = connection
        self._signatures = {name.lower(): sig for name, sig in signatures.items()}
        self.transfer = transfer or DataTransferSettings()

    def _options(self) -> TransferOptions:
        return self.transfer.transfer_options()

    def extract(self, plan: ExtractionPlan) -> ExtractedInputs:
        """Execute the extraction queries and collect the UDF's local inputs."""
        inputs = ExtractedInputs(udf_name=plan.udf_name,
                                 warnings=list(plan.warnings))
        options = self._options()

        # constants straight from the parsed debug query
        for source in plan.constant_parameters:
            inputs.parameters[source.name] = source.value

        # column inputs through the server-side extract function
        if plan.extraction_query is not None:
            if plan.extract_function_sql is not None:
                self._execute(inputs, plan.extract_function_sql, options)
            result = self._execute(inputs, plan.extraction_query, options)
            columns = result.to_numpy_dict()
            for source in plan.column_parameters:
                if source.name in columns:
                    inputs.parameters[source.name] = columns[source.name]
            inputs.rows_extracted += result.row_count

        # loopback data (paper §2.3): replayable data queries and nested-UDF inputs
        for loopback in plan.loopback_queries:
            if loopback.calls_nested_udf:
                for subquery in loopback.subqueries:
                    key = normalize_query(subquery)
                    if key in inputs.loopback:
                        continue
                    result = self._execute(inputs, subquery, options)
                    inputs.loopback[key] = result.to_dict()
                    inputs.rows_extracted += result.row_count
            elif loopback.has_placeholders:
                inputs.warnings.append(
                    "loopback query with runtime placeholders cannot be extracted "
                    f"statically: {loopback.normalized!r}"
                )
            else:
                key = loopback.normalized
                if key in inputs.loopback:
                    continue
                result = self._execute(inputs, loopback.text, options)
                inputs.loopback[key] = result.to_dict()
                inputs.rows_extracted += result.row_count

        # nested UDFs one level deeper: their bodies may also contain plain
        # loopback queries (kept shallow, like the paper's example)
        for nested_name in plan.nested_udfs:
            nested_signature = self._signatures.get(nested_name)
            if nested_signature is None:
                inputs.warnings.append(f"nested UDF {nested_name!r} not found in catalog")
                continue
            for loopback in analyse_loopback_queries(nested_signature.body,
                                                     self._signatures.keys()):
                if loopback.calls_nested_udf or loopback.has_placeholders:
                    continue
                key = loopback.normalized
                if key in inputs.loopback:
                    continue
                result = self._execute(inputs, loopback.text, options)
                inputs.loopback[key] = result.to_dict()
                inputs.rows_extracted += result.row_count
        return inputs

    def _execute(self, inputs: ExtractedInputs, sql: str,
                 options: TransferOptions) -> QueryResult:
        result = self.connection.execute(sql, options=options)
        inputs.queries_issued.append(sql)
        transfer = self.connection.stats.last_transfer
        if transfer is not None:
            inputs.wire_bytes += transfer.wire_bytes
            inputs.raw_bytes += transfer.raw_bytes
        return result
