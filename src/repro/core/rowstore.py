"""Tuple-at-a-time execution (paper §2.4, "Extending to Other Databases").

MonetDB calls a Python UDF once with entire columns (operator-at-a-time).
Row stores such as Postgres or MySQL call the UDF once per input row
(tuple-at-a-time); the paper notes that "the tuple-at-a-time execution method
can be simulated by issuing a loop over the input tuples".  This module
implements exactly that simulation so the C5 benchmark can compare the two
processing models on the same UDF and the same data: identical results, very
different invocation counts (and therefore overhead).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..errors import ExecutionError
from ..sqldb.database import Database
from ..sqldb.schema import FunctionSignature
from ..sqldb.storage import column_to_numpy
from ..sqldb.types import SQLType


@dataclass
class ProcessingModelResult:
    """Outcome of executing a UDF under one processing model."""

    model: str  # "operator-at-a-time" | "tuple-at-a-time"
    values: list[Any] = field(default_factory=list)
    invocations: int = 0
    rows: int = 0
    elapsed_seconds: float = 0.0

    @property
    def invocations_per_row(self) -> float:
        return self.invocations / self.rows if self.rows else 0.0


class ProcessingModelSimulator:
    """Runs a scalar Python UDF under both processing models."""

    def __init__(self, database: Database) -> None:
        self.database = database

    def _signature(self, udf_name: str) -> FunctionSignature:
        return self.database.catalog.get(udf_name).signature

    def _input_columns(self, table: str, columns: Sequence[str]) -> list[list[Any]]:
        stored = self.database.storage.table(table)
        return [list(stored.column(name).values) for name in columns]

    # ------------------------------------------------------------------ #
    # operator-at-a-time (the MonetDB/Python model)
    # ------------------------------------------------------------------ #
    def run_operator_at_a_time(self, udf_name: str, table: str,
                               columns: Sequence[str]) -> ProcessingModelResult:
        """One invocation with whole numpy columns, as MonetDB does.

        The columns are taken from the storage layer's cached numpy
        materialisation, so repeated runs are a zero-copy handoff rather than
        a fresh list-to-array conversion per call.
        """
        signature = self._signature(udf_name)
        self._check_arity(signature, columns)
        stored = self.database.storage.table(table)
        rows = stored.row_count
        # views, not the cache arrays themselves: a view of the read-only
        # cache cannot be flipped writable, so the shared cache stays intact
        arrays = [stored.column(name).to_numpy().view() for name in columns]
        before = self.database.udf_runtime.invocation_counts.get(udf_name.lower(), 0)
        start = time.perf_counter()
        raw = self.database.udf_runtime.invoke(signature, arrays)
        elapsed = time.perf_counter() - start
        after = self.database.udf_runtime.invocation_counts.get(udf_name.lower(), 0)
        values = _normalise_output(raw)
        return ProcessingModelResult(
            model="operator-at-a-time", values=values,
            invocations=after - before, rows=rows, elapsed_seconds=elapsed,
        )

    # ------------------------------------------------------------------ #
    # tuple-at-a-time (the Postgres/MySQL model, simulated)
    # ------------------------------------------------------------------ #
    def run_tuple_at_a_time(self, udf_name: str, table: str,
                            columns: Sequence[str]) -> ProcessingModelResult:
        """One invocation per row, each receiving length-1 arrays."""
        signature = self._signature(udf_name)
        self._check_arity(signature, columns)
        inputs = self._input_columns(table, columns)
        rows = len(inputs[0]) if inputs else 0
        types = [self._column_type(table, name) for name in columns]
        before = self.database.udf_runtime.invocation_counts.get(udf_name.lower(), 0)
        values: list[Any] = []
        start = time.perf_counter()
        for row_index in range(rows):
            row_arrays = [
                column_to_numpy([column[row_index]], sql_type)
                for column, sql_type in zip(inputs, types)
            ]
            raw = self.database.udf_runtime.invoke(signature, row_arrays)
            row_values = _normalise_output(raw)
            values.append(row_values[0] if len(row_values) == 1 else row_values)
        elapsed = time.perf_counter() - start
        after = self.database.udf_runtime.invocation_counts.get(udf_name.lower(), 0)
        return ProcessingModelResult(
            model="tuple-at-a-time", values=values,
            invocations=after - before, rows=rows, elapsed_seconds=elapsed,
        )

    # ------------------------------------------------------------------ #
    # comparison
    # ------------------------------------------------------------------ #
    def compare(self, udf_name: str, table: str, columns: Sequence[str]
                ) -> dict[str, ProcessingModelResult]:
        """Run both models and return their results keyed by model name."""
        operator = self.run_operator_at_a_time(udf_name, table, columns)
        per_tuple = self.run_tuple_at_a_time(udf_name, table, columns)
        return {"operator-at-a-time": operator, "tuple-at-a-time": per_tuple}

    def _check_arity(self, signature: FunctionSignature, columns: Sequence[str]) -> None:
        if len(columns) != len(signature.parameters):
            raise ExecutionError(
                f"UDF {signature.name!r} expects {len(signature.parameters)} columns, "
                f"got {len(columns)}"
            )

    def _column_type(self, table: str, column: str) -> SQLType:
        return self.database.storage.table(table).column(column).sql_type


def _normalise_output(raw: Any) -> list[Any]:
    if isinstance(raw, np.ndarray):
        return raw.tolist()
    if isinstance(raw, np.generic):
        return [raw.item()]
    if isinstance(raw, (list, tuple)):
        return list(raw)
    return [raw]


def results_equivalent(first: ProcessingModelResult, second: ProcessingModelResult, *,
                       tolerance: float = 1e-9) -> bool:
    """Whether two processing-model runs produced the same values.

    Element-wise row UDFs produce the same list under both models; aggregate
    UDFs (one value per column) cannot be compared this way and return False.
    """
    if len(first.values) != len(second.values):
        return False
    for a, b in zip(first.values, second.values):
        if isinstance(a, float) or isinstance(b, float):
            if abs(float(a) - float(b)) > tolerance:
                return False
        elif a != b:
            return False
    return True
