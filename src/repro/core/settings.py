"""devUDF plugin settings (the Settings window, Figure 2).

The paper's settings dialog collects:

* the usual database client connection parameters — host, port, database,
  user, password (§2.1);
* the SQL query which executes the to-be-debugged UDF (§2.1, "This SQL query
  must be specified in the Settings menu");
* the data-transfer options — compression, a uniform random sample size, and
  optional encryption (§2.1-2.2).

Settings are serialisable to/from a dict so they can be persisted in the IDE
project (``.devudf/settings.json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import SettingsError
from ..netproto.client import ConnectionInfo, TransferOptions
from ..netproto.compression import CODEC_NONE, CODEC_ZLIB, available_codecs
from ..netproto.sampling import SampleSpec


@dataclass
class DataTransferSettings:
    """The transfer-option block of the settings dialog."""

    #: compress the extracted data on the wire (paper: "faster transfer times")
    use_compression: bool = False
    compression_codec: str = CODEC_ZLIB
    #: encrypt the extracted data with the user's password (paper: sensitive data)
    use_encryption: bool = False
    #: debug on a uniform random sample instead of the full input
    use_sampling: bool = False
    sample_size: int | None = None
    sample_fraction: float | None = None
    sample_seed: int | None = 42

    def validate(self) -> None:
        if self.use_compression and self.compression_codec not in available_codecs():
            raise SettingsError(
                f"unknown compression codec {self.compression_codec!r}; "
                f"available: {available_codecs()}"
            )
        if self.use_sampling:
            if self.sample_size is None and self.sample_fraction is None:
                raise SettingsError("sampling enabled but no sample size/fraction given")
            if self.sample_size is not None and self.sample_size <= 0:
                raise SettingsError("sample size must be positive")
            if self.sample_fraction is not None and not 0.0 < self.sample_fraction <= 1.0:
                raise SettingsError("sample fraction must be in (0, 1]")

    def sample_spec(self) -> SampleSpec | None:
        if not self.use_sampling:
            return None
        if self.sample_size is not None:
            return SampleSpec(size=self.sample_size, seed=self.sample_seed)
        return SampleSpec(fraction=self.sample_fraction, seed=self.sample_seed)

    def transfer_options(self) -> TransferOptions:
        return TransferOptions(
            compression=self.compression_codec if self.use_compression else CODEC_NONE,
            encrypt=self.use_encryption,
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "use_compression": self.use_compression,
            "compression_codec": self.compression_codec,
            "use_encryption": self.use_encryption,
            "use_sampling": self.use_sampling,
            "sample_size": self.sample_size,
            "sample_fraction": self.sample_fraction,
            "sample_seed": self.sample_seed,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DataTransferSettings":
        return cls(**{key: data[key] for key in cls().as_dict() if key in data})


@dataclass
class DevUDFSettings:
    """Everything the Settings window (Figure 2) collects."""

    host: str = "localhost"
    port: int = 50000
    database: str = "demo"
    username: str = "monetdb"
    password: str = "monetdb"
    #: the SQL query that executes the UDF being debugged (Figure 2)
    debug_query: str = ""
    transfer: DataTransferSettings = field(default_factory=DataTransferSettings)

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    REQUIRED_CONNECTION_FIELDS = ("host", "port", "database", "username", "password")

    def validate_connection(self) -> None:
        missing = [
            name for name in self.REQUIRED_CONNECTION_FIELDS
            if not getattr(self, name) and getattr(self, name) != 0
        ]
        if missing:
            raise SettingsError(f"missing connection settings: {missing}")
        if not isinstance(self.port, int) or not 0 < self.port < 65536:
            raise SettingsError(f"port must be in 1..65535, got {self.port!r}")

    def validate_for_debug(self) -> None:
        """Debugging additionally needs the SQL query that calls the UDF."""
        self.validate_connection()
        if not self.debug_query.strip():
            raise SettingsError(
                "no debug query configured: the SQL query which executes the "
                "to-be-debugged UDF must be specified in the Settings menu"
            )
        self.transfer.validate()

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def connection_info(self) -> ConnectionInfo:
        return ConnectionInfo(
            host=self.host,
            port=self.port,
            database=self.database,
            username=self.username,
            password=self.password,
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "host": self.host,
            "port": self.port,
            "database": self.database,
            "username": self.username,
            "password": self.password,
            "debug_query": self.debug_query,
            "transfer": self.transfer.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DevUDFSettings":
        transfer = DataTransferSettings.from_dict(data.get("transfer", {}))
        kwargs = {key: data[key] for key in
                  ("host", "port", "database", "username", "password", "debug_query")
                  if key in data}
        return cls(transfer=transfer, **kwargs)

    def describe(self) -> str:
        """One-line summary shown in the IDE status bar."""
        sample = ""
        if self.transfer.use_sampling:
            if self.transfer.sample_size is not None:
                sample = f", sample={self.transfer.sample_size} rows"
            else:
                sample = f", sample={self.transfer.sample_fraction:.0%}"
        options = []
        if self.transfer.use_compression:
            options.append(f"compression={self.transfer.compression_codec}")
        if self.transfer.use_encryption:
            options.append("encryption")
        option_text = f" [{', '.join(options)}{sample}]" if (options or sample) else ""
        return f"{self.username}@{self.host}:{self.port}/{self.database}{option_text}"
