"""The devUDF plugin facade.

This is the entry point that ties the pieces together the way the PyCharm
plugin does (paper §2):

* it contributes the "UDF Development" submenu with its three actions —
  Settings, Import UDFs, Export UDFs (Figure 1),
* it connects to the database with the configured client parameters (Figure 2),
* Import / Export move UDFs between the server catalog and project files
  (Figure 3),
* the Debug command extracts the UDF's input data (honouring the transfer
  options), writes the local ``input.bin``, and runs the transformed file under
  the interactive debugger.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import DevUDFError, ExtractionError, SettingsError
from ..ide.actions import Action, MainMenu
from ..netproto.client import Connection, ConnectionInfo
from ..netproto.server import DatabaseServer
from ..sqldb.result import QueryResult
from ..sqldb.schema import FunctionSignature
from .debugger import Breakpoint, Controller, DebugOutcome, DebugSession
from .exporter import ExportReport, UDFExporter
from .extract import ExtractedInputs, ExtractionPlan, ExtractQueryRewriter, InputExtractor
from .importer import ImportReport, UDFImporter
from .project import DevUDFProject
from .runner import LocalUDFRunner, RunResult
from .settings import DevUDFSettings
from .transfer import InputBlobStats, write_input_blob


@dataclass
class DebugPreparation:
    """Everything produced while preparing a local debug run."""

    udf_name: str
    script_path: Path
    input_path: Path
    plan: ExtractionPlan
    inputs: ExtractedInputs
    blob_stats: InputBlobStats
    imported_now: list[str] = field(default_factory=list)

    @property
    def warnings(self) -> list[str]:
        return list(self.inputs.warnings)


class DevUDFPlugin:
    """The devUDF plugin: settings, import, export, local debugging."""

    SUBMENU_LABEL = "UDF Development"
    ACTION_SETTINGS = "devudf.settings"
    ACTION_IMPORT = "devudf.import_udfs"
    ACTION_EXPORT = "devudf.export_udfs"

    def __init__(self, project: DevUDFProject | str | Path,
                 settings: DevUDFSettings | None = None, *,
                 server: DatabaseServer | None = None,
                 menu: MainMenu | None = None) -> None:
        self.project = project if isinstance(project, DevUDFProject) \
            else DevUDFProject(project)
        if settings is None and self.project.has_settings():
            settings = self.project.load_settings()
        self.settings = settings or DevUDFSettings()
        #: When a server object is provided the plugin connects in-process
        #: (the common configuration for tests/benchmarks); otherwise it opens
        #: a TCP connection to settings.host:settings.port.
        self.server = server
        self.menu = menu or MainMenu()
        self._connection: Connection | None = None
        self.install_menu(self.menu)

    # ------------------------------------------------------------------ #
    # Figure 1: the menu contribution
    # ------------------------------------------------------------------ #
    def install_menu(self, menu: MainMenu) -> None:
        """Register the "UDF Development" submenu and its three actions."""
        group = menu.menu(self.SUBMENU_LABEL)
        if not group.actions:
            group.add_action(Action(self.ACTION_SETTINGS, "Settings",
                                    callback=self.configure,
                                    description="Configure the database connection, "
                                                "debug query and transfer options"))
            group.add_action(Action(self.ACTION_IMPORT, "Import UDFs",
                                    callback=self.import_udfs,
                                    description="Import UDFs stored in the database "
                                                "into the IDE project"))
            group.add_action(Action(self.ACTION_EXPORT, "Export UDFs",
                                    callback=self.export_udfs,
                                    description="Export (modified) UDFs back to the "
                                                "database server"))

    def menu_action(self, action_id: str) -> Action:
        return self.menu.find_action(action_id)

    # ------------------------------------------------------------------ #
    # Figure 2: settings
    # ------------------------------------------------------------------ #
    def configure(self, **kwargs: Any) -> DevUDFSettings:
        """Update settings fields (the Settings dialog's OK button)."""
        transfer_fields = self.settings.transfer.as_dict()
        for key, value in kwargs.items():
            if hasattr(self.settings, key) and key != "transfer":
                setattr(self.settings, key, value)
            elif key in transfer_fields:
                setattr(self.settings.transfer, key, value)
            else:
                raise SettingsError(f"unknown setting {key!r}")
        self.settings.validate_connection()
        self.settings.transfer.validate()
        self.project.save_settings(self.settings)
        # settings changes invalidate the cached connection
        self.disconnect()
        return self.settings

    # ------------------------------------------------------------------ #
    # connection management
    # ------------------------------------------------------------------ #
    def connect(self) -> Connection:
        """Open (or reuse) the client connection described by the settings."""
        if self._connection is not None and not self._connection.closed:
            return self._connection
        self.settings.validate_connection()
        info: ConnectionInfo = self.settings.connection_info()
        if self.server is not None:
            self._connection = Connection.connect_in_process(self.server, info)
        else:
            self._connection = Connection.connect_tcp(info)
        return self._connection

    def disconnect(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def execute_sql(self, sql: str) -> QueryResult:
        """Run an arbitrary query on the server (used by examples and tests)."""
        return self.connect().execute(
            sql, options=self.settings.transfer.transfer_options()
        )

    # ------------------------------------------------------------------ #
    # Figure 3: import / export
    # ------------------------------------------------------------------ #
    def list_server_udfs(self) -> list[str]:
        importer = UDFImporter(self.connect(), self.project)
        return importer.list_available()

    def import_udfs(self, names: list[str] | None = None) -> ImportReport:
        importer = UDFImporter(self.connect(), self.project)
        return importer.import_udfs(names)

    def export_udfs(self, names: list[str] | None = None, *,
                    include_nested: bool = True) -> ExportReport:
        exporter = UDFExporter(self.connect(), self.project)
        return exporter.export_udfs(names, include_nested=include_nested)

    # ------------------------------------------------------------------ #
    # the Debug command (§2.1-2.3)
    # ------------------------------------------------------------------ #
    def find_debug_target(self, debug_query: str | None = None) -> str:
        """Which UDF does the configured debug query execute?"""
        query = (debug_query or self.settings.debug_query).strip()
        if not query:
            raise SettingsError("no debug query configured in the settings")
        importer = UDFImporter(self.connect(), self.project)
        signatures = importer.fetch_signatures()
        called = re.findall(r"\b([a-z_][a-z0-9_]*)\s*\(", query.lower())
        for name in called:
            if name in signatures:
                return signatures[name].name
        raise ExtractionError(
            f"the debug query does not call any Python UDF known to the server: {query!r}"
        )

    def prepare_debug(self, udf_name: str | None = None, *,
                      debug_query: str | None = None) -> DebugPreparation:
        """Extract the UDF's input data and materialise the local debug files."""
        self.settings.validate_connection()
        query = (debug_query or self.settings.debug_query).strip()
        if not query:
            raise SettingsError(
                "no debug query configured: the SQL query which executes the "
                "to-be-debugged UDF must be specified in the Settings menu"
            )
        self.settings.transfer.validate()
        connection = self.connect()
        importer = UDFImporter(connection, self.project)
        signatures = importer.fetch_signatures()
        target = udf_name or self.find_debug_target(query)
        if target.lower() not in signatures:
            raise ExtractionError(f"UDF {target!r} does not exist on the server")

        imported_now: list[str] = []
        if not self.project.has_udf(target):
            report = importer.import_udfs([target])
            imported_now = report.imported_names

        rewriter = ExtractQueryRewriter(signatures, self.settings.transfer)
        plan = rewriter.plan(query, target)
        extractor = InputExtractor(connection, signatures, self.settings.transfer)
        inputs = extractor.extract(plan)

        entry = self.project.entry_for(target)
        script_path = self.project.root / entry.relative_path
        input_path = script_path.parent / "input.bin"
        blob_stats = write_input_blob(inputs, input_path)
        return DebugPreparation(
            udf_name=target,
            script_path=script_path,
            input_path=input_path,
            plan=plan,
            inputs=inputs,
            blob_stats=blob_stats,
            imported_now=imported_now,
        )

    def debug_udf(self, udf_name: str | None = None, *,
                  debug_query: str | None = None,
                  breakpoints: list[int | Breakpoint] | None = None,
                  watches: dict[str, str] | None = None,
                  controller: Controller | None = None,
                  preparation: DebugPreparation | None = None) -> DebugOutcome:
        """Run the UDF locally under the interactive debugger."""
        preparation = preparation or self.prepare_debug(udf_name, debug_query=debug_query)
        session = DebugSession(
            preparation.script_path,
            breakpoints=breakpoints or [],
            watches=watches,
            controller=controller,
            working_directory=preparation.script_path.parent,
        )
        return session.run()

    def run_udf_locally(self, udf_name: str | None = None, *,
                        debug_query: str | None = None,
                        preparation: DebugPreparation | None = None) -> RunResult:
        """Plain local Run of the transformed UDF (no debugger attached)."""
        preparation = preparation or self.prepare_debug(udf_name, debug_query=debug_query)
        runner = LocalUDFRunner()
        return runner.run_file(preparation.script_path,
                               working_directory=preparation.script_path.parent)

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def catalog_signature(self, udf_name: str) -> FunctionSignature:
        importer = UDFImporter(self.connect(), self.project)
        signatures = importer.fetch_signatures()
        signature = signatures.get(udf_name.lower())
        if signature is None:
            raise DevUDFError(f"UDF {udf_name!r} does not exist on the server")
        return signature

    def close(self) -> None:
        self.disconnect()

    def __enter__(self) -> "DevUDFPlugin":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
