"""Workflow simulators: traditional UDF development vs devUDF (the headline claim).

The paper's introduction and demo outline (§1, §2.5) contrast two workflows:

* **Traditional**: write the UDF in a text editor, ``CREATE FUNCTION`` it into
  the database, run the SQL query, and — when it misbehaves — fall back to
  print debugging: instrument the body, re-create the function, re-run the
  query, repeat until the bug is found, then fix and re-run once more.
* **devUDF**: import the UDF into the IDE, extract its input data once, debug
  it locally with breakpoints/stepping/watches, fix it in place, verify
  locally, and export the fixed function back.

The paper never quantifies "faster and easier", so the reproduction
operationalises it: both workflows are driven programmatically over the same
buggy scenario and the simulator counts developer iterations, server round
trips, UDF re-creations, bytes moved, and (optionally) an estimated developer
time from a simple cost model.  The C4 benchmark reports these side by side.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import DevUDFError
from ..netproto.server import DatabaseServer
from .debugger import Breakpoint, Controller, DebugOutcome
from .plugin import DevUDFPlugin
from .project import DevUDFProject
from .runner import LocalUDFRunner
from .settings import DevUDFSettings


# --------------------------------------------------------------------------- #
# scenario interface (implemented by repro.workloads.scenarios)
# --------------------------------------------------------------------------- #
class DebuggingScenario(ABC):
    """A buggy-UDF scenario both workflows are driven over."""

    #: short identifier ("scenario_a", "scenario_b", ...)
    name: str = "scenario"
    #: the UDF under development
    udf_name: str = ""
    #: the SQL query that executes the UDF (the settings' debug query)
    debug_query: str = ""

    @abstractmethod
    def setup(self, server: DatabaseServer) -> None:
        """Create tables, load data, and create the *buggy* UDF on the server."""

    @abstractmethod
    def reference_value(self) -> Any:
        """The correct result the developer compares against (§2.5)."""

    @abstractmethod
    def is_correct(self, value: Any) -> bool:
        """Whether a query result matches the reference."""

    @abstractmethod
    def fixed_create_sql(self) -> str:
        """CREATE OR REPLACE FUNCTION with the corrected body."""

    @abstractmethod
    def instrumented_create_sql(self, round_index: int) -> str:
        """The body the developer would try in print-debugging round ``round_index``."""

    @abstractmethod
    def print_debug_rounds(self) -> int:
        """How many print-instrumentation rounds the traditional workflow needs."""

    # -- devUDF side ------------------------------------------------------- #
    @abstractmethod
    def apply_fix_to_source(self, source: str) -> str:
        """Apply the fix to the imported (generated) file's source text."""

    @abstractmethod
    def debugger_breakpoints(self, source: str) -> list[int | Breakpoint]:
        """Breakpoint line numbers in the generated file."""

    def debugger_watches(self) -> dict[str, str]:
        return {}

    def debugger_controller(self) -> Controller | None:
        return None

    @abstractmethod
    def bug_visible_in_debugger(self, outcome: DebugOutcome) -> bool:
        """Whether the recorded debug session exposes the bug."""

    def extract_result_value(self, query_result: Any) -> Any:
        """Pull the comparable value out of the debug query's result."""
        try:
            return query_result.scalar()
        except Exception:  # noqa: BLE001 - scenario-specific results may differ
            return query_result.fetchall()


# --------------------------------------------------------------------------- #
# metrics
# --------------------------------------------------------------------------- #
@dataclass
class DeveloperCostModel:
    """Crude per-action developer costs used to estimate end-to-end time.

    These are knobs, not measurements: the benchmark reports both the raw
    counts and the modelled time so the comparison's *shape* is transparent.
    """

    seconds_per_edit_iteration: float = 45.0
    #: manually converting Python code into a CREATE FUNCTION statement and
    #: back — the pain point §1 calls out; devUDF automates it away.
    seconds_per_manual_transformation: float = 30.0
    seconds_per_server_round_trip: float = 0.5
    seconds_per_debug_session: float = 60.0
    wire_bandwidth_bytes_per_second: float = 10e6  # 10 MB/s, a modest office link

    def estimate(self, metrics: "WorkflowMetrics") -> float:
        return (
            metrics.developer_iterations * self.seconds_per_edit_iteration
            + metrics.manual_transformations * self.seconds_per_manual_transformation
            + metrics.server_round_trips * self.seconds_per_server_round_trip
            + metrics.debug_sessions * self.seconds_per_debug_session
            + metrics.wire_bytes / self.wire_bandwidth_bytes_per_second
        )


@dataclass
class WorkflowMetrics:
    """What one workflow run cost and whether it succeeded."""

    workflow: str
    scenario: str
    developer_iterations: int = 0
    server_round_trips: int = 0
    udf_recreations: int = 0
    #: UDF re-creations that required the developer to hand-convert code
    #: between Python and SQL (always zero for devUDF, which automates it).
    manual_transformations: int = 0
    full_query_executions: int = 0
    debug_sessions: int = 0
    local_runs: int = 0
    wire_bytes: int = 0
    rows_transferred: int = 0
    elapsed_seconds: float = 0.0
    estimated_developer_seconds: float = 0.0
    bug_found: bool = False
    final_result_correct: bool = False
    notes: list[str] = field(default_factory=list)

    def as_row(self) -> dict[str, Any]:
        return {
            "workflow": self.workflow,
            "scenario": self.scenario,
            "iterations": self.developer_iterations,
            "round_trips": self.server_round_trips,
            "udf_recreations": self.udf_recreations,
            "manual_transformations": self.manual_transformations,
            "query_executions": self.full_query_executions,
            "debug_sessions": self.debug_sessions,
            "wire_bytes": self.wire_bytes,
            "estimated_developer_seconds": round(self.estimated_developer_seconds, 1),
            "bug_found": self.bug_found,
            "final_result_correct": self.final_result_correct,
        }


# --------------------------------------------------------------------------- #
# the traditional workflow (§1: text editor + CREATE FUNCTION + print debugging)
# --------------------------------------------------------------------------- #
class TraditionalWorkflow:
    """Simulates the edit / CREATE FUNCTION / re-run / print-debug loop."""

    def __init__(self, cost_model: DeveloperCostModel | None = None) -> None:
        self.cost_model = cost_model or DeveloperCostModel()

    def run(self, scenario: DebuggingScenario, server: DatabaseServer) -> WorkflowMetrics:
        from ..netproto.client import Connection

        metrics = WorkflowMetrics(workflow="traditional", scenario=scenario.name)
        start = time.perf_counter()
        connection = Connection.connect_in_process(server)
        try:
            # 1. run the query, observe the wrong result
            result = connection.execute(scenario.debug_query)
            metrics.full_query_executions += 1
            metrics.developer_iterations += 1
            value = scenario.extract_result_value(result)
            if scenario.is_correct(value):
                metrics.notes.append("initial result already correct (unexpected)")

            # 2. print-debugging rounds: instrument, re-create, re-run
            for round_index in range(scenario.print_debug_rounds()):
                connection.execute(scenario.instrumented_create_sql(round_index))
                metrics.udf_recreations += 1
                connection.execute(scenario.debug_query)
                metrics.full_query_executions += 1
                metrics.developer_iterations += 1
            metrics.bug_found = True

            # 3. the fix: re-create the corrected UDF and re-run the query
            connection.execute(scenario.fixed_create_sql())
            metrics.udf_recreations += 1
            result = connection.execute(scenario.debug_query)
            metrics.full_query_executions += 1
            metrics.developer_iterations += 1
            metrics.final_result_correct = scenario.is_correct(
                scenario.extract_result_value(result))

            metrics.manual_transformations = metrics.udf_recreations
            metrics.server_round_trips = connection.stats.queries
            metrics.wire_bytes = connection.stats.wire_bytes_received
            metrics.rows_transferred = connection.stats.rows_received
        finally:
            connection.close()
        metrics.elapsed_seconds = time.perf_counter() - start
        metrics.estimated_developer_seconds = self.cost_model.estimate(metrics)
        return metrics


# --------------------------------------------------------------------------- #
# the devUDF workflow (§2: import, debug locally, fix, export)
# --------------------------------------------------------------------------- #
class DevUDFWorkflow:
    """Simulates the IDE-integrated workflow the plugin enables."""

    def __init__(self, project_root: str | Path,
                 cost_model: DeveloperCostModel | None = None,
                 settings: DevUDFSettings | None = None) -> None:
        self.project_root = Path(project_root)
        self.cost_model = cost_model or DeveloperCostModel()
        self.settings = settings

    def run(self, scenario: DebuggingScenario, server: DatabaseServer) -> WorkflowMetrics:
        metrics = WorkflowMetrics(workflow="devudf", scenario=scenario.name)
        start = time.perf_counter()

        settings = self.settings or DevUDFSettings()
        settings.debug_query = scenario.debug_query
        project = DevUDFProject(self.project_root / scenario.name)
        plugin = DevUDFPlugin(project, settings, server=server)
        try:
            connection = plugin.connect()

            # 1. import the UDF into the IDE project (Figure 3a)
            plugin.import_udfs([scenario.udf_name])
            metrics.developer_iterations += 1

            # 2. extract the input data and debug locally (one debug session)
            preparation = plugin.prepare_debug(scenario.udf_name)
            source = project.udf_source(scenario.udf_name)
            outcome = plugin.debug_udf(
                scenario.udf_name,
                preparation=preparation,
                breakpoints=scenario.debugger_breakpoints(source),
                watches=scenario.debugger_watches(),
                controller=scenario.debugger_controller(),
            )
            metrics.debug_sessions += 1
            metrics.developer_iterations += 1
            metrics.bug_found = scenario.bug_visible_in_debugger(outcome)
            metrics.rows_transferred = preparation.inputs.rows_extracted

            # 3. fix the UDF in the editor and verify locally (no server involved)
            buffer = project.open_udf(scenario.udf_name)
            buffer.set_text(scenario.apply_fix_to_source(buffer.text))
            buffer.save()
            runner = LocalUDFRunner()
            local = runner.run_file(preparation.script_path,
                                    working_directory=preparation.script_path.parent)
            metrics.local_runs += 1
            metrics.developer_iterations += 1
            if not local.completed:
                metrics.notes.append(
                    f"local verification failed: {local.exception_type}: "
                    f"{local.exception_message}"
                )

            # 4. export the fixed UDF back (Figure 3b) and confirm on the server
            plugin.export_udfs([scenario.udf_name])
            result = connection.execute(scenario.debug_query)
            metrics.full_query_executions += 1
            metrics.developer_iterations += 1
            metrics.final_result_correct = scenario.is_correct(
                scenario.extract_result_value(result))
            from .extract import EXTRACT_FUNCTION_PREFIX

            metrics.udf_recreations = sum(
                1 for sql in server.stats.query_log
                if sql.lstrip().upper().startswith("CREATE")
                and scenario.udf_name in sql
                and EXTRACT_FUNCTION_PREFIX not in sql
            )
            metrics.manual_transformations = 0
            metrics.server_round_trips = connection.stats.queries
            metrics.wire_bytes = connection.stats.wire_bytes_received
        finally:
            plugin.close()
        metrics.elapsed_seconds = time.perf_counter() - start
        metrics.estimated_developer_seconds = self.cost_model.estimate(metrics)
        return metrics


# --------------------------------------------------------------------------- #
# side-by-side comparison (what the C4 benchmark prints)
# --------------------------------------------------------------------------- #
@dataclass
class WorkflowComparison:
    """The two workflows' metrics for one scenario."""

    scenario: str
    traditional: WorkflowMetrics
    devudf: WorkflowMetrics

    @property
    def round_trip_reduction(self) -> float:
        if self.devudf.server_round_trips == 0:
            return float("inf")
        return self.traditional.server_round_trips / self.devudf.server_round_trips

    @property
    def iteration_reduction(self) -> float:
        if self.devudf.developer_iterations == 0:
            return float("inf")
        return self.traditional.developer_iterations / self.devudf.developer_iterations

    @property
    def devudf_wins(self) -> bool:
        """The paper's qualitative claim, made checkable."""
        return (
            self.devudf.final_result_correct
            and self.devudf.bug_found
            and self.devudf.full_query_executions <= self.traditional.full_query_executions
            and self.devudf.udf_recreations <= self.traditional.udf_recreations
        )

    def as_rows(self) -> list[dict[str, Any]]:
        return [self.traditional.as_row(), self.devudf.as_row()]


def compare_workflows(scenario_factory, *, project_root: str | Path,
                      cost_model: DeveloperCostModel | None = None,
                      settings: DevUDFSettings | None = None) -> WorkflowComparison:
    """Run both workflows on fresh servers built by ``scenario_factory``.

    ``scenario_factory`` must return a new :class:`DebuggingScenario` each
    call; each workflow gets its own scenario instance and its own server so
    neither can observe the other's side effects.
    """
    traditional_scenario = scenario_factory()
    traditional_server = DatabaseServer()
    traditional_scenario.setup(traditional_server)
    traditional = TraditionalWorkflow(cost_model).run(traditional_scenario,
                                                      traditional_server)

    devudf_scenario = scenario_factory()
    devudf_server = DatabaseServer()
    devudf_scenario.setup(devudf_server)
    devudf = DevUDFWorkflow(project_root, cost_model, settings).run(
        devudf_scenario, devudf_server)

    if traditional.scenario != devudf.scenario:
        raise DevUDFError("scenario factory returned differing scenarios")
    return WorkflowComparison(scenario=traditional.scenario,
                              traditional=traditional, devudf=devudf)
