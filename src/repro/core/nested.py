"""Nested UDF discovery (paper §2.3).

MonetDB/Python UDFs can issue loopback queries through the ``_conn`` object,
and those loopback queries can themselves call other UDFs (Listing 3).  To
debug such a UDF locally, devUDF must

* find the loopback queries inside the UDF body,
* identify which of them call other (nested) UDFs,
* import those nested UDFs too (with the same code transformation), and
* extract the nested UDFs' input data "in conjunction with the main UDF data".

This module does the static analysis part: finding loopback query literals and
classifying them.  The data extraction lives in :mod:`repro.core.extract`, the
local ``_conn`` replacement in the generated file template
(:mod:`repro.core.transform`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable

#: Matches ``_conn.execute(`` followed by a Python string literal (single,
#: double, or triple quoted).  The optional ``% ...`` formatting suffix of
#: Listing 3 is not part of the literal and is therefore ignored here.
_LOOPBACK_PATTERN = re.compile(
    r"_conn\s*\.\s*execute\s*\(\s*"
    r"(?P<quote>\"\"\"|'''|\"|')"
    r"(?P<query>.*?)"
    r"(?P=quote)",
    re.DOTALL,
)

#: Matches a table-function call in a FROM clause: ``FROM <name> (``.
_FROM_FUNCTION_PATTERN = re.compile(r"\bfrom\s+([a-z_][a-z0-9_]*)\s*\(", re.IGNORECASE)

#: Matches a scalar function call anywhere in the query text.
_CALL_PATTERN = re.compile(r"\b([a-z_][a-z0-9_]*)\s*\(", re.IGNORECASE)


def normalize_query(query: str) -> str:
    """Whitespace-collapsed, lowercased, semicolon-stripped query text.

    This is the key under which extracted loopback results are stored and
    later replayed by the local ``_conn`` stand-in, so both sides must use the
    same normalisation.
    """
    return " ".join(str(query).split()).strip("; ").lower()


@dataclass
class LoopbackQuery:
    """One loopback query found in a UDF body."""

    text: str
    normalized: str
    has_placeholders: bool = False
    nested_udfs: list[str] = field(default_factory=list)
    subqueries: list[str] = field(default_factory=list)

    @property
    def calls_nested_udf(self) -> bool:
        return bool(self.nested_udfs)


def find_loopback_queries(body: str) -> list[str]:
    """Return the raw query literals passed to ``_conn.execute`` in a body."""
    return [match.group("query") for match in _LOOPBACK_PATTERN.finditer(body)]


def find_called_functions(query: str) -> list[str]:
    """Names that appear as function calls in a query (lowercased, in order)."""
    names: list[str] = []
    for match in _CALL_PATTERN.finditer(query):
        name = match.group(1).lower()
        if name not in names:
            names.append(name)
    return names


def extract_subquery_arguments(query: str) -> list[str]:
    """Parenthesised ``SELECT`` arguments of table-function calls in a query.

    For Listing 3's ``SELECT * FROM train_rnforest((SELECT data, labels FROM
    trainingset), %d)`` this returns ``["SELECT data, labels FROM trainingset"]``;
    those subqueries are what devUDF must run to extract the nested UDF's
    inputs.
    """
    subqueries: list[str] = []
    for match in _FROM_FUNCTION_PATTERN.finditer(query):
        open_position = query.index("(", match.end() - 1)
        argument_text = _balanced_argument_text(query, open_position)
        if argument_text is None:
            continue
        for part in _split_top_level(argument_text):
            stripped = part.strip()
            if stripped.startswith("(") and stripped.endswith(")"):
                stripped = stripped[1:-1].strip()
            if stripped.lower().startswith("select"):
                subqueries.append(stripped)
    return subqueries


def _balanced_argument_text(query: str, open_position: int) -> str | None:
    depth = 0
    for index in range(open_position, len(query)):
        char = query[index]
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth == 0:
                return query[open_position + 1:index]
    return None


def _split_top_level(argument_text: str) -> list[str]:
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in argument_text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return parts


def analyse_loopback_queries(body: str, known_udfs: Iterable[str]) -> list[LoopbackQuery]:
    """Classify every loopback query in a body.

    ``known_udfs`` is the set of UDF names registered in the database catalog;
    a loopback query that calls one of them is a *nested UDF call* and needs
    the §2.3 treatment (import the nested UDF, extract its subquery inputs).
    """
    known = {name.lower() for name in known_udfs}
    queries: list[LoopbackQuery] = []
    for raw in find_loopback_queries(body):
        nested = [name for name in find_called_functions(raw) if name in known]
        queries.append(
            LoopbackQuery(
                text=raw,
                normalized=normalize_query(raw),
                has_placeholders="%d" in raw or "%s" in raw or "%f" in raw,
                nested_udfs=nested,
                subqueries=extract_subquery_arguments(raw),
            )
        )
    return queries


def find_nested_udf_names(body: str, known_udfs: Iterable[str]) -> list[str]:
    """The distinct nested UDFs referenced from a body's loopback queries."""
    names: list[str] = []
    for query in analyse_loopback_queries(body, known_udfs):
        for name in query.nested_udfs:
            if name not in names:
                names.append(name)
    return names


def uses_loopback(body: str) -> bool:
    """True when the body issues loopback queries at all."""
    return "_conn" in body and bool(find_loopback_queries(body)) or "_conn.execute" in body
