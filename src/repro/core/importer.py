"""Importing UDFs from the database into the IDE project (Figure 3a).

"The development process begins by importing the existing UDFs within the
server into the development environment. ... The developer has the option to
select the functions that he wishes to import, or he can choose to import all
functions stored within the database server." (paper §2.1)

The importer queries the server's meta tables (``sys.functions`` /
``sys.args``), reconstructs each UDF's signature, applies the Listing 1 ->
Listing 2 code transformation, and writes one file per UDF into the project.
UDFs whose loopback queries call other UDFs get those nested UDFs embedded in
the same file (paper §2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ImportUDFError
from ..netproto.client import Connection
from ..sqldb.schema import ColumnDef, FunctionParameter, FunctionSignature
from ..sqldb.types import ColumnType, parse_type_name
from .extract import EXTRACT_FUNCTION_PREFIX
from .nested import find_nested_udf_names
from .project import DevUDFProject
from .transform import UDFCodeTransformer, strip_catalog_braces

#: MonetDB language codes for Python UDFs (sys.functions.language).
_PYTHON_LANGUAGE_CODES = (6, 7)
_TABLE_FUNCTION_TYPE = 5


@dataclass
class ImportedUDF:
    """One UDF imported into the project."""

    name: str
    relative_path: str
    nested_udfs: list[str] = field(default_factory=list)
    parameter_names: list[str] = field(default_factory=list)
    returns_table: bool = False


@dataclass
class ImportReport:
    """Outcome of one Import UDFs action."""

    imported: list[ImportedUDF] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    available: list[str] = field(default_factory=list)
    queries_issued: int = 0

    @property
    def imported_names(self) -> list[str]:
        return [udf.name for udf in self.imported]


class UDFImporter:
    """Reads UDFs out of the server catalog and materialises them as files."""

    def __init__(self, connection: Connection, project: DevUDFProject) -> None:
        self.connection = connection
        self.project = project
        self.transformer = UDFCodeTransformer()

    # ------------------------------------------------------------------ #
    # catalog introspection
    # ------------------------------------------------------------------ #
    def fetch_signatures(self, *, include_internal: bool = False
                         ) -> dict[str, FunctionSignature]:
        """Reconstruct the signature of every Python UDF on the server."""
        functions = self.connection.execute(
            "SELECT id, name, func, language, type FROM sys.functions"
        )
        args = self.connection.execute(
            "SELECT func_id, name, type, number, inout FROM sys.args"
        )
        args_by_function: dict[int, list[tuple]] = {}
        for func_id, arg_name, arg_type, number, inout in args.rows():
            args_by_function.setdefault(int(func_id), []).append(
                (arg_name, arg_type, int(number), int(inout))
            )

        signatures: dict[str, FunctionSignature] = {}
        for oid, name, func_text, language, func_type in functions.rows():
            if int(language) not in _PYTHON_LANGUAGE_CODES:
                continue
            if not include_internal and name.lower().startswith(EXTRACT_FUNCTION_PREFIX):
                continue
            body = strip_catalog_braces(func_text)
            parameters: list[FunctionParameter] = []
            return_columns: list[ColumnDef] = []
            return_type = None
            for arg_name, arg_type, number, inout in sorted(
                args_by_function.get(int(oid), []), key=lambda item: (item[3], item[2])
            ):
                sql_type = parse_type_name(arg_type)
                if inout == 1:
                    parameters.append(FunctionParameter(arg_name, sql_type, number))
                else:
                    return_columns.append(ColumnDef(arg_name, ColumnType(sql_type)))
            returns_table = int(func_type) == _TABLE_FUNCTION_TYPE
            if not returns_table:
                return_type = return_columns[0].sql_type if return_columns else None
                return_columns = []
            signatures[name.lower()] = FunctionSignature(
                name=name,
                parameters=parameters,
                returns_table=returns_table,
                return_columns=return_columns,
                return_type=return_type,
                language="PYTHON",
                body=body,
            )
        return signatures

    def list_available(self) -> list[str]:
        """Names of the Python UDFs stored on the server (the import dialog list)."""
        return sorted(sig.name for sig in self.fetch_signatures().values())

    # ------------------------------------------------------------------ #
    # the Import UDFs action
    # ------------------------------------------------------------------ #
    def import_udfs(self, names: list[str] | None = None, *,
                    commit_message: str | None = "Import UDFs from database"
                    ) -> ImportReport:
        """Import selected UDFs (or all of them when ``names`` is None)."""
        queries_before = self.connection.stats.queries
        signatures = self.fetch_signatures()
        report = ImportReport(available=sorted(s.name for s in signatures.values()))

        if names is None:
            selected = list(signatures.values())
        else:
            selected = []
            for name in names:
                signature = signatures.get(name.lower())
                if signature is None:
                    raise ImportUDFError(
                        f"UDF {name!r} does not exist on the server; "
                        f"available: {report.available}"
                    )
                selected.append(signature)

        known_names = set(signatures.keys())
        for signature in selected:
            nested_names = find_nested_udf_names(signature.body, known_names)
            nested_names = [n for n in nested_names if n != signature.name.lower()]
            nested_signatures = [signatures[n] for n in nested_names if n in signatures]
            transformed = self.transformer.udf_to_standalone(
                signature, nested=nested_signatures
            )
            relative_path = self.project.udf_file_path(signature.name)
            self.project.ide_project.create_file(relative_path, transformed.source)
            self.project.register_udf_file(
                signature.name, relative_path,
                nested_udfs=transformed.nested_names,
                imported_from=self.connection.info.describe(),
            )
            report.imported.append(ImportedUDF(
                name=signature.name,
                relative_path=relative_path,
                nested_udfs=transformed.nested_names,
                parameter_names=signature.parameter_names,
                returns_table=signature.returns_table,
            ))

        report.skipped = [
            name for name in report.available
            if name.lower() not in {udf.name.lower() for udf in report.imported}
        ]
        report.queries_issued = self.connection.stats.queries - queries_before
        if report.imported and commit_message and self.project.vcs is not None:
            self.project.commit(commit_message)
        return report
