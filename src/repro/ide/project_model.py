"""The IDE project model: a directory of files with open editor buffers.

This is the PyCharm "project" the devUDF plugin imports UDF files into
(paper §2.1, Figure 3a) and exports them back from (Figure 3b).  Files are
real files on disk — which is precisely what makes them trackable by a
version-control system, one of the paper's motivations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from ..errors import ProjectError
from .editor import EditorBuffer


@dataclass
class IDEProject:
    """A project rooted at a directory, with open editor buffers."""

    root: Path
    name: str = ""
    _buffers: dict[str, EditorBuffer] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)
        if not self.name:
            self.name = self.root.name

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    def path_of(self, relative: str) -> Path:
        path = (self.root / relative).resolve()
        if self.root.resolve() not in path.parents and path != self.root.resolve():
            raise ProjectError(f"{relative!r} escapes the project root")
        return path

    def exists(self, relative: str) -> bool:
        return self.path_of(relative).exists()

    def files(self, pattern: str = "**/*.py") -> list[Path]:
        return sorted(p for p in self.root.glob(pattern) if p.is_file())

    def relative_files(self, pattern: str = "**/*.py") -> list[str]:
        return [str(p.relative_to(self.root)) for p in self.files(pattern)]

    # ------------------------------------------------------------------ #
    # file + buffer management
    # ------------------------------------------------------------------ #
    def create_file(self, relative: str, text: str = "", *, overwrite: bool = True) -> EditorBuffer:
        path = self.path_of(relative)
        if path.exists() and not overwrite:
            raise ProjectError(f"{relative!r} already exists")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        buffer = EditorBuffer(path=path, text=text, dirty=False)
        self._buffers[relative] = buffer
        return buffer

    def open_file(self, relative: str) -> EditorBuffer:
        if relative in self._buffers:
            return self._buffers[relative]
        path = self.path_of(relative)
        if not path.exists():
            raise ProjectError(f"{relative!r} does not exist in project {self.name!r}")
        buffer = EditorBuffer(path=path, text=path.read_text(encoding="utf-8"))
        self._buffers[relative] = buffer
        return buffer

    def delete_file(self, relative: str) -> None:
        path = self.path_of(relative)
        if not path.exists():
            raise ProjectError(f"{relative!r} does not exist")
        path.unlink()
        self._buffers.pop(relative, None)

    def open_buffers(self) -> Iterator[tuple[str, EditorBuffer]]:
        return iter(self._buffers.items())

    def dirty_buffers(self) -> list[str]:
        return [rel for rel, buffer in self._buffers.items() if buffer.dirty]

    def save_all(self) -> int:
        """Save every dirty buffer; returns the number of files written."""
        saved = 0
        for buffer in self._buffers.values():
            if buffer.dirty:
                buffer.save()
                saved += 1
        return saved

    def read_text(self, relative: str) -> str:
        """Read file content, preferring the (possibly unsaved) buffer."""
        if relative in self._buffers:
            return self._buffers[relative].text
        return self.path_of(relative).read_text(encoding="utf-8")
