"""Editor buffers: the in-memory text documents the IDE edits.

devUDF imports UDFs "into the IDE as a set of files in the current project"
(paper §2.1); the developer then modifies the code in those files.  The
reproduction models that editing surface so tests and workflow simulations can
perform the same modifications a developer would (replace a line, insert a
statement, refactor a name) and track dirty/saved state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ProjectError


@dataclass
class EditorBuffer:
    """An open document: a path plus its (possibly modified) text."""

    path: Path
    text: str = ""
    dirty: bool = False
    edit_count: int = 0
    _undo_stack: list[str] = field(default_factory=list, repr=False)

    # ------------------------------------------------------------------ #
    # content access
    # ------------------------------------------------------------------ #
    @property
    def lines(self) -> list[str]:
        return self.text.splitlines()

    def line(self, number: int) -> str:
        """1-based line access (like the editor gutter)."""
        lines = self.lines
        if not 1 <= number <= len(lines):
            raise ProjectError(f"line {number} out of range (1..{len(lines)})")
        return lines[number - 1]

    def find_line(self, needle: str) -> int:
        """1-based number of the first line containing ``needle``."""
        for index, line in enumerate(self.lines, start=1):
            if needle in line:
                return index
        raise ProjectError(f"text {needle!r} not found in {self.path.name}")

    # ------------------------------------------------------------------ #
    # edits
    # ------------------------------------------------------------------ #
    def _push_undo(self) -> None:
        self._undo_stack.append(self.text)

    def set_text(self, text: str) -> None:
        self._push_undo()
        self.text = text
        self.dirty = True
        self.edit_count += 1

    def replace_line(self, number: int, new_line: str) -> None:
        lines = self.lines
        if not 1 <= number <= len(lines):
            raise ProjectError(f"line {number} out of range (1..{len(lines)})")
        self._push_undo()
        lines[number - 1] = new_line
        self.text = "\n".join(lines) + ("\n" if self.text.endswith("\n") else "")
        self.dirty = True
        self.edit_count += 1

    def insert_line(self, number: int, new_line: str) -> None:
        lines = self.lines
        if not 1 <= number <= len(lines) + 1:
            raise ProjectError(f"line {number} out of range (1..{len(lines) + 1})")
        self._push_undo()
        lines.insert(number - 1, new_line)
        self.text = "\n".join(lines) + ("\n" if self.text.endswith("\n") else "")
        self.dirty = True
        self.edit_count += 1

    def replace_text(self, old: str, new: str, *, count: int = -1) -> int:
        """Replace occurrences of ``old`` with ``new``; returns replacements made."""
        occurrences = self.text.count(old)
        if occurrences == 0:
            return 0
        if count >= 0:
            occurrences = min(occurrences, count)
        self._push_undo()
        self.text = self.text.replace(old, new, count if count >= 0 else -1)
        self.dirty = True
        self.edit_count += 1
        return occurrences

    def undo(self) -> bool:
        if not self._undo_stack:
            return False
        self.text = self._undo_stack.pop()
        self.dirty = True
        self.edit_count += 1
        return True

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self) -> Path:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(self.text, encoding="utf-8")
        self.dirty = False
        return self.path

    def reload(self) -> None:
        if not self.path.exists():
            raise ProjectError(f"{self.path} does not exist on disk")
        self.text = self.path.read_text(encoding="utf-8")
        self.dirty = False
