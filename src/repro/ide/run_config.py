"""Run / debug configurations.

Running an imported UDF under the IDE's debugger is done "by running the
project as they would run a normal PyCharm project (using the 'Debug'
command)" (paper §2.1).  A run configuration names the script to execute, its
working directory, and whether to attach the interactive debugger.
"""

from __future__ import annotations

import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import ProjectError


@dataclass
class RunConfiguration:
    """What to run and how (the PyCharm 'Run/Debug Configuration' dialog)."""

    name: str
    script_path: Path
    working_directory: Path | None = None
    environment: dict[str, str] = field(default_factory=dict)
    arguments: list[str] = field(default_factory=list)
    use_debugger: bool = False

    def __post_init__(self) -> None:
        self.script_path = Path(self.script_path)
        if self.working_directory is not None:
            self.working_directory = Path(self.working_directory)

    @property
    def resolved_working_directory(self) -> Path:
        return self.working_directory or self.script_path.parent


@dataclass
class RunOutcome:
    """What happened when a configuration was run."""

    configuration: RunConfiguration
    exit_code: int
    stdout: str = ""
    stderr: str = ""
    exception: str | None = None

    @property
    def succeeded(self) -> bool:
        return self.exit_code == 0 and self.exception is None


class RunManager:
    """Stores configurations and runs them as subprocesses (plain 'Run').

    Debug runs do not go through a subprocess — the interactive debugger in
    :mod:`repro.core.debugger` executes the script in-process so breakpoints
    and stepping can be driven programmatically.
    """

    def __init__(self) -> None:
        self.configurations: dict[str, RunConfiguration] = {}
        self.history: list[RunOutcome] = []

    def add(self, configuration: RunConfiguration) -> RunConfiguration:
        self.configurations[configuration.name] = configuration
        return configuration

    def get(self, name: str) -> RunConfiguration:
        try:
            return self.configurations[name]
        except KeyError:
            raise ProjectError(f"unknown run configuration {name!r}") from None

    def run(self, name: str, *, timeout: float = 60.0,
            extra_env: dict[str, str] | None = None) -> RunOutcome:
        """Run a configuration as ``python script.py`` and capture its output."""
        configuration = self.get(name)
        if not configuration.script_path.exists():
            raise ProjectError(f"script {configuration.script_path} does not exist")
        env: dict[str, str] = {}
        env.update(configuration.environment)
        if extra_env:
            env.update(extra_env)
        import os

        full_env = dict(os.environ)
        full_env.update(env)
        try:
            completed = subprocess.run(
                [sys.executable, str(configuration.script_path), *configuration.arguments],
                cwd=str(configuration.resolved_working_directory),
                capture_output=True,
                text=True,
                timeout=timeout,
                env=full_env,
                check=False,
            )
            outcome = RunOutcome(
                configuration=configuration,
                exit_code=completed.returncode,
                stdout=completed.stdout,
                stderr=completed.stderr,
            )
        except subprocess.TimeoutExpired as exc:
            outcome = RunOutcome(
                configuration=configuration,
                exit_code=-1,
                stdout=exc.stdout or "" if isinstance(exc.stdout, str) else "",
                stderr=exc.stderr or "" if isinstance(exc.stderr, str) else "",
                exception=f"timeout after {timeout}s",
            )
        self.history.append(outcome)
        return outcome
