"""The IDE action / menu registry (Figure 1).

A JetBrains plugin contributes *actions* that are placed into menu groups; the
devUDF plugin adds a "UDF Development" submenu to the main menu with the three
actions shown in Figure 1: Settings, Import UDFs and Export UDFs.  This module
models exactly that registration surface so the reproduction can assert the
menu structure the figure depicts and invoke the actions programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import ProjectError

ActionCallback = Callable[..., Any]


@dataclass
class Action:
    """A named, invokable menu action."""

    action_id: str
    label: str
    callback: ActionCallback | None = None
    description: str = ""
    invocations: int = 0

    def invoke(self, *args: Any, **kwargs: Any) -> Any:
        if self.callback is None:
            raise ProjectError(f"action {self.action_id!r} has no callback")
        self.invocations += 1
        return self.callback(*args, **kwargs)


@dataclass
class MenuGroup:
    """A (sub)menu containing actions and nested groups."""

    label: str
    actions: list[Action] = field(default_factory=list)
    groups: dict[str, "MenuGroup"] = field(default_factory=dict)

    def add_action(self, action: Action) -> Action:
        if any(existing.action_id == action.action_id for existing in self.actions):
            raise ProjectError(f"duplicate action id {action.action_id!r}")
        self.actions.append(action)
        return action

    def submenu(self, label: str) -> "MenuGroup":
        if label not in self.groups:
            self.groups[label] = MenuGroup(label)
        return self.groups[label]

    def action(self, action_id: str) -> Action:
        for action in self.actions:
            if action.action_id == action_id:
                return action
        for group in self.groups.values():
            try:
                return group.action(action_id)
            except ProjectError:
                continue
        raise ProjectError(f"unknown action {action_id!r}")

    def action_labels(self) -> list[str]:
        return [action.label for action in self.actions]

    def tree(self, indent: int = 0) -> str:
        """Render the menu tree (the textual equivalent of Figure 1)."""
        lines = [("  " * indent) + self.label]
        for action in self.actions:
            lines.append(("  " * (indent + 1)) + action.label)
        for group in self.groups.values():
            lines.append(group.tree(indent + 1))
        return "\n".join(lines)


class MainMenu:
    """The IDE main menu bar (File, Edit, ..., Tools)."""

    DEFAULT_MENUS = ("File", "Edit", "View", "Navigate", "Code", "Refactor",
                     "Run", "Tools", "VCS", "Window", "Help")

    def __init__(self) -> None:
        self.menus: dict[str, MenuGroup] = {
            label: MenuGroup(label) for label in self.DEFAULT_MENUS
        }

    def menu(self, label: str) -> MenuGroup:
        if label not in self.menus:
            self.menus[label] = MenuGroup(label)
        return self.menus[label]

    def find_action(self, action_id: str) -> Action:
        for group in self.menus.values():
            try:
                return group.action(action_id)
            except ProjectError:
                continue
        raise ProjectError(f"unknown action {action_id!r}")

    def labels(self) -> list[str]:
        return list(self.menus)
