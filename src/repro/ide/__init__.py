"""``repro.ide`` — a scriptable stand-in for the PyCharm / IntelliJ platform.

Only the surfaces the devUDF plugin touches are modelled: the project (files +
editor buffers), the main-menu action registry the plugin contributes its
"UDF Development" submenu to (Figure 1), and run/debug configurations.
"""

from .actions import Action, ActionCallback, MainMenu, MenuGroup
from .editor import EditorBuffer
from .project_model import IDEProject
from .run_config import RunConfiguration, RunManager, RunOutcome

__all__ = [
    "Action",
    "ActionCallback",
    "EditorBuffer",
    "IDEProject",
    "MainMenu",
    "MenuGroup",
    "RunConfiguration",
    "RunManager",
    "RunOutcome",
]
