"""Uniform random sampling of result sets.

Paper §2.1: "the developer can choose to execute the UDF using a uniform
random sample of the input data instead of the full set of input data.  This
will alleviate the data transfer overhead."  §2.2: "If the sample option is
enabled, a uniform random sample of a size specified by the user is taken
before extracting the data from the database server."

Sampling happens server-side (before transfer), is uniform without
replacement, samples all columns with the *same* row indices (so multi-column
inputs stay row-aligned), and is reproducible given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping, Sequence


@dataclass(frozen=True)
class SampleSpec:
    """How much to sample.

    Exactly one of ``size`` (absolute row count) or ``fraction`` (0 < f <= 1)
    should be set; the paper's settings dialog exposes a size, the benchmarks
    sweep fractions.
    """

    size: int | None = None
    fraction: float | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if (self.size is None) == (self.fraction is None):
            raise ValueError("specify exactly one of size or fraction")
        if self.size is not None and self.size < 0:
            raise ValueError("sample size must be non-negative")
        if self.fraction is not None and not (0.0 < self.fraction <= 1.0):
            raise ValueError("sample fraction must be in (0, 1]")

    def resolve_size(self, row_count: int) -> int:
        if self.size is not None:
            return min(self.size, row_count)
        return min(row_count, max(1, round(row_count * float(self.fraction))))


def sample_indices(row_count: int, spec: SampleSpec) -> list[int]:
    """Choose the sampled row indices (sorted, without replacement)."""
    target = spec.resolve_size(row_count)
    if target >= row_count:
        return list(range(row_count))
    rng = random.Random(spec.seed)
    return sorted(rng.sample(range(row_count), target))


def sample_columns(columns: Mapping[str, Sequence[Any]],
                   spec: SampleSpec) -> dict[str, list[Any]]:
    """Sample every column with the same row indices (row-aligned)."""
    if not columns:
        return {}
    lengths = {len(values) for values in columns.values()}
    if len(lengths) != 1:
        raise ValueError(f"columns have differing lengths: {sorted(lengths)}")
    row_count = lengths.pop()
    indices = sample_indices(row_count, spec)
    return {name: [values[i] for i in indices] for name, values in columns.items()}
