"""Columnar chunk codec: typed column buffers for the version-2 wire protocol.

The legacy result path (:func:`repro.netproto.messages.encode_result`) tags
every cell individually, so serialisation cost scales with the number of
Python objects in the result.  This module instead ships each result column
as one contiguous typed buffer — fixed-width types via ``ndarray.tobytes()``,
var-width types as offsets + concatenated blob — so cost scales with bytes.
The binary layout is documented in the :mod:`repro.netproto.wire` module
docstring (see "Columnar chunk format").

Per-column compression routes every value buffer through the codec layer in
:mod:`repro.netproto.compression`, which means compression ratios are
measured on typed buffers rather than on tag-soup, matching how a production
wire protocol (and the paper's §2.1 transfer experiments) would behave.

``ChunkEncoder`` slices a result into row-range chunks; ``decode_chunk``
produces :class:`DecodedColumn` views that decode value buffers zero-copy
(``np.frombuffer``) and defer any Python-object materialisation to the
caller — the server side of chunked streaming and the client side of lazy
decoding respectively.

Dictionary-encoded strings (protocol version 3)
-----------------------------------------------
Low-cardinality string columns ship as ``TAG_DICT``: an ``int32`` codes
buffer per chunk plus the (much smaller) sorted unique-value table, sent
inline **once per column** (``_FLAG_DICT_INLINE`` on the first chunk; later
chunks reference the previously shipped dictionary via the decode-side
dictionary cache).  When the executor already produced a dictionary
:class:`~repro.sqldb.vector.Vector` (string scans, filters, GROUP BY keys),
the codes are re-used zero-copy; list-backed string columns are
dictionary-encoded at the wire when a cardinality sample says it pays off.
NULLs ride in the ordinary null bitmap — the bitmap, never a code or
placeholder value, is the source of truth on decode.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import WireFormatError
from ..sqldb.result import QueryResult, ResultColumn
from ..sqldb.storage import arrays_to_values
from ..sqldb.types import SQLType
from ..sqldb.vector import Vector
from . import compression as compression_mod
from .wire import decode_value, encode_value

#: Chunk blob magic + format version.
CHUNK_MAGIC = b"CB"
CHUNK_VERSION = 1

# dtype tags (documented in wire.py)
TAG_INT64 = 0x01
TAG_FLOAT64 = 0x02
TAG_BOOL = 0x03
TAG_UTF8 = 0x10
TAG_BINARY = 0x11
TAG_DICT = 0x12
TAG_OBJECT = 0x20

_FLAG_NULLS = 0x01
_FLAG_DICT_INLINE = 0x02

#: Smallest column / largest relative dictionary worth dictionary-encoding.
_DICT_MIN_ROWS = 16


def _dictionary_worthwhile(dictionary_size: int, row_count: int) -> bool:
    return row_count >= _DICT_MIN_ROWS and dictionary_size * 2 <= row_count


def _maybe_build_dictionary(values: list[Any]) -> Vector | None:
    """Dictionary-encode a list-backed string column when a sample says the
    cardinality is low enough to pay off.

    The cheap sample checks (type and cardinality, first 512 values) run
    before any full-column pass, so high-cardinality columns decline without
    scanning all values.
    """
    row_count = len(values)
    if row_count < _DICT_MIN_ROWS:
        return None
    sample = values[:512]
    if not all(isinstance(value, str) or value is None for value in sample):
        return None
    if len(set(sample)) * 2 > len(sample):
        return None
    if not all(isinstance(value, str) or value is None for value in values):
        return None
    vector = Vector.from_values(values, SQLType.STRING)
    if not _dictionary_worthwhile(len(vector.dictionary), row_count):
        return None
    return vector

#: Stable wire codes for SQL types (do not reorder: this is wire format).
_SQL_TYPE_CODES: dict[SQLType, int] = {
    SQLType.INTEGER: 0,
    SQLType.BIGINT: 1,
    SQLType.DOUBLE: 2,
    SQLType.REAL: 3,
    SQLType.STRING: 4,
    SQLType.BOOLEAN: 5,
    SQLType.BLOB: 6,
}
_SQL_TYPE_BY_CODE = {code: sql_type for sql_type, code in _SQL_TYPE_CODES.items()}

#: Preferred dtype tag per SQL type.
_SQL_TYPE_TAGS = {
    SQLType.INTEGER: TAG_INT64,
    SQLType.BIGINT: TAG_INT64,
    SQLType.DOUBLE: TAG_FLOAT64,
    SQLType.REAL: TAG_FLOAT64,
    SQLType.BOOLEAN: TAG_BOOL,
    SQLType.STRING: TAG_UTF8,
    SQLType.BLOB: TAG_BINARY,
}

#: Little-endian buffer dtypes for the fixed-width tags.
_TAG_DTYPES = {TAG_INT64: "<i8", TAG_FLOAT64: "<f8", TAG_BOOL: "|b1"}


# --------------------------------------------------------------------------- #
# encoding
# --------------------------------------------------------------------------- #
def _pack_section(data: bytes | memoryview, codec: str) -> tuple[bytes, int]:
    """Compress one value buffer and length-prefix it; returns (bytes, raw size)."""
    raw_size = len(data)
    packed = compression_mod.compress(data, codec)
    return struct.pack("<I", len(packed)) + packed, raw_size


class ChunkEncoder:
    """Encodes one query result into row-range chunk blobs.

    All per-column buffers are prepared eagerly at construction (so encoding
    errors surface before the result header is sent); :meth:`encode` then
    only slices, packs and compresses, which lets the server stream chunk
    *i* while the client is already consuming chunk *i - 1*.
    """

    def __init__(self, result: QueryResult, *,
                 codec: str = compression_mod.CODEC_NONE,
                 allow_dict: bool = False,
                 shipped_dictionaries: dict[int, np.ndarray] | None = None) -> None:
        self.codec = codec
        self.row_count = result.row_count
        self.allow_dict = allow_dict
        #: Column index -> dictionary already on the wire.  Streamed results
        #: encode each pipeline morsel with its own encoder but share this
        #: map, so a dictionary is only re-inlined when the morsel's
        #: dictionary object actually changed (identity comparison; holding
        #: the object also pins its id against reuse).
        self._shipped = shipped_dictionaries if shipped_dictionaries is not None \
            else {}
        self._columns: list[tuple[ResultColumn, int, Any, np.ndarray | None,
                                  np.ndarray | None]] = []
        for column in result.columns:
            tag = _SQL_TYPE_TAGS[column.sql_type]
            data: Any
            mask: np.ndarray | None
            dictionary: np.ndarray | None = None
            if tag in _TAG_DTYPES:
                try:
                    data, mask = column.buffer_arrays()
                    data = np.ascontiguousarray(data, dtype=_TAG_DTYPES[tag])
                except (OverflowError, TypeError, ValueError):
                    # e.g. a BIGINT column holding a >64-bit Python int
                    tag, data, mask = TAG_OBJECT, column.values, None
            elif tag == TAG_UTF8 and allow_dict \
                    and (vector := self._dictionary_vector(column)) is not None:
                tag = TAG_DICT
                data = np.ascontiguousarray(
                    vector.data if vector.mask is None
                    else np.where(vector.mask, 0, vector.data), dtype="<i4")
                mask = vector.mask
                dictionary = vector.dictionary
            else:
                values = column.values
                expected = str if tag == TAG_UTF8 else bytes
                if all(isinstance(v, expected) or v is None for v in values):
                    data = values
                    if any(v is None for v in values):
                        mask = np.fromiter((v is None for v in values),
                                           dtype=bool, count=len(values))
                    else:
                        mask = None
                else:
                    tag, data, mask = TAG_OBJECT, values, None
            self._columns.append((column, tag, data, mask, dictionary))

    def _dictionary_vector(self, column: ResultColumn) -> Vector | None:
        """A dictionary vector worth shipping as ``TAG_DICT``, else None."""
        vector = column.dict_vector() if hasattr(column, "dict_vector") else None
        if vector is not None:
            if _dictionary_worthwhile(len(vector.dictionary), len(vector)):
                return vector
            return None
        return _maybe_build_dictionary(column.values)

    def encode(self, row_start: int, row_stop: int) -> tuple[bytes, int]:
        """Encode rows ``[row_start, row_stop)``; returns (blob, raw bytes).

        ``raw bytes`` is the pre-compression size of the value buffers, the
        numerator of the compression ratio reported in transfer stats.
        """
        rows = row_stop - row_start
        parts = [CHUNK_MAGIC,
                 struct.pack("<BIH", CHUNK_VERSION, rows, len(self._columns))]
        raw_total = 0
        for index, (column, tag, data, mask, dictionary) in enumerate(self._columns):
            name_bytes = column.name.encode("utf-8")
            chunk_mask = mask[row_start:row_stop] if mask is not None else None
            if chunk_mask is not None and not chunk_mask.any():
                chunk_mask = None
            flags = _FLAG_NULLS if chunk_mask is not None else 0
            dict_inline = tag == TAG_DICT \
                and self._shipped.get(index) is not dictionary
            if dict_inline:
                flags |= _FLAG_DICT_INLINE
                self._shipped[index] = dictionary
            parts.append(struct.pack("<H", len(name_bytes)))
            parts.append(name_bytes)
            parts.append(struct.pack("<BBB", _SQL_TYPE_CODES[column.sql_type],
                                     tag, flags))
            if chunk_mask is not None:
                bitmap = np.packbits(chunk_mask).tobytes()
                parts.append(struct.pack("<I", len(bitmap)))
                parts.append(bitmap)
            if tag in _TAG_DTYPES:
                section, raw = _pack_section(data[row_start:row_stop].tobytes(),
                                             self.codec)
                parts.append(section)
                raw_total += raw
            elif tag == TAG_DICT:
                section, raw = _pack_section(data[row_start:row_stop].tobytes(),
                                             self.codec)
                parts.append(section)
                raw_total += raw
                if dict_inline:
                    encoded = [entry.encode("utf-8")
                               for entry in dictionary.tolist()]
                    offsets = np.zeros(len(encoded) + 1, dtype="<u4")
                    if encoded:
                        np.cumsum([len(item) for item in encoded],
                                  out=offsets[1:], dtype="<u4")
                    blob = b"".join(encoded)
                    for payload in (offsets.tobytes(), blob):
                        section, raw = _pack_section(payload, self.codec)
                        parts.append(section)
                        raw_total += raw
            elif tag in (TAG_UTF8, TAG_BINARY):
                chunk_values = data[row_start:row_stop]
                encoded = [b"" if v is None
                           else (v.encode("utf-8") if tag == TAG_UTF8 else v)
                           for v in chunk_values]
                offsets = np.zeros(len(encoded) + 1, dtype="<u4")
                if encoded:
                    np.cumsum([len(item) for item in encoded],
                              out=offsets[1:], dtype="<u4")
                blob = b"".join(encoded)
                for payload in (offsets.tobytes(), blob):
                    section, raw = _pack_section(payload, self.codec)
                    parts.append(section)
                    raw_total += raw
            else:  # TAG_OBJECT
                payload = encode_value(list(data[row_start:row_stop]))
                section, raw = _pack_section(payload, self.codec)
                parts.append(section)
                raw_total += raw
        return b"".join(parts), raw_total


def encode_result_chunk(result: QueryResult, row_start: int = 0,
                        row_stop: int | None = None, *,
                        codec: str = compression_mod.CODEC_NONE,
                        allow_dict: bool = False) -> tuple[bytes, int]:
    """One-shot helper: encode a row range of ``result`` as a chunk blob.

    With ``allow_dict`` the dictionary (if any) is inlined, so the blob stays
    self-contained.
    """
    if row_stop is None:
        row_stop = result.row_count
    return ChunkEncoder(result, codec=codec,
                        allow_dict=allow_dict).encode(row_start, row_stop)


# --------------------------------------------------------------------------- #
# decoding
# --------------------------------------------------------------------------- #
@dataclass
class DecodedColumn:
    """A decoded view over one column of a chunk blob.

    Fixed-width columns expose ``data`` as a zero-copy ``np.frombuffer`` view
    of the received buffer; var-width and object columns keep their sections
    and decode on demand (:meth:`materialise`), so the cost of building
    Python strings is only paid when the consumer actually touches values.
    """

    name: str
    sql_type: SQLType
    tag: int
    row_count: int
    mask: np.ndarray | None
    data: np.ndarray | None = None      # fixed-width value view
    offsets: np.ndarray | None = None   # var-width section
    blob: bytes | None = None           # var-width section
    objects: bytes | None = None        # TAG_OBJECT section (value-codec bytes)
    codes: np.ndarray | None = None     # TAG_DICT codes view (int32)
    dictionary: np.ndarray | None = None  # TAG_DICT unique-value table

    def materialise(self) -> tuple[Any, np.ndarray | None]:
        """Produce the ``(data, mask)`` pair a :class:`ResultColumn` wants.

        Returns ``(ndarray, mask)`` for fixed-width columns (zero-copy),
        ``(Vector, None)`` for dictionary columns (codes stay encoded; the
        mask travels inside the vector) and ``(list-with-Nones, None)`` for
        var-width/object columns.
        """
        if self.data is not None:
            return self.data, self.mask
        if self.codes is not None:
            vector = Vector.from_codes(self.codes, self.dictionary,
                                       self.mask, self.sql_type)
            return vector, None
        if self.objects is not None:
            values = decode_value(self.objects)
            if not isinstance(values, list):
                raise WireFormatError("object column payload is not a list")
            return values, None
        assert self.offsets is not None and self.blob is not None
        starts = self.offsets[:-1]
        stops = self.offsets[1:]
        if self.tag == TAG_UTF8:
            values: list[Any] = [
                self.blob[start:stop].decode("utf-8")
                for start, stop in zip(starts.tolist(), stops.tolist())
            ]
        else:
            values = [self.blob[start:stop]
                      for start, stop in zip(starts.tolist(), stops.tolist())]
        if self.mask is not None:
            for index in np.flatnonzero(self.mask):
                values[index] = None
        return values, None


class _BlobReader:
    __slots__ = ("data", "offset")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def read(self, count: int) -> bytes:
        if self.offset + count > len(self.data):
            raise WireFormatError("truncated columnar chunk")
        piece = self.data[self.offset:self.offset + count]
        self.offset += count
        return piece

    def unpack(self, fmt: str) -> tuple:
        size = struct.calcsize(fmt)
        return struct.unpack(fmt, self.read(size))


def decode_chunk(blob: bytes, *,
                 dictionaries: dict[int, np.ndarray] | None = None
                 ) -> tuple[int, list[DecodedColumn]]:
    """Decode one chunk blob into ``(row_count, decoded columns)``.

    ``dictionaries`` is the cross-chunk dictionary cache (column index ->
    unique-value table): an inline dictionary is stored into it, and a
    ``TAG_DICT`` chunk without an inline dictionary resolves against it.
    Callers decoding a multi-chunk stream must pass the same dict for every
    chunk (the assembler does); a standalone chunk is self-contained.
    """
    reader = _BlobReader(blob)
    if reader.read(2) != CHUNK_MAGIC:
        raise WireFormatError("bad columnar chunk magic")
    version, row_count, column_count = reader.unpack("<BIH")
    if version != CHUNK_VERSION:
        raise WireFormatError(f"unsupported columnar chunk version {version}")
    columns: list[DecodedColumn] = []
    for column_index in range(column_count):
        (name_len,) = reader.unpack("<H")
        name = reader.read(name_len).decode("utf-8")
        type_code, tag, flags = reader.unpack("<BBB")
        try:
            sql_type = _SQL_TYPE_BY_CODE[type_code]
        except KeyError:
            raise WireFormatError(f"unknown SQL type code {type_code}") from None
        mask = None
        if flags & _FLAG_NULLS:
            (bitmap_len,) = reader.unpack("<I")
            bitmap = np.frombuffer(reader.read(bitmap_len), dtype=np.uint8)
            mask = np.unpackbits(bitmap, count=row_count).astype(bool)

        def read_section() -> bytes:
            (section_len,) = reader.unpack("<I")
            return compression_mod.decompress(reader.read(section_len))

        if tag in _TAG_DTYPES:
            buffer = read_section()
            data = np.frombuffer(buffer, dtype=_TAG_DTYPES[tag])
            if len(data) != row_count:
                raise WireFormatError("column buffer length mismatch")
            columns.append(DecodedColumn(name, sql_type, tag, row_count,
                                         mask, data=data))
        elif tag == TAG_DICT:
            codes = np.frombuffer(read_section(), dtype="<i4")
            if len(codes) != row_count:
                raise WireFormatError("dictionary codes length mismatch")
            if flags & _FLAG_DICT_INLINE:
                offsets = np.frombuffer(read_section(), dtype="<u4")
                dict_blob = read_section()
                entries = np.empty(max(len(offsets) - 1, 0), dtype=object)
                for entry_index, (start, stop) in enumerate(
                        zip(offsets[:-1].tolist(), offsets[1:].tolist())):
                    entries[entry_index] = dict_blob[start:stop].decode("utf-8")
                if dictionaries is not None:
                    dictionaries[column_index] = entries
            else:
                if dictionaries is None or column_index not in dictionaries:
                    raise WireFormatError(
                        "dictionary chunk references an unshipped dictionary")
                entries = dictionaries[column_index]
            if row_count and (not len(entries) or int(codes.max()) >= len(entries)
                              or int(codes.min()) < 0):
                raise WireFormatError("dictionary code out of range")
            columns.append(DecodedColumn(name, sql_type, tag, row_count, mask,
                                         codes=codes, dictionary=entries))
        elif tag in (TAG_UTF8, TAG_BINARY):
            offsets = np.frombuffer(read_section(), dtype="<u4")
            if len(offsets) != row_count + 1:
                raise WireFormatError("offsets buffer length mismatch")
            columns.append(DecodedColumn(name, sql_type, tag, row_count, mask,
                                         offsets=offsets, blob=read_section()))
        elif tag == TAG_OBJECT:
            columns.append(DecodedColumn(name, sql_type, tag, row_count, mask,
                                         objects=read_section()))
        else:
            raise WireFormatError(f"unknown dtype tag {tag:#x}")
    if reader.offset != len(blob):
        raise WireFormatError("trailing garbage after columnar chunk")
    return row_count, columns


def columns_from_chunks(column_index: int, name: str, sql_type: SQLType,
                        chunks: list[list[DecodedColumn]],
                        total_rows: int) -> ResultColumn:
    """Assemble one lazy :class:`ResultColumn` from its per-chunk pieces.

    Single-chunk fixed-width columns stay zero-copy views of the received
    buffer; multi-chunk columns concatenate on first touch.
    """
    pieces = [chunk[column_index] for chunk in chunks]

    def loader() -> tuple[Any, np.ndarray | None]:
        if len(pieces) == 1:
            return pieces[0].materialise()
        if all(piece.codes is not None for piece in pieces) and all(
                piece.dictionary is pieces[0].dictionary for piece in pieces):
            # one shared dictionary: concatenating the code buffers is the
            # whole merge — the column stays dictionary-encoded client-side
            codes = np.concatenate([piece.codes for piece in pieces])
            if any(piece.mask is not None for piece in pieces):
                mask = np.concatenate([
                    piece.mask if piece.mask is not None
                    else np.zeros(len(piece.codes), dtype=bool)
                    for piece in pieces
                ])
            else:
                mask = None
            return Vector.from_codes(codes, pieces[0].dictionary,
                                     mask, sql_type), None
        datas, masks, any_mask = [], [], False
        for piece in pieces:
            data, mask = piece.materialise()
            datas.append(data)
            masks.append(mask)
            any_mask = any_mask or mask is not None
        if all(isinstance(data, np.ndarray) for data in datas):
            merged = np.concatenate(datas) if datas else np.empty(0)
            if not any_mask:
                return merged, None
            full_mask = np.concatenate([
                mask if mask is not None else np.zeros(len(data), dtype=bool)
                for data, mask in zip(datas, masks)
            ])
            return merged, full_mask
        values: list[Any] = []
        for data, mask in zip(datas, masks):
            if isinstance(data, Vector):
                values.extend(data.to_list())
            else:
                values.extend(arrays_to_values(data, mask))
        return values, None

    return ResultColumn.lazy(name, sql_type, total_rows, loader)
