"""Server-side user registry and challenge/response authentication.

The devUDF settings dialog (Figure 2) asks for the usual client connection
parameters: host, port, database, user and password.  The server verifies the
password with a salted challenge/response (in the spirit of MonetDB's MAPI
handshake) so that the plaintext password never crosses the wire; the same
password doubles as the encryption key for sensitive data transfers (§2.2).
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass, field

from ..errors import AuthenticationError


def _password_digest(password: str, salt: bytes) -> bytes:
    return hashlib.pbkdf2_hmac("sha256", password.encode("utf-8"), salt, 5000)


@dataclass
class UserAccount:
    username: str
    salt: bytes
    digest: bytes
    database: str = "demo"


def compute_response(password: str, salt: bytes, challenge: bytes) -> bytes:
    """The client's proof: HMAC(password-digest, challenge)."""
    digest = _password_digest(password, salt)
    return hmac.new(digest, challenge, hashlib.sha256).digest()


@dataclass
class UserRegistry:
    """Registered database accounts, keyed by username."""

    accounts: dict[str, UserAccount] = field(default_factory=dict)

    def add_user(self, username: str, password: str, *, database: str = "demo") -> UserAccount:
        salt = os.urandom(16)
        account = UserAccount(
            username=username,
            salt=salt,
            digest=_password_digest(password, salt),
            database=database,
        )
        self.accounts[username] = account
        return account

    def has_user(self, username: str) -> bool:
        return username in self.accounts

    def challenge_for(self, username: str) -> tuple[bytes, bytes]:
        """Return (salt, fresh challenge) for the login handshake."""
        account = self.accounts.get(username)
        if account is None:
            # Return a decoy salt so user enumeration is not trivially possible;
            # verification will still fail.
            return hashlib.sha256(username.encode()).digest()[:16], os.urandom(16)
        return account.salt, os.urandom(16)

    def verify(self, username: str, challenge: bytes, response: bytes,
               *, database: str | None = None) -> UserAccount:
        """Verify a challenge response; raise on failure."""
        account = self.accounts.get(username)
        if account is None:
            raise AuthenticationError(f"unknown user {username!r}")
        expected = hmac.new(account.digest, challenge, hashlib.sha256).digest()
        if not hmac.compare_digest(expected, response):
            raise AuthenticationError("invalid credentials")
        if database is not None and database != account.database:
            raise AuthenticationError(
                f"user {username!r} has no access to database {database!r}"
            )
        return account
