"""Fault injection for the wire protocol — the chaos side of resilience.

Two complementary tools drive the chaos test suite:

* :class:`ChaosProxy` — a real TCP proxy that sits between a client and a
  :class:`~repro.netproto.server.SocketServer` and injects *byte-level*
  faults into the relayed stream: kill the connection after N bytes (a
  mid-frame drop), flip a byte at a fixed offset (corruption), chop writes
  into tiny partial sends, or delay every chunk.  Faults are keyed on byte
  counts, not timers, so every failure is deterministic and reproducible.

* :class:`FaultyTransport` — an in-process transport wrapper that injects
  *call-level* faults (raise on the Nth send/receive, hand the client a
  garbage reply) without any sockets, for tests that need tight control
  over exactly which protocol step fails.

Neither is imported by production code paths; the server's own
``fault_hook`` (:class:`~repro.netproto.server.DatabaseServer`) covers
server-side injection at named points.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from typing import Any

from ..errors import ConnectionLostError

__all__ = ["ChaosProxy", "FaultSpec", "FaultyTransport"]


@dataclass
class FaultSpec:
    """What the proxy does to the *server → client* byte stream.

    All offsets count downstream (server-to-client) payload bytes since the
    connection opened, so a fault lands on the same frame every run.
    """

    #: Abruptly close both directions once this many bytes were relayed
    #: downstream (``None`` disables).  Landing mid-frame is the point.
    kill_after_bytes: int | None = None
    #: XOR the byte at this downstream offset with 0xFF (``None`` disables).
    corrupt_at: int | None = None
    #: Relay downstream in slices of at most this many bytes (partial
    #: writes; ``None`` relays whole reads).
    chop: int | None = None
    #: Sleep this long before relaying each downstream read (slow network).
    delay: float = 0.0
    #: Stop reading from the server once this many downstream bytes were
    #: relayed (``None`` disables).  The connection stays open but no more
    #: bytes move — a client that stopped reading mid-stream.  Keyed on
    #: bytes so the handshake passes and the stall lands in the result.
    stall_after_bytes: int | None = None


class ChaosProxy:
    """A TCP proxy that injects :class:`FaultSpec` faults per connection.

    Each accepted client connection gets its own upstream connection and its
    own fault byte-counters, so a multi-connection test sees the same fault
    on every connection rather than a shared global budget.
    """

    def __init__(self, upstream: tuple[str, int], spec: FaultSpec | None = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.upstream = upstream
        self.spec = spec or FaultSpec()
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self._running = False
        self._accept_thread: threading.Thread | None = None
        self._threads: list[threading.Thread] = []
        self._conns: list[socket.socket] = []
        self._lock = threading.Lock()
        self.connections_handled = 0
        self.connections_killed = 0

    @property
    def address(self) -> tuple[str, int]:
        addr = self._listener.getsockname()
        return addr[0], addr[1]

    def start(self) -> tuple[str, int]:
        self._running = True
        self._accept_thread = threading.Thread(target=self._accept_loop,
                                               daemon=True)
        self._accept_thread.start()
        return self.address

    def stop(self) -> None:
        self._running = False
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None
        with self._lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            _close_quietly(conn)
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads.clear()
        self._listener.close()

    def __enter__(self) -> "ChaosProxy":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while self._running:
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                server = socket.create_connection(self.upstream, timeout=10)
            except OSError:
                _close_quietly(client)
                continue
            self.connections_handled += 1
            with self._lock:
                self._conns.extend((client, server))
            state = _ConnectionState(self, client, server)
            up = threading.Thread(target=state.relay_upstream, daemon=True)
            down = threading.Thread(target=state.relay_downstream, daemon=True)
            self._threads.extend((up, down))
            up.start()
            down.start()


class _ConnectionState:
    """Per-connection relay with its own downstream fault counters."""

    def __init__(self, proxy: ChaosProxy, client: socket.socket,
                 server: socket.socket) -> None:
        self.proxy = proxy
        self.spec = proxy.spec
        self.client = client
        self.server = server
        self.downstream_bytes = 0

    def relay_upstream(self) -> None:
        """client → server, unmodified."""
        _pump(self.client, self.server)

    def relay_downstream(self) -> None:
        """server → client, with faults applied."""
        spec = self.spec
        try:
            while True:
                if spec.stall_after_bytes is not None and \
                        self.downstream_bytes >= spec.stall_after_bytes:
                    # stop reading but keep the connection open: the server
                    # sees a reader that simply went quiet
                    while self.proxy._running:
                        time.sleep(0.05)
                    break
                data = self.server.recv(65536)
                if not data:
                    break
                if spec.delay:
                    time.sleep(spec.delay)
                data = self._apply_corruption(data)
                if not self._send_with_kill(data):
                    return
        except OSError:
            pass
        finally:
            self._kill()

    # -- fault application --------------------------------------------- #
    def _apply_corruption(self, data: bytes) -> bytes:
        offset = self.spec.corrupt_at
        if offset is not None and \
                self.downstream_bytes <= offset < self.downstream_bytes + len(data):
            local = offset - self.downstream_bytes
            data = data[:local] + bytes([data[local] ^ 0xFF]) + data[local + 1:]
        return data

    def _send_with_kill(self, data: bytes) -> bool:
        """Relay ``data`` downstream; returns False once the kill fired."""
        spec = self.spec
        view = memoryview(data)
        while view:
            slice_len = len(view) if spec.chop is None else min(spec.chop, len(view))
            if spec.kill_after_bytes is not None:
                budget = spec.kill_after_bytes - self.downstream_bytes
                if budget <= 0:
                    self.proxy.connections_killed += 1
                    self._kill()
                    return False
                slice_len = min(slice_len, budget)
            try:
                sent = self.client.send(view[:slice_len])
            except OSError:
                self._kill()
                return False
            self.downstream_bytes += sent
            view = view[sent:]
        return True

    def _kill(self) -> None:
        _close_quietly(self.client)
        _close_quietly(self.server)


def _pump(source: socket.socket, sink: socket.socket) -> None:
    try:
        while True:
            data = source.recv(65536)
            if not data:
                break
            sink.sendall(data)
    except OSError:
        pass
    finally:
        _close_quietly(source)
        _close_quietly(sink)


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


class FaultyTransport:
    """Wraps a transport, injecting faults at programmable call counts.

    ``fail_receive_at=3`` makes the 3rd ``receive`` raise
    :class:`~repro.errors.ConnectionLostError` (and every later call too —
    a dead connection stays dead until ``heal()``); ``garbage_receive_at``
    instead substitutes a nonsense reply exactly once.  Counts are
    1-indexed across the transport's lifetime.
    """

    def __init__(self, inner: Any, *,
                 fail_send_at: int | None = None,
                 fail_receive_at: int | None = None,
                 garbage_receive_at: int | None = None) -> None:
        self.inner = inner
        self.fail_send_at = fail_send_at
        self.fail_receive_at = fail_receive_at
        self.garbage_receive_at = garbage_receive_at
        self.sends = 0
        self.receives = 0
        self.faults_fired = 0

    @property
    def closed(self) -> bool:
        return self.inner.closed

    def heal(self) -> None:
        """Clear every pending fault; subsequent calls pass through."""
        self.fail_send_at = None
        self.fail_receive_at = None
        self.garbage_receive_at = None

    def send(self, message: dict[str, Any]) -> None:
        self.sends += 1
        if self.fail_send_at is not None and self.sends >= self.fail_send_at:
            self.faults_fired += 1
            raise ConnectionLostError("injected send failure")
        self.inner.send(message)

    def receive(self) -> dict[str, Any]:
        self.receives += 1
        if self.fail_receive_at is not None \
                and self.receives >= self.fail_receive_at:
            self.faults_fired += 1
            raise ConnectionLostError("injected receive failure")
        reply = self.inner.receive()
        if self.garbage_receive_at == self.receives:
            self.faults_fired += 1
            return {"type": "garbage", "noise": "\x00\xff not a real reply"}
        return reply

    def exchange(self, message: dict[str, Any]) -> dict[str, Any]:
        self.send(message)
        return self.receive()

    def close(self) -> None:
        self.inner.close()
