"""Password-keyed encryption of extracted debug data.

Paper §2.1/§2.2: "If encryption is requested, the data is encrypted by the
extract function before being transferred using the password of the database
user as a key.  The client then reverses the encryption".

The reproduction implements an authenticated stream cipher from the standard
library only (no external crypto dependency is available offline):

* key derivation: PBKDF2-HMAC-SHA256 over the password with a random salt,
* keystream: SHA-256 in counter mode over (key, nonce, block index),
* integrity: HMAC-SHA256 over the ciphertext (encrypt-then-MAC).

This is a faithful stand-in for "encrypt with the user's password": it
round-trips exactly, rejects wrong passwords, and has measurable CPU cost for
the C3 benchmark.  It is **not** intended as production-grade cryptography.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct

from ..errors import DecryptionError

_MAGIC = b"dUE1"
_SALT_BYTES = 16
_NONCE_BYTES = 16
_TAG_BYTES = 32
_PBKDF2_ITERATIONS = 2000  # low on purpose: benchmark-friendly, still non-trivial
_BLOCK_BYTES = 32


def derive_key(password: str, salt: bytes, *, iterations: int = _PBKDF2_ITERATIONS) -> bytes:
    """Derive a 32-byte key from the database user's password."""
    return hashlib.pbkdf2_hmac("sha256", password.encode("utf-8"), salt, iterations)


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    for counter in range((length + _BLOCK_BYTES - 1) // _BLOCK_BYTES):
        blocks.append(hashlib.sha256(key + nonce + struct.pack(">Q", counter)).digest())
    return b"".join(blocks)[:length]


def encrypt(data: bytes, password: str) -> bytes:
    """Encrypt ``data`` with a key derived from ``password``.

    Output layout: ``MAGIC | salt | nonce | tag | ciphertext``.
    """
    salt = os.urandom(_SALT_BYTES)
    nonce = os.urandom(_NONCE_BYTES)
    key = derive_key(password, salt)
    ciphertext = bytes(a ^ b for a, b in zip(data, _keystream(key, nonce, len(data))))
    tag = hmac.new(key, nonce + ciphertext, hashlib.sha256).digest()
    return _MAGIC + salt + nonce + tag + ciphertext


def decrypt(blob: bytes, password: str) -> bytes:
    """Reverse :func:`encrypt`; raises :class:`DecryptionError` on a wrong key
    or corrupted payload."""
    header_len = len(_MAGIC) + _SALT_BYTES + _NONCE_BYTES + _TAG_BYTES
    if len(blob) < header_len or not blob.startswith(_MAGIC):
        raise DecryptionError("payload is not a devUDF encrypted blob")
    offset = len(_MAGIC)
    salt = blob[offset:offset + _SALT_BYTES]
    offset += _SALT_BYTES
    nonce = blob[offset:offset + _NONCE_BYTES]
    offset += _NONCE_BYTES
    tag = blob[offset:offset + _TAG_BYTES]
    offset += _TAG_BYTES
    ciphertext = blob[offset:]
    key = derive_key(password, salt)
    expected = hmac.new(key, nonce + ciphertext, hashlib.sha256).digest()
    if not hmac.compare_digest(tag, expected):
        raise DecryptionError("integrity check failed (wrong password or corrupted data)")
    return bytes(a ^ b for a, b in zip(ciphertext, _keystream(key, nonce, len(ciphertext))))


def is_encrypted(blob: bytes) -> bool:
    """True when ``blob`` looks like output of :func:`encrypt`."""
    return blob.startswith(_MAGIC)
