"""Binary wire encoding for the client protocol.

devUDF talks to the database over a client connection (JDBC in the paper); the
reproduction ships its own small length-prefixed binary protocol so that the
data-transfer experiments (compression / sampling / encryption, paper §2.1)
can measure real bytes-on-the-wire rather than Python object sizes.

The codec is self-describing and supports the value types a result set can
contain: ``None``, booleans, integers, floats, strings, byte strings, lists
and string-keyed dictionaries.  Frames are ``MAGIC | length | payload``.
"""

from __future__ import annotations

import struct
from typing import Any, BinaryIO

from ..errors import WireFormatError

#: Frame magic marker (helps catch stream desynchronisation early).
MAGIC = b"dU"

#: Type tags used by the value codec.
_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_DICT = b"M"

_MAX_FRAME = 1 << 31  # defensive upper bound on frame sizes


# --------------------------------------------------------------------------- #
# value codec
# --------------------------------------------------------------------------- #
def encode_value(value: Any) -> bytes:
    """Encode a single value (recursively) to bytes."""
    if value is None:
        return _TAG_NONE
    if value is True:
        return _TAG_TRUE
    if value is False:
        return _TAG_FALSE
    if isinstance(value, int):
        data = str(value).encode("ascii")
        return _TAG_INT + struct.pack(">I", len(data)) + data
    if isinstance(value, float):
        return _TAG_FLOAT + struct.pack(">d", value)
    if isinstance(value, str):
        data = value.encode("utf-8")
        return _TAG_STR + struct.pack(">I", len(data)) + data
    if isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        return _TAG_BYTES + struct.pack(">I", len(data)) + data
    if isinstance(value, (list, tuple)):
        parts = [_TAG_LIST, struct.pack(">I", len(value))]
        for item in value:
            parts.append(encode_value(item))
        return b"".join(parts)
    if isinstance(value, dict):
        parts = [_TAG_DICT, struct.pack(">I", len(value))]
        for key, item in value.items():
            if not isinstance(key, str):
                raise WireFormatError(f"dictionary keys must be strings, got {key!r}")
            parts.append(encode_value(key))
            parts.append(encode_value(item))
        return b"".join(parts)
    # numpy scalars and arrays reach the protocol from UDF results; normalise
    # them rather than rejecting.
    item_method = getattr(value, "item", None)
    if callable(item_method) and getattr(value, "shape", None) == ():
        return encode_value(value.item())
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return encode_value(tolist())
    raise WireFormatError(f"cannot encode value of type {type(value).__name__}")


class _Reader:
    """Sequential reader over a bytes buffer."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def read(self, count: int) -> bytes:
        if self.offset + count > len(self.data):
            raise WireFormatError("truncated payload")
        chunk = self.data[self.offset:self.offset + count]
        self.offset += count
        return chunk

    def read_length(self) -> int:
        return struct.unpack(">I", self.read(4))[0]


def decode_value(data: bytes) -> Any:
    """Decode a single value; the payload must be fully consumed."""
    reader = _Reader(data)
    value = _decode(reader)
    if reader.offset != len(data):
        raise WireFormatError(
            f"trailing garbage after value ({len(data) - reader.offset} bytes)"
        )
    return value


def _decode(reader: _Reader) -> Any:
    tag = reader.read(1)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        return int(reader.read(reader.read_length()).decode("ascii"))
    if tag == _TAG_FLOAT:
        return struct.unpack(">d", reader.read(8))[0]
    if tag == _TAG_STR:
        return reader.read(reader.read_length()).decode("utf-8")
    if tag == _TAG_BYTES:
        return reader.read(reader.read_length())
    if tag == _TAG_LIST:
        count = reader.read_length()
        return [_decode(reader) for _ in range(count)]
    if tag == _TAG_DICT:
        count = reader.read_length()
        result = {}
        for _ in range(count):
            key = _decode(reader)
            result[key] = _decode(reader)
        return result
    raise WireFormatError(f"unknown type tag {tag!r}")


# --------------------------------------------------------------------------- #
# framing
# --------------------------------------------------------------------------- #
def encode_frame(payload: bytes) -> bytes:
    """Wrap a payload in a length-prefixed frame."""
    if len(payload) >= _MAX_FRAME:
        raise WireFormatError("frame too large")
    return MAGIC + struct.pack(">I", len(payload)) + payload


def decode_frame(data: bytes) -> tuple[bytes, bytes]:
    """Split one frame off the front of ``data``; returns (payload, rest)."""
    if len(data) < 6:
        raise WireFormatError("incomplete frame header")
    if data[:2] != MAGIC:
        raise WireFormatError("bad frame magic")
    (length,) = struct.unpack(">I", data[2:6])
    if len(data) < 6 + length:
        raise WireFormatError("incomplete frame payload")
    return data[6:6 + length], data[6 + length:]


def write_frame(stream: BinaryIO, payload: bytes) -> int:
    """Write one frame to a binary stream; returns bytes written."""
    frame = encode_frame(payload)
    stream.write(frame)
    stream.flush()
    return len(frame)


def read_frame(stream: BinaryIO) -> bytes:
    """Read exactly one frame from a binary stream."""
    header = _read_exact(stream, 6)
    if header[:2] != MAGIC:
        raise WireFormatError("bad frame magic")
    (length,) = struct.unpack(">I", header[2:6])
    return _read_exact(stream, length)


def _read_exact(stream: BinaryIO, count: int) -> bytes:
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            raise WireFormatError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# --------------------------------------------------------------------------- #
# message helpers
# --------------------------------------------------------------------------- #
def encode_message(message: dict[str, Any]) -> bytes:
    """Encode a message dict into a framed payload."""
    return encode_frame(encode_value(message))


def decode_message(frame_payload: bytes) -> dict[str, Any]:
    """Decode a frame payload back into a message dict."""
    value = decode_value(frame_payload)
    if not isinstance(value, dict):
        raise WireFormatError("message payload is not a dictionary")
    return value
