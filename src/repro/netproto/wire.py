"""Binary wire encoding for the client protocol.

devUDF talks to the database over a client connection (JDBC in the paper); the
reproduction ships its own small length-prefixed binary protocol so that the
data-transfer experiments (compression / sampling / encryption, paper §2.1)
can measure real bytes-on-the-wire rather than Python object sizes.

Frame layout
============
Every message travels as one frame::

    MAGIC (2 bytes, b"dU") | payload length (u32 BE) | payload

The payload of a control message is a string-keyed dictionary encoded with
the self-describing *value codec* below.  Result data additionally uses the
*columnar chunk format* (protocol version 2, :mod:`repro.netproto.columnar`).

Value codec
===========
Tag-prefixed, recursive, self-describing.  Tags:

    ``N``         None
    ``T`` / ``F`` booleans
    ``I``         integer, fixed-width i64 big-endian (8 bytes)
    ``J``         big integer fallback: u32 length + two's-complement bytes
                  (arbitrary precision, used when the value overflows i64)
    ``D``         float, IEEE-754 f64 big-endian
    ``S``         string: u32 byte length + UTF-8 bytes
    ``B``         bytes: u32 length + raw bytes
    ``L``         list: u32 count + encoded items
    ``M``         dict: u32 count + alternating encoded string keys / values

Columnar chunk format (protocol version 2)
==========================================
Query results are shipped as whole typed column buffers instead of one tagged
value per cell, so transfer cost scales with bytes rather than Python object
count.  A ``result`` header message announces the schema and chunk count and
is followed by ``result_chunk`` messages, each carrying a binary chunk blob::

    "CB" | version u8 | row_count u32 | column_count u16
    then per column:
        name        u16 length + UTF-8 bytes
        sql type    u8  (stable code, see columnar._SQL_TYPE_CODES)
        dtype tag   u8  (see below)
        flags       u8  (bit 0: null bitmap present;
                         bit 1: inline dictionary present, TAG_DICT only)
        [null bitmap: u32 length + packed bits, row-major]
        sections    each ``u32 length + bytes``; every value section is
                    routed through the compression codec layer
                    (:mod:`repro.netproto.compression`) and therefore starts
                    with a one-byte codec id

Dtype tags and their sections:

    0x01 INT64    one section: little-endian i64 value buffer
    0x02 FLOAT64  one section: little-endian f64 value buffer
    0x03 BOOL     one section: one byte per value
    0x10 UTF8     two sections: u32 LE offsets (n+1 entries) + UTF-8 blob
    0x11 BINARY   two sections: u32 LE offsets (n+1 entries) + raw blob
    0x12 DICT     dictionary-encoded strings (protocol version 3): one
                  section of little-endian i32 codes indexing the column's
                  sorted unique-value table; when flags bit 1 is set the
                  table follows as two more sections (u32 LE offsets + UTF-8
                  blob).  The dictionary ships inline once per column — the
                  first chunk carries it, later chunks reference it through
                  the decoder's per-result dictionary cache.  NULL rows are
                  marked by the null bitmap only (their code is a
                  placeholder, not a sentinel).
    0x20 OBJECT   one section: value-codec encoded list (escape hatch for
                  values a typed buffer cannot hold, e.g. >64-bit integers)

Version negotiation
===================
The client advertises ``protocol_version`` in its ``hello`` message; the
server replies in the ``challenge`` message with the negotiated version
``min(client, server)``.  Clients that do not send a version are treated as
version 1 and receive the legacy row-oriented dict payload produced by
:func:`repro.netproto.messages.encode_result` in a single ``result`` frame;
version 2 peers use the columnar chunk stream above; version 3 peers
additionally receive low-cardinality string columns dictionary-encoded as
``TAG_DICT``.  The negotiation covers the *result payload format* only —
both peers must share this value codec (the ``I`` integer encoding changed
from length-prefixed ASCII decimal to fixed i64 at the same time the
columnar format was introduced, so builds from before that point are not
byte-compatible at the codec level).
"""

from __future__ import annotations

import struct
from typing import Any, BinaryIO

from ..errors import ConnectionLostError, WireFormatError

#: Frame magic marker (helps catch stream desynchronisation early).
MAGIC = b"dU"

#: Type tags used by the value codec.
_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_BIGINT = b"J"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_DICT = b"M"

#: Hard cap on a single frame's payload.  A hostile (or corrupted) length
#: prefix would otherwise make the reader allocate up to 2 GiB before a
#: single payload byte is validated; no legitimate message comes close —
#: result data ships in 64k-row chunks well under a megabyte each.  Both
#: sides enforce the same cap so a conforming peer can never emit a frame
#: the other refuses.
MAX_FRAME_BYTES = 64 * 1024 * 1024


# --------------------------------------------------------------------------- #
# value codec
# --------------------------------------------------------------------------- #
def encode_value(value: Any) -> bytes:
    """Encode a single value (recursively) to bytes."""
    if value is None:
        return _TAG_NONE
    if value is True:
        return _TAG_TRUE
    if value is False:
        return _TAG_FALSE
    if isinstance(value, int):
        if -(1 << 63) <= value < (1 << 63):
            return _TAG_INT + struct.pack(">q", value)
        data = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
        return _TAG_BIGINT + struct.pack(">I", len(data)) + data
    if isinstance(value, float):
        return _TAG_FLOAT + struct.pack(">d", value)
    if isinstance(value, str):
        data = value.encode("utf-8")
        return _TAG_STR + struct.pack(">I", len(data)) + data
    if isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        return _TAG_BYTES + struct.pack(">I", len(data)) + data
    if isinstance(value, (list, tuple)):
        parts = [_TAG_LIST, struct.pack(">I", len(value))]
        for item in value:
            parts.append(encode_value(item))
        return b"".join(parts)
    if isinstance(value, dict):
        parts = [_TAG_DICT, struct.pack(">I", len(value))]
        for key, item in value.items():
            if not isinstance(key, str):
                raise WireFormatError(f"dictionary keys must be strings, got {key!r}")
            parts.append(encode_value(key))
            parts.append(encode_value(item))
        return b"".join(parts)
    # numpy scalars and arrays reach the protocol from UDF results; normalise
    # them rather than rejecting.
    item_method = getattr(value, "item", None)
    if callable(item_method) and getattr(value, "shape", None) == ():
        return encode_value(value.item())
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return encode_value(tolist())
    raise WireFormatError(f"cannot encode value of type {type(value).__name__}")


class _Reader:
    """Sequential reader over a bytes buffer."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def read(self, count: int) -> bytes:
        if self.offset + count > len(self.data):
            raise WireFormatError("truncated payload")
        chunk = self.data[self.offset:self.offset + count]
        self.offset += count
        return chunk

    def read_length(self) -> int:
        return struct.unpack(">I", self.read(4))[0]


def decode_value(data: bytes) -> Any:
    """Decode a single value; the payload must be fully consumed."""
    reader = _Reader(data)
    value = _decode(reader)
    if reader.offset != len(data):
        raise WireFormatError(
            f"trailing garbage after value ({len(data) - reader.offset} bytes)"
        )
    return value


def _decode(reader: _Reader) -> Any:
    tag = reader.read(1)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        return struct.unpack(">q", reader.read(8))[0]
    if tag == _TAG_BIGINT:
        return int.from_bytes(reader.read(reader.read_length()), "big", signed=True)
    if tag == _TAG_FLOAT:
        return struct.unpack(">d", reader.read(8))[0]
    if tag == _TAG_STR:
        return reader.read(reader.read_length()).decode("utf-8")
    if tag == _TAG_BYTES:
        return reader.read(reader.read_length())
    if tag == _TAG_LIST:
        count = reader.read_length()
        return [_decode(reader) for _ in range(count)]
    if tag == _TAG_DICT:
        count = reader.read_length()
        result = {}
        for _ in range(count):
            key = _decode(reader)
            result[key] = _decode(reader)
        return result
    raise WireFormatError(f"unknown type tag {tag!r}")


# --------------------------------------------------------------------------- #
# framing
# --------------------------------------------------------------------------- #
def encode_frame(payload: bytes) -> bytes:
    """Wrap a payload in a length-prefixed frame."""
    if len(payload) > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit")
    return MAGIC + struct.pack(">I", len(payload)) + payload


def decode_frame(data: bytes) -> tuple[bytes, bytes]:
    """Split one frame off the front of ``data``; returns (payload, rest)."""
    if len(data) < 6:
        raise WireFormatError("incomplete frame header")
    if data[:2] != MAGIC:
        raise WireFormatError("bad frame magic")
    (length,) = struct.unpack(">I", data[2:6])
    if length > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit")
    if len(data) < 6 + length:
        raise WireFormatError("incomplete frame payload")
    return data[6:6 + length], data[6 + length:]


def extract_frame(buffer: bytearray,
                  max_length: int = MAX_FRAME_BYTES) -> bytes | None:
    """Incrementally split one complete frame's payload off ``buffer``.

    The workhorse of the async front end: the event loop appends whatever
    ``recv`` produced and calls this until it returns ``None`` (no complete
    frame buffered yet).  On success the consumed bytes are deleted from the
    front of ``buffer``.  Raises :class:`~repro.errors.WireFormatError` as
    soon as the buffered prefix can never become a valid frame (bad magic or
    an oversized length), without waiting for the rest to arrive.
    """
    if buffer[:2] != MAGIC[:len(buffer)]:
        raise WireFormatError("bad frame magic")
    if len(buffer) < 6:
        return None
    (length,) = struct.unpack(">I", bytes(buffer[2:6]))
    if length > max_length:
        raise WireFormatError(
            f"frame length {length} exceeds the {max_length}-byte limit")
    if len(buffer) < 6 + length:
        return None
    payload = bytes(buffer[6:6 + length])
    del buffer[:6 + length]
    return payload


def write_frame(stream: BinaryIO, payload: bytes) -> int:
    """Write one frame to a binary stream; returns bytes written."""
    frame = encode_frame(payload)
    stream.write(frame)
    stream.flush()
    return len(frame)


def read_frame(stream: BinaryIO,
               max_length: int = MAX_FRAME_BYTES) -> bytes:
    """Read exactly one frame from a binary stream.

    Raises :class:`~repro.errors.ConnectionLostError` when the stream ends
    *between* frames (a clean peer disconnect) and
    :class:`~repro.errors.WireFormatError` when it ends mid-frame, the magic
    is wrong, or the length prefix exceeds ``max_length`` (a hostile or
    corrupted prefix must not trigger a giant allocation).
    """
    first = stream.read(1)
    if not first:
        raise ConnectionLostError("connection closed")
    header = first + _read_exact(stream, 5)
    if header[:2] != MAGIC:
        raise WireFormatError("bad frame magic")
    (length,) = struct.unpack(">I", header[2:6])
    if length > max_length:
        raise WireFormatError(
            f"frame length {length} exceeds the {max_length}-byte limit")
    return _read_exact(stream, length)


def _read_exact(stream: BinaryIO, count: int) -> bytes:
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            raise WireFormatError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# --------------------------------------------------------------------------- #
# message helpers
# --------------------------------------------------------------------------- #
def encode_message(message: dict[str, Any]) -> bytes:
    """Encode a message dict into a framed payload."""
    return encode_frame(encode_value(message))


def decode_message(frame_payload: bytes) -> dict[str, Any]:
    """Decode a frame payload back into a message dict."""
    value = decode_value(frame_payload)
    if not isinstance(value, dict):
        raise WireFormatError("message payload is not a dictionary")
    return value
