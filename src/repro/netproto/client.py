"""Client connection: the JDBC stand-in the devUDF plugin connects through.

The connection implements the handshake (hello -> challenge -> login), query
execution with per-query transfer options (compression / encryption), and a
small DB-API-style cursor for code that prefers that interface.  Transfer
statistics are accumulated per connection so the workflow and transfer
benchmarks can report bytes moved.

Since the columnar chunk stream (protocol v2) the cursor is *incremental*:
``Cursor.execute`` opens a :class:`ResultStream` that consumes
``result_chunk`` frames lazily, so ``fetchone``/``fetchmany`` yield rows as
soon as their chunk arrives — before the full result is assembled —
while ``fetchall`` (and ``Connection.execute``) drain the stream and behave
exactly as before.  Only one stream is live per connection; starting a new
query drains the previous stream first so the transport never desyncs.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..errors import (
    AuthenticationError,
    ConnectionClosedError,
    ConnectionLostError,
    ExecutionError,
    ProtocolError,
)
from ..sqldb.result import QueryResult
from ..sqldb.storage import arrays_to_values
from ..sqldb.types import SQLType
from ..sqldb.vector import Vector
from . import compression as compression_mod
from .auth import compute_response, _password_digest
from .messages import (
    FORMAT_COLUMNAR,
    MSG_CANCEL,
    MSG_CANCELLED,
    MSG_CHALLENGE,
    MSG_CLOSE,
    MSG_DEALLOCATE,
    MSG_DEALLOCATED,
    MSG_ERROR,
    MSG_EXECUTE_PREPARED,
    MSG_LOGIN,
    MSG_LOGIN_OK,
    MSG_HELLO,
    MSG_PREPARE,
    MSG_PREPARED,
    MSG_QUERY,
    MSG_RESULT,
    MSG_STATS,
    MSG_STATS_RESULT,
    PROTOCOL_VERSION,
    ColumnarResultAssembler,
    TransferStats,
    decode_result,
    exception_for_error,
)
from .server import DatabaseServer, InProcessTransport, SocketTransport


@dataclass
class ConnectionInfo:
    """The client connection parameters from the settings dialog (Figure 2)."""

    host: str = "localhost"
    port: int = 50000
    database: str = "demo"
    username: str = "monetdb"
    password: str = "monetdb"

    def describe(self) -> str:
        return f"{self.username}@{self.host}:{self.port}/{self.database}"


@dataclass
class TransferOptions:
    """Per-query transfer options (compression / encryption), paper §2.1."""

    compression: str = compression_mod.CODEC_NONE
    encrypt: bool = False

    def as_dict(self) -> dict[str, Any]:
        return {"compression": self.compression, "encrypt": self.encrypt}


@dataclass
class RetryPolicy:
    """Exponential backoff with jitter for retryable failures.

    The client retries a statement only when both hold: the failure is
    *retryable* (a structured server error with ``retryable: true`` — e.g.
    admission-control saturation — or the connection dropped before the
    reply) and the statement is *idempotent* (a read-only ``SELECT`` /
    ``EXPLAIN``; a lost connection mid-``INSERT`` is ambiguous, so writes
    are never retried automatically).  Delays grow as ``base_delay *
    multiplier ** attempt`` capped at ``max_delay``, with up to
    ``jitter`` (a 0–1 fraction) of each delay randomly shaved off so a
    herd of rejected clients does not retry in lockstep.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def should_retry(self, attempt: int) -> bool:
        """Whether a retry (``attempt`` failures so far) is still allowed."""
        return attempt + 1 < self.max_attempts

    def delay(self, attempt: int) -> float:
        base = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        return base * (1.0 - self.jitter * random.random())

    def sleep(self, attempt: int) -> None:
        time.sleep(self.delay(attempt))


#: Statements safe to resend after an ambiguous failure: they read, never
#: write, so executing them 0, 1, or 2 times is indistinguishable.
_IDEMPOTENT_KEYWORDS = frozenset({"select", "explain", "values", "show"})


def is_idempotent_statement(sql: str) -> bool:
    stripped = sql.lstrip().lstrip("(").lstrip()
    first = stripped.split(None, 1)[0].lower() if stripped else ""
    return first in _IDEMPOTENT_KEYWORDS


@dataclass
class ClientStats:
    """Aggregate per-connection transfer statistics."""

    queries: int = 0
    rows_received: int = 0
    wire_bytes_received: int = 0
    raw_bytes_received: int = 0
    retries: int = 0
    reconnects: int = 0
    last_transfer: TransferStats | None = None
    history: list[TransferStats] = field(default_factory=list)


class Connection:
    """A client connection to a (possibly remote) database server."""

    def __init__(self, transport: InProcessTransport | SocketTransport,
                 info: ConnectionInfo, *,
                 max_protocol_version: int = PROTOCOL_VERSION,
                 retry_policy: RetryPolicy | None = None) -> None:
        self._transport = transport
        self.info = info
        self._closed = False
        self._authenticated = False
        self._transfer_key: str | None = None
        #: Highest version this connection advertises (capped for testing /
        #: interop with peers that predate dictionary encoding).
        self.max_protocol_version = max(1, min(int(max_protocol_version),
                                               PROTOCOL_VERSION))
        #: Negotiated wire protocol version (1 against seed-era servers).
        self.protocol_version = 1
        self.stats = ClientStats()
        self.default_options = TransferOptions()
        #: Backoff policy for retryable failures; ``None`` disables retries.
        self.retry_policy = (RetryPolicy() if retry_policy is None
                             else retry_policy)
        #: Rebuilds the transport for reconnects and out-of-band cancels;
        #: set by the ``connect_*`` constructors.
        self._transport_factory: Callable[
            [], InProcessTransport | SocketTransport] | None = None
        #: Cancellation credentials from ``login_ok`` (None against a
        #: pre-resilience server).
        self.session_id: int | None = None
        self.cancel_key: str | None = None
        self._active_stream: "ResultStream | None" = None

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def connect_in_process(cls, server: DatabaseServer,
                           info: ConnectionInfo | None = None, *,
                           max_protocol_version: int = PROTOCOL_VERSION,
                           retry_policy: RetryPolicy | None = None
                           ) -> "Connection":
        info = info or ConnectionInfo(database=server.database.name)
        connection = cls(InProcessTransport(server), info,
                         max_protocol_version=max_protocol_version,
                         retry_policy=retry_policy)
        connection._transport_factory = lambda: InProcessTransport(server)
        connection.login()
        return connection

    @classmethod
    def connect_tcp(cls, info: ConnectionInfo, *,
                    timeout: float = 10.0,
                    max_protocol_version: int = PROTOCOL_VERSION,
                    retry_policy: RetryPolicy | None = None) -> "Connection":
        """Connect over TCP, retrying refused/dropped connects with backoff."""
        factory = lambda: SocketTransport(info.host, info.port,  # noqa: E731
                                          timeout=timeout)
        connection = cls(cls._connect_with_backoff(factory, retry_policy),
                         info, max_protocol_version=max_protocol_version,
                         retry_policy=retry_policy)
        connection._transport_factory = factory
        connection.login()
        return connection

    @staticmethod
    def _connect_with_backoff(
            factory: Callable[[], "InProcessTransport | SocketTransport"],
            policy: RetryPolicy | None
            ) -> "InProcessTransport | SocketTransport":
        policy = RetryPolicy() if policy is None else policy
        attempt = 0
        while True:
            try:
                return factory()
            except OSError:
                if not policy.should_retry(attempt):
                    raise
                policy.sleep(attempt)
                attempt += 1

    # ------------------------------------------------------------------ #
    # handshake
    # ------------------------------------------------------------------ #
    def login(self) -> None:
        challenge_msg = self._exchange({
            "type": MSG_HELLO,
            "username": self.info.username,
            "database": self.info.database,
            "protocol_version": self.max_protocol_version,
        })
        if challenge_msg.get("type") != MSG_CHALLENGE:
            raise ProtocolError(f"expected challenge, got {challenge_msg.get('type')!r}")
        self.protocol_version = max(
            1, min(int(challenge_msg.get("protocol_version", 1)),
                   self.max_protocol_version))
        salt = challenge_msg["salt"]
        challenge = challenge_msg["challenge"]
        response = compute_response(self.info.password, salt, challenge)
        login_reply = self._exchange({
            "type": MSG_LOGIN,
            "username": self.info.username,
            "response": response,
        })
        if login_reply.get("type") == MSG_ERROR:
            raise AuthenticationError(login_reply.get("message", "login failed"))
        if login_reply.get("type") != MSG_LOGIN_OK:
            raise ProtocolError(f"unexpected login reply {login_reply.get('type')!r}")
        # cancellation credentials (absent on pre-resilience servers)
        raw_session = login_reply.get("session_id")
        self.session_id = int(raw_session) if raw_session is not None else None
        raw_key = login_reply.get("cancel_key")
        self.cancel_key = str(raw_key) if raw_key is not None else None
        self._authenticated = True
        # The transfer key both sides derive from the user's password (paper:
        # "using the password of the database user as a key").
        self._transfer_key = _password_digest(self.info.password, salt).hex()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def execute(self, sql: str, parameters: tuple | None = None,
                *, options: TransferOptions | None = None,
                timeout: float | None = None) -> QueryResult:
        """Execute one SQL statement and fetch the full result."""
        return self.execute_stream(sql, parameters, options=options,
                                   timeout=timeout).result()

    def execute_stream(self, sql: str, parameters: tuple | None = None,
                       *, options: TransferOptions | None = None,
                       timeout: float | None = None) -> "ResultStream":
        """Execute one SQL statement and return an incremental result stream.

        Against a columnar (v2+) server the stream's ``fetchone`` /
        ``fetchmany`` consume ``result_chunk`` frames lazily, yielding rows
        as soon as their chunk arrives.  Against a v1 server the full result
        is fetched eagerly and the stream merely iterates it.

        ``timeout`` is a per-statement deadline in seconds, enforced
        *server-side* at morsel boundaries (the server may clamp it to its
        own ``statement_timeout``); expiry raises
        :class:`~repro.errors.QueryTimeoutError`.

        Retryable failures — a ``retryable`` structured error such as
        admission-control saturation, or a dropped connection — are retried
        with exponential backoff per :attr:`retry_policy`, but only for
        idempotent read-only statements (see :func:`is_idempotent_statement`).
        """
        if self._closed:
            raise ConnectionClosedError("connection is closed")
        if not self._authenticated:
            raise AuthenticationError("connection is not authenticated")
        self._drain_active_stream()
        if parameters:
            from ..sqldb.database import _apply_parameters

            sql = _apply_parameters(sql, parameters)
        options = options or self.default_options
        request_options = options.as_dict()
        if timeout is not None:
            request_options["timeout"] = float(timeout)
        request = {"type": MSG_QUERY, "sql": sql, "options": request_options}
        return self._submit_query(request, sql)

    def _submit_query(self, request: dict[str, Any],
                      sql: str) -> "ResultStream":
        """Send a query-shaped request and assemble its result stream
        (shared by :meth:`execute_stream` and :meth:`execute_prepared`)."""
        reply = self._exchange_with_retry(request, sql)
        if reply.get("type") == MSG_ERROR:
            raise exception_for_error(reply)
        if reply.get("type") != MSG_RESULT:
            raise ProtocolError(f"unexpected reply {reply.get('type')!r}")

        if reply.get("format") == FORMAT_COLUMNAR:
            assembler = ColumnarResultAssembler(
                reply, encryption_key=self._transfer_key)
            stream = ResultStream(self, header=reply, assembler=assembler)
            if not stream.complete:
                self._active_stream = stream
            else:
                stream._finalise()
            return stream

        result = decode_result(
            reply["payload"],
            compressed=bool(reply.get("compressed")),
            encrypted=bool(reply.get("encrypted")),
            encryption_key=self._transfer_key,
        )
        stats_dict = reply.get("stats") or {}
        transfer = TransferStats(
            raw_bytes=int(stats_dict.get("raw_bytes", 0)),
            compressed_bytes=int(stats_dict.get("compressed_bytes", 0)),
            encrypted_bytes=int(stats_dict.get("encrypted_bytes", 0)),
            wire_bytes=int(stats_dict.get("wire_bytes", 0)),
            compression_codec=str(stats_dict.get("compression_codec", "none")),
            encrypted=bool(stats_dict.get("encrypted", False)),
            total_rows=stats_dict.get("total_rows"),
        )
        raw_trace = reply.get("trace_id")
        return ResultStream(self, result=result, transfer=transfer,
                            trace_id=str(raw_trace)
                            if raw_trace is not None else None)

    # ------------------------------------------------------------------ #
    # prepared statements
    # ------------------------------------------------------------------ #
    def prepare(self, name: str, sql: str) -> "PreparedHandle":
        """Register ``sql`` (with ``?`` placeholders) under ``name`` on the
        server and return a handle for repeated execution.

        The server parses the statement once into its shared prepared
        registry; every :meth:`PreparedHandle.execute` call afterwards skips
        the parser entirely and binds the supplied arguments.
        """
        if self._closed:
            raise ConnectionClosedError("connection is closed")
        if not self._authenticated:
            raise AuthenticationError("connection is not authenticated")
        self._drain_active_stream()
        reply = self._exchange({"type": MSG_PREPARE, "name": name,
                                "sql": sql})
        if reply.get("type") == MSG_ERROR:
            raise exception_for_error(reply)
        if reply.get("type") != MSG_PREPARED:
            raise ProtocolError(f"unexpected reply {reply.get('type')!r}")
        return PreparedHandle(self, str(reply.get("name", name)), sql,
                              int(reply.get("parameter_count", 0)))

    def execute_prepared(self, name: str, args: Sequence[Any] = (), *,
                         sql: str | None = None,
                         options: TransferOptions | None = None,
                         timeout: float | None = None) -> QueryResult:
        """Execute a server-side prepared statement with bound ``args``.

        ``sql`` is the template text when known (a handle supplies it) so
        idempotent SELECT templates stay eligible for automatic retry; for a
        statement prepared by another connection pass nothing and the call is
        treated as non-idempotent.
        """
        if self._closed:
            raise ConnectionClosedError("connection is closed")
        if not self._authenticated:
            raise AuthenticationError("connection is not authenticated")
        self._drain_active_stream()
        options = options or self.default_options
        request_options = options.as_dict()
        if timeout is not None:
            request_options["timeout"] = float(timeout)
        request = {"type": MSG_EXECUTE_PREPARED, "name": name,
                   "args": list(args), "options": request_options}
        retry_sql = sql if sql is not None else f"EXECUTE {name}"
        return self._submit_query(request, retry_sql).result()

    def deallocate(self, name: str) -> bool:
        """Drop a prepared statement; returns whether the name existed."""
        if self._closed:
            raise ConnectionClosedError("connection is closed")
        self._drain_active_stream()
        reply = self._exchange({"type": MSG_DEALLOCATE, "name": name})
        if reply.get("type") == MSG_ERROR:
            raise exception_for_error(reply)
        if reply.get("type") != MSG_DEALLOCATED:
            raise ProtocolError(f"unexpected reply {reply.get('type')!r}")
        return bool(reply.get("found"))

    def _drain_active_stream(self) -> None:
        """Finish the in-flight chunk stream so the transport stays in sync."""
        stream = self._active_stream
        if stream is not None:
            self._active_stream = None
            stream._drain()

    def _record_transfer(self, row_count: int, transfer: TransferStats) -> None:
        self.stats.queries += 1
        self.stats.rows_received += row_count
        self.stats.wire_bytes_received += transfer.wire_bytes
        self.stats.raw_bytes_received += transfer.raw_bytes
        self.stats.last_transfer = transfer
        self.stats.history.append(transfer)

    def execute_script(self, sql: str) -> list[QueryResult]:
        """Execute a semicolon-separated script client-side, one statement at a time."""
        from ..sqldb.parser import parse_script  # reuse the statement splitter
        # Re-render is not needed: we split on the raw text boundaries by
        # parsing and re-rendering is lossy for UDF bodies, so instead execute
        # the full script in one round trip per statement using the parser's
        # statement count as validation.
        statements = split_statements(sql)
        _ = parse_script  # imported for documentation purposes
        return [self.execute(statement) for statement in statements]

    def server_stats(self) -> dict[str, int]:
        """Fetch the server's flat counter snapshot (``stats`` message).

        Covers the engine (``db.*``), durability (``persist.*`` — WAL seals,
        verify runs, corruption detections, backups) and the wire layer
        (``server.*``).  Requires an authenticated session.
        """
        reply = self._exchange({"type": MSG_STATS})
        if reply.get("type") == MSG_ERROR:
            raise exception_for_error(reply)
        if reply.get("type") != MSG_STATS_RESULT:
            raise ProtocolError(
                f"unexpected stats reply {reply.get('type')!r}")
        stats = reply.get("stats")
        if not isinstance(stats, dict):
            raise ProtocolError("stats reply carries no stats mapping")
        return {str(name): int(value) for name, value in stats.items()}

    def server_slow_queries(self) -> list[dict[str, Any]]:
        """Fetch the server's bounded slow-query log (``stats`` message).

        Each entry carries ``trace_id``, ``sql``, ``duration_ms``, ``rows``,
        ``bytes`` and the per-phase ``spans`` breakdown recorded while the
        statement ran.  Empty when no statement has exceeded the server's
        ``slow_query_ms`` threshold (or tracking is disabled).
        """
        reply = self._exchange({"type": MSG_STATS})
        if reply.get("type") == MSG_ERROR:
            raise exception_for_error(reply)
        if reply.get("type") != MSG_STATS_RESULT:
            raise ProtocolError(
                f"unexpected stats reply {reply.get('type')!r}")
        entries = reply.get("slow_queries")
        return list(entries) if isinstance(entries, list) else []

    def cursor(self) -> "Cursor":
        return Cursor(self)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._closed:
            return
        try:
            self._drain_active_stream()
        except (ProtocolError, ExecutionError, OSError):
            pass
        try:
            self._exchange({"type": MSG_CLOSE})
        except (ProtocolError, OSError):
            pass
        self._transport.close()
        self._closed = True

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------ #
    # resilience
    # ------------------------------------------------------------------ #
    def reconnect(self) -> None:
        """Drop the current transport, rebuild it, and log in again."""
        if self._transport_factory is None:
            raise ConnectionLostError(
                "connection lost and this connection cannot reconnect "
                "(constructed without a transport factory)")
        try:
            self._transport.close()
        except (ProtocolError, OSError):
            pass
        self._active_stream = None
        self._authenticated = False
        self._transport = self._connect_with_backoff(
            self._transport_factory, self.retry_policy)
        self.stats.reconnects += 1
        self.login()

    def cancel(self) -> bool:
        """Ask the server to abort this connection's in-flight query.

        Opens a *second* connection (the first is busy carrying the query)
        and presents the ``session_id``/``cancel_key`` capability pair from
        login.  Returns ``True`` when a running query was found and
        cancelled; the cancelled query itself fails with
        :class:`~repro.errors.QueryCancelledError` on this connection.
        """
        if self.session_id is None or self.cancel_key is None:
            raise ProtocolError(
                "server did not issue cancellation credentials")
        if self._transport_factory is None:
            raise ProtocolError("this connection cannot open a cancel channel")
        transport = self._transport_factory()
        try:
            reply = transport.exchange({
                "type": MSG_CANCEL,
                "session_id": self.session_id,
                "cancel_key": self.cancel_key,
            })
            if reply.get("type") != MSG_CANCELLED:
                raise ProtocolError(
                    f"unexpected cancel reply {reply.get('type')!r}")
            return bool(reply.get("found"))
        finally:
            try:
                transport.close()
            except (ProtocolError, OSError):
                pass

    def _exchange_with_retry(self, request: dict[str, Any],
                             sql: str) -> dict[str, Any]:
        """Send a query, retrying retryable failures of idempotent reads."""
        policy = self.retry_policy
        retriable_sql = policy is not None and is_idempotent_statement(sql)
        attempt = 0
        while True:
            try:
                reply = self._exchange(request)
            except (ConnectionLostError, OSError):
                # the reply never arrived: ambiguous for writes, safe to
                # resend for reads — but only once a fresh transport exists
                if not (retriable_sql and policy.should_retry(attempt)
                        and self._transport_factory is not None):
                    raise
                policy.sleep(attempt)
                attempt += 1
                self.stats.retries += 1
                self.reconnect()
                continue
            if reply.get("type") == MSG_ERROR and reply.get("retryable"):
                if not (retriable_sql and policy.should_retry(attempt)):
                    return reply
                policy.sleep(attempt)
                attempt += 1
                self.stats.retries += 1
                continue
            return reply

    def _exchange(self, message: dict[str, Any]) -> dict[str, Any]:
        return self._transport.exchange(message)


class PreparedHandle:
    """Client handle to a server-side prepared statement.

    Created by :meth:`Connection.prepare`; each :meth:`execute` is one
    ``execute_prepared`` round trip that skips SQL parsing on the server.
    """

    def __init__(self, connection: Connection, name: str, sql: str,
                 parameter_count: int) -> None:
        self.connection = connection
        self.name = name
        self.sql = sql
        self.parameter_count = parameter_count

    def execute(self, args: Sequence[Any] = (), *,
                options: TransferOptions | None = None,
                timeout: float | None = None) -> QueryResult:
        if len(args) != self.parameter_count:
            raise ExecutionError(
                f"prepared statement '{self.name}' expects "
                f"{self.parameter_count} argument(s), got {len(args)}")
        return self.connection.execute_prepared(
            self.name, args, sql=self.sql, options=options, timeout=timeout)

    def deallocate(self) -> bool:
        return self.connection.deallocate(self.name)

    def __repr__(self) -> str:
        return (f"PreparedHandle(name={self.name!r}, "
                f"parameters={self.parameter_count})")


class ResultStream:
    """Incremental, chunk-at-a-time view of one query's result.

    Rows become available as their ``result_chunk`` frame arrives:
    ``fetchone``/``fetchmany`` pull exactly as many chunks as needed, so the
    first rows of a large result are usable while later chunks are still on
    the wire.  ``result()`` (and therefore ``fetchall``) drains the stream
    and yields the same lazily-decoded :class:`QueryResult` that
    ``Connection.execute`` always returned.
    """

    def __init__(self, connection: Connection, *,
                 header: dict[str, Any] | None = None,
                 assembler: ColumnarResultAssembler | None = None,
                 result: QueryResult | None = None,
                 transfer: TransferStats | None = None,
                 trace_id: str | None = None) -> None:
        self._connection = connection
        #: Server-assigned trace id for this query (``None`` when the server
        #: runs with tracing disabled).  Matches the ``trace_id`` of the
        #: server's span tree and slow-query-log entry for the statement.
        self.trace_id: str | None = trace_id
        self._assembler = assembler
        self._result: QueryResult | None = None
        self._all_rows: list[tuple] | None = None
        self._rows: list[tuple] = []     # rows decoded so far, chunk by chunk
        self._position = 0
        self._chunks_received = 0
        self._finalised = False
        self.transfer: TransferStats | None = None
        if result is not None:
            # already-complete result (v1 payload or DML)
            self.columns_meta = [(column.name, column.sql_type.value)
                                 for column in result.columns]
            self.statement_type = result.statement_type
            self.affected_rows = result.affected_rows
            self.row_count = result.row_count
            self.streamed = False
            self._result = result
            self.transfer = transfer or TransferStats()
            self._finalised = True
            connection._record_transfer(result.row_count, self.transfer)
        else:
            assert header is not None and assembler is not None
            raw_trace = header.get("trace_id")
            if raw_trace is not None:
                self.trace_id = str(raw_trace)
            self.columns_meta = [(str(meta["name"]), str(meta["type"]))
                                 for meta in header.get("columns", [])]
            self.statement_type = str(header.get("statement_type", "SELECT"))
            self.affected_rows = int(header.get("affected_rows", 0))
            #: ``-1`` until a streamed (v4) result finishes: the server
            #: starts shipping chunks before it knows the total row count.
            self.row_count = int(header.get("row_count", 0))
            self.streamed = bool(header.get("streamed"))

    # -- progress (used by tests and monitoring) ------------------------- #
    @property
    def complete(self) -> bool:
        """True once every chunk frame has been received."""
        return self._finalised or self._assembler is None \
            or self._assembler.complete

    @property
    def chunks_received(self) -> int:
        return self._chunks_received

    @property
    def rows_decoded(self) -> int:
        """Rows decoded so far via the incremental fetch path."""
        return len(self._rows)

    # -- chunk consumption ----------------------------------------------- #
    def _advance(self, *, decode_rows: bool) -> None:
        """Receive one more chunk frame; on failure flush the remainder so
        the transport never desyncs (mirrors the pre-stream behaviour)."""
        assembler = self._assembler
        assert assembler is not None
        stream_ended = False
        try:
            chunk = self._connection._transport.receive()
            self._chunks_received += 1
            if chunk.get("type") == MSG_ERROR:
                # a streamed server's error frame is the stream's terminal
                # message: nothing further is on the wire
                stream_ended = True
                raise exception_for_error(chunk)
            if chunk.get("last"):
                stream_ended = True
            columns = assembler.add_chunk(chunk)
        except Exception:
            if self._connection._active_stream is self:
                self._connection._active_stream = None
            if assembler.expected_chunks >= 0:
                for _ in range(assembler.expected_chunks - self._chunks_received):
                    try:
                        self._connection._transport.receive()
                    except Exception:
                        break
            elif not stream_ended:
                # streamed result that failed before its terminal frame:
                # drain until the last-flagged chunk (or the error frame
                # that replaced it) so the transport stays in sync for the
                # next query.  When the failure *was* the terminal frame,
                # receiving again would block on an idle socket.
                while True:
                    try:
                        message = self._connection._transport.receive()
                    except Exception:
                        break
                    if message.get("type") != "result_chunk" \
                            or message.get("last"):
                        break
            raise
        if decode_rows:
            self._rows.extend(_decoded_chunk_rows(columns))
        if assembler.complete:
            self._finalise()

    def _finalise(self) -> None:
        if self._finalised:
            return
        assert self._assembler is not None
        result, transfer = self._assembler.finish()
        self._result = result
        self.transfer = transfer
        self.row_count = result.row_count  # resolves streamed -1 headers
        self._finalised = True
        if self._connection._active_stream is self:
            self._connection._active_stream = None
        self._connection._record_transfer(result.row_count, transfer)

    def _drain(self) -> None:
        """Receive every outstanding chunk.

        Skips the incremental row decode unless it already started (in which
        case the decoded-row view must stay complete for later fetches).
        """
        if self._assembler is not None:
            decode_rows = bool(self._rows)
            while not self._assembler.complete:
                self._advance(decode_rows=decode_rows)
            self._finalise()

    def result(self) -> QueryResult:
        """The complete (lazily decoded) result; drains remaining chunks."""
        if self._result is None:
            self._drain()
        assert self._result is not None
        return self._result

    # -- row access ------------------------------------------------------- #
    def _row_at(self, index: int) -> tuple | None:
        if not self._rows and self._finalised:
            # completed without incremental decoding (v1 payload, DML, or a
            # drained stream): read rows from the assembled result
            if self._all_rows is None:
                self._all_rows = self.result().fetchall()
            return self._all_rows[index] if index < len(self._all_rows) else None
        # incremental path: once any chunk was decoded into _rows, keep using
        # it — on completion it already holds every row (no second decode)
        while index >= len(self._rows) and not self.complete:
            self._advance(decode_rows=True)
        return self._rows[index] if index < len(self._rows) else None

    def fetchone(self) -> tuple | None:
        row = self._row_at(self._position)
        if row is not None:
            self._position += 1
        return row

    def fetchmany(self, size: int = 1) -> list[tuple]:
        """Up to ``size`` more rows; ``[]`` once the stream is exhausted.

        Exhaustion is a stable state: when the final chunk drained exactly
        at a fetch boundary (``last``-flagged or counted), later calls keep
        returning ``[]`` instead of touching the transport again —
        ``_row_at`` only advances while the assembler reports the stream
        incomplete.
        """
        rows = []
        for _ in range(size):
            row = self.fetchone()
            if row is None:
                break
            rows.append(row)
        return rows

    def fetchall(self) -> list[tuple]:
        if self._assembler is not None and (self._rows or not self._finalised):
            # the incremental path was (or still is) in play: decode the
            # remaining chunks into rows so positions stay consistent
            while not self.complete:
                self._advance(decode_rows=True)
            rows = self._rows[self._position:]
            self._position = len(self._rows)
            return rows
        result = self.result()
        if self._all_rows is None:
            self._all_rows = result.fetchall()
        rows = self._all_rows[self._position:]
        self._position = len(self._all_rows)
        return rows


class Cursor:
    """A DB-API-shaped cursor with incremental (chunk-at-a-time) fetching.

    ``execute`` opens a :class:`ResultStream`; ``fetchone``/``fetchmany``
    yield rows as soon as their chunk arrives, ``fetchall`` drains the
    stream — same rows, same order as the pre-streaming cursor.
    """

    def __init__(self, connection: Connection) -> None:
        self.connection = connection
        self._stream: ResultStream | None = None

    @property
    def description(self) -> list[tuple] | None:
        if self._stream is None or not self._stream.columns_meta:
            return None
        return [
            (name, type_name, None, None, None, None, None)
            for name, type_name in self._stream.columns_meta
        ]

    @property
    def rowcount(self) -> int:
        if self._stream is None:
            return -1
        if self._stream.columns_meta:
            return self._stream.row_count
        return self._stream.affected_rows

    def execute(self, sql: str, parameters: tuple | None = None) -> "Cursor":
        self._stream = self.connection.execute_stream(sql, parameters)
        return self

    def fetchone(self) -> tuple | None:
        if self._stream is None:
            return None
        return self._stream.fetchone()

    def fetchmany(self, size: int = 1) -> list[tuple]:
        if self._stream is None:
            return []
        return self._stream.fetchmany(size)

    def fetchall(self) -> list[tuple]:
        if self._stream is None:
            return []
        return self._stream.fetchall()

    def close(self) -> None:
        self._stream = None


def _decoded_chunk_rows(columns: Sequence[Any]) -> list[tuple]:
    """Materialise one decoded chunk's columns into row tuples."""
    lists: list[list[Any]] = []
    for column in columns:
        data, mask = column.materialise()
        if isinstance(data, Vector):
            lists.append(data.to_list())
        elif isinstance(data, np.ndarray) or mask is not None:
            lists.append(arrays_to_values(data, mask))
        else:
            lists.append(list(data))
    return [tuple(row) for row in zip(*lists)] if lists else []


def split_statements(sql: str) -> list[str]:
    """Split a SQL script into statements, respecting strings and UDF bodies."""
    statements: list[str] = []
    current: list[str] = []
    depth = 0
    in_string: str | None = None
    for char in sql:
        if in_string is not None:
            current.append(char)
            if char == in_string:
                in_string = None
            continue
        if char in ("'", '"'):
            in_string = char
            current.append(char)
            continue
        if char == "{":
            depth += 1
        elif char == "}":
            depth = max(depth - 1, 0)
        if char == ";" and depth == 0:
            text = "".join(current).strip()
            if text:
                statements.append(text)
            current = []
            continue
        current.append(char)
    tail = "".join(current).strip()
    if tail:
        statements.append(tail)
    return statements
