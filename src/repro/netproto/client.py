"""Client connection: the JDBC stand-in the devUDF plugin connects through.

The connection implements the handshake (hello -> challenge -> login), query
execution with per-query transfer options (compression / encryption), and a
small DB-API-style cursor for code that prefers that interface.  Transfer
statistics are accumulated per connection so the workflow and transfer
benchmarks can report bytes moved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import AuthenticationError, ConnectionClosedError, ExecutionError, ProtocolError
from ..sqldb.result import QueryResult
from . import compression as compression_mod
from .auth import compute_response, _password_digest
from .messages import (
    FORMAT_COLUMNAR,
    MSG_CHALLENGE,
    MSG_CLOSE,
    MSG_ERROR,
    MSG_LOGIN,
    MSG_LOGIN_OK,
    MSG_HELLO,
    MSG_QUERY,
    MSG_RESULT,
    PROTOCOL_VERSION,
    ColumnarResultAssembler,
    TransferStats,
    decode_result,
)
from .server import DatabaseServer, InProcessTransport, SocketTransport


@dataclass
class ConnectionInfo:
    """The client connection parameters from the settings dialog (Figure 2)."""

    host: str = "localhost"
    port: int = 50000
    database: str = "demo"
    username: str = "monetdb"
    password: str = "monetdb"

    def describe(self) -> str:
        return f"{self.username}@{self.host}:{self.port}/{self.database}"


@dataclass
class TransferOptions:
    """Per-query transfer options (compression / encryption), paper §2.1."""

    compression: str = compression_mod.CODEC_NONE
    encrypt: bool = False

    def as_dict(self) -> dict[str, Any]:
        return {"compression": self.compression, "encrypt": self.encrypt}


@dataclass
class ClientStats:
    """Aggregate per-connection transfer statistics."""

    queries: int = 0
    rows_received: int = 0
    wire_bytes_received: int = 0
    raw_bytes_received: int = 0
    last_transfer: TransferStats | None = None
    history: list[TransferStats] = field(default_factory=list)


class Connection:
    """A client connection to a (possibly remote) database server."""

    def __init__(self, transport: InProcessTransport | SocketTransport,
                 info: ConnectionInfo) -> None:
        self._transport = transport
        self.info = info
        self._closed = False
        self._authenticated = False
        self._transfer_key: str | None = None
        #: Negotiated wire protocol version (1 against seed-era servers).
        self.protocol_version = 1
        self.stats = ClientStats()
        self.default_options = TransferOptions()

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def connect_in_process(cls, server: DatabaseServer,
                           info: ConnectionInfo | None = None) -> "Connection":
        info = info or ConnectionInfo(database=server.database.name)
        connection = cls(InProcessTransport(server), info)
        connection.login()
        return connection

    @classmethod
    def connect_tcp(cls, info: ConnectionInfo) -> "Connection":
        transport = SocketTransport(info.host, info.port)
        connection = cls(transport, info)
        connection.login()
        return connection

    # ------------------------------------------------------------------ #
    # handshake
    # ------------------------------------------------------------------ #
    def login(self) -> None:
        challenge_msg = self._exchange({
            "type": MSG_HELLO,
            "username": self.info.username,
            "database": self.info.database,
            "protocol_version": PROTOCOL_VERSION,
        })
        if challenge_msg.get("type") != MSG_CHALLENGE:
            raise ProtocolError(f"expected challenge, got {challenge_msg.get('type')!r}")
        self.protocol_version = max(
            1, min(int(challenge_msg.get("protocol_version", 1)),
                   PROTOCOL_VERSION))
        salt = challenge_msg["salt"]
        challenge = challenge_msg["challenge"]
        response = compute_response(self.info.password, salt, challenge)
        login_reply = self._exchange({
            "type": MSG_LOGIN,
            "username": self.info.username,
            "response": response,
        })
        if login_reply.get("type") == MSG_ERROR:
            raise AuthenticationError(login_reply.get("message", "login failed"))
        if login_reply.get("type") != MSG_LOGIN_OK:
            raise ProtocolError(f"unexpected login reply {login_reply.get('type')!r}")
        self._authenticated = True
        # The transfer key both sides derive from the user's password (paper:
        # "using the password of the database user as a key").
        self._transfer_key = _password_digest(self.info.password, salt).hex()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def execute(self, sql: str, parameters: tuple | None = None,
                *, options: TransferOptions | None = None) -> QueryResult:
        """Execute one SQL statement and fetch the full result."""
        if self._closed:
            raise ConnectionClosedError("connection is closed")
        if not self._authenticated:
            raise AuthenticationError("connection is not authenticated")
        if parameters:
            from ..sqldb.database import _apply_parameters

            sql = _apply_parameters(sql, parameters)
        options = options or self.default_options
        reply = self._exchange({
            "type": MSG_QUERY,
            "sql": sql,
            "options": options.as_dict(),
        })
        if reply.get("type") == MSG_ERROR:
            raise ExecutionError(reply.get("message", "query failed"))
        if reply.get("type") != MSG_RESULT:
            raise ProtocolError(f"unexpected reply {reply.get('type')!r}")

        if reply.get("format") == FORMAT_COLUMNAR:
            result, transfer = self._receive_columnar(reply)
        else:
            result = decode_result(
                reply["payload"],
                compressed=bool(reply.get("compressed")),
                encrypted=bool(reply.get("encrypted")),
                encryption_key=self._transfer_key,
            )
            stats_dict = reply.get("stats") or {}
            transfer = TransferStats(
                raw_bytes=int(stats_dict.get("raw_bytes", 0)),
                compressed_bytes=int(stats_dict.get("compressed_bytes", 0)),
                encrypted_bytes=int(stats_dict.get("encrypted_bytes", 0)),
                wire_bytes=int(stats_dict.get("wire_bytes", 0)),
                compression_codec=str(stats_dict.get("compression_codec", "none")),
                encrypted=bool(stats_dict.get("encrypted", False)),
                total_rows=stats_dict.get("total_rows"),
            )
        self.stats.queries += 1
        self.stats.rows_received += result.row_count
        self.stats.wire_bytes_received += transfer.wire_bytes
        self.stats.raw_bytes_received += transfer.raw_bytes
        self.stats.last_transfer = transfer
        self.stats.history.append(transfer)
        return result

    def _receive_columnar(self, header: dict[str, Any]
                          ) -> tuple[QueryResult, TransferStats]:
        """Consume the chunk stream following a columnar result header.

        The assembled columns stay backed by the received buffers; Python
        value lists are only built if the caller touches ``values`` /
        ``rows()`` / ``fetchall()`` (lazy decode).
        """
        assembler = ColumnarResultAssembler(header,
                                            encryption_key=self._transfer_key)
        received = 0
        try:
            for _ in range(assembler.expected_chunks):
                chunk = self._transport.receive()
                received += 1
                if chunk.get("type") == MSG_ERROR:
                    raise ExecutionError(chunk.get("message", "query failed"))
                assembler.add_chunk(chunk)
        except Exception:
            # a bad chunk must not leave the remaining frames buffered on the
            # transport, or every later reply on this connection would desync
            for _ in range(assembler.expected_chunks - received):
                try:
                    self._transport.receive()
                except Exception:
                    break
            raise
        return assembler.finish()

    def execute_script(self, sql: str) -> list[QueryResult]:
        """Execute a semicolon-separated script client-side, one statement at a time."""
        from ..sqldb.parser import parse_script  # reuse the statement splitter
        # Re-render is not needed: we split on the raw text boundaries by
        # parsing and re-rendering is lossy for UDF bodies, so instead execute
        # the full script in one round trip per statement using the parser's
        # statement count as validation.
        statements = split_statements(sql)
        _ = parse_script  # imported for documentation purposes
        return [self.execute(statement) for statement in statements]

    def cursor(self) -> "Cursor":
        return Cursor(self)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._closed:
            return
        try:
            self._exchange({"type": MSG_CLOSE})
        except (ProtocolError, OSError):
            pass
        self._transport.close()
        self._closed = True

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def _exchange(self, message: dict[str, Any]) -> dict[str, Any]:
        return self._transport.exchange(message)


class Cursor:
    """A minimal DB-API-shaped cursor on top of :class:`Connection`."""

    def __init__(self, connection: Connection) -> None:
        self.connection = connection
        self._result: QueryResult | None = None
        self._position = 0

    @property
    def description(self) -> list[tuple] | None:
        if self._result is None or not self._result.columns:
            return None
        return [
            (column.name, column.sql_type.value, None, None, None, None, None)
            for column in self._result.columns
        ]

    @property
    def rowcount(self) -> int:
        if self._result is None:
            return -1
        if self._result.columns:
            return self._result.row_count
        return self._result.affected_rows

    def execute(self, sql: str, parameters: tuple | None = None) -> "Cursor":
        self._result = self.connection.execute(sql, parameters)
        self._position = 0
        return self

    def fetchone(self) -> tuple | None:
        if self._result is None:
            return None
        rows = self._result.fetchall()
        if self._position >= len(rows):
            return None
        row = rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: int = 1) -> list[tuple]:
        rows = []
        for _ in range(size):
            row = self.fetchone()
            if row is None:
                break
            rows.append(row)
        return rows

    def fetchall(self) -> list[tuple]:
        if self._result is None:
            return []
        rows = self._result.fetchall()[self._position:]
        self._position = self._result.row_count
        return rows

    def close(self) -> None:
        self._result = None


def split_statements(sql: str) -> list[str]:
    """Split a SQL script into statements, respecting strings and UDF bodies."""
    statements: list[str] = []
    current: list[str] = []
    depth = 0
    in_string: str | None = None
    for char in sql:
        if in_string is not None:
            current.append(char)
            if char == in_string:
                in_string = None
            continue
        if char in ("'", '"'):
            in_string = char
            current.append(char)
            continue
        if char == "{":
            depth += 1
        elif char == "}":
            depth = max(depth - 1, 0)
        if char == ";" and depth == 0:
            text = "".join(current).strip()
            if text:
                statements.append(text)
            current = []
            continue
        current.append(char)
    tail = "".join(current).strip()
    if tail:
        statements.append(tail)
    return statements
