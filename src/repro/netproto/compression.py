"""Transfer compression codecs.

The paper (§2.1) lets the developer "compress the data during the transfer,
leading to faster transfer times".  The reproduction offers several codecs so
that the compression benchmark can sweep them:

* ``none``   — identity (the baseline).
* ``zlib``   — DEFLATE at a configurable level (the default, closest to what a
  production plugin would ship).
* ``rle``    — a from-scratch byte-level run-length encoder; demo data
  (repetitive integer columns) compresses well even with this naive scheme,
  which makes the benchmark's point without relying on zlib internals.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable

from ..errors import ProtocolError

CODEC_NONE = "none"
CODEC_ZLIB = "zlib"
CODEC_RLE = "rle"


# --------------------------------------------------------------------------- #
# run-length codec (from scratch)
# --------------------------------------------------------------------------- #
def rle_compress(data: bytes) -> bytes:
    """Byte-level run-length encoding: (count, byte) pairs, count <= 255."""
    data = bytes(data) if not isinstance(data, bytes) else data
    if not data:
        return b""
    out = bytearray()
    previous = data[0]
    run = 1
    for byte in data[1:]:
        if byte == previous and run < 255:
            run += 1
        else:
            out.append(run)
            out.append(previous)
            previous = byte
            run = 1
    out.append(run)
    out.append(previous)
    return bytes(out)


def rle_decompress(data: bytes) -> bytes:
    if len(data) % 2 != 0:
        raise ProtocolError("corrupt RLE stream (odd length)")
    out = bytearray()
    for index in range(0, len(data), 2):
        count = data[index]
        value = data[index + 1]
        out.extend(bytes([value]) * count)
    return bytes(out)


# --------------------------------------------------------------------------- #
# codec registry
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Codec:
    """A named compression codec."""

    name: str
    compress: Callable[[bytes], bytes]
    decompress: Callable[[bytes], bytes]


_CODECS: dict[str, Codec] = {
    CODEC_NONE: Codec(CODEC_NONE,
                      lambda data: data if isinstance(data, bytes) else bytes(data),
                      lambda data: data),
    CODEC_ZLIB: Codec(CODEC_ZLIB,
                      lambda data: zlib.compress(data, 6),
                      zlib.decompress),
    CODEC_RLE: Codec(CODEC_RLE, rle_compress, rle_decompress),
}


def available_codecs() -> list[str]:
    return sorted(_CODECS)


def get_codec(name: str) -> Codec:
    try:
        return _CODECS[name.lower()]
    except KeyError:
        raise ProtocolError(f"unknown compression codec {name!r}; "
                            f"available: {available_codecs()}") from None


def compress(data: bytes | bytearray | memoryview, codec: str = CODEC_ZLIB) -> bytes:
    """Compress ``data`` and prepend a one-byte codec id so it is self-describing.

    Accepts any bytes-like buffer (the columnar wire path hands in numpy
    buffer exports) without an intermediate copy for codecs that support it.
    """
    codec_obj = get_codec(codec)
    codec_id = sorted(_CODECS).index(codec_obj.name)
    return bytes([codec_id]) + codec_obj.compress(data)


def decompress(data: bytes) -> bytes:
    """Reverse :func:`compress`."""
    if not data:
        raise ProtocolError("empty compressed payload")
    names = sorted(_CODECS)
    codec_id = data[0]
    if codec_id >= len(names):
        raise ProtocolError(f"unknown codec id {codec_id}")
    return _CODECS[names[codec_id]].decompress(data[1:])


def compression_ratio(original: bytes, codec: str = CODEC_ZLIB) -> float:
    """Original size divided by compressed size (>= 1 means it helped)."""
    compressed = compress(original, codec)
    return len(original) / max(len(compressed), 1)
