"""Protocol messages and result-set serialisation.

A query result travels as a single payload blob inside the ``result`` message.
The payload is built in stages that mirror the paper's transfer options
(§2.1-2.2): serialise -> (optional) sample happened server-side already ->
(optional) compress -> (optional) encrypt.  Each stage's size is recorded so
the transfer benchmarks can report bytes-on-the-wire per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import ProtocolError, WireFormatError
from ..sqldb.result import QueryResult, ResultColumn
from ..sqldb.types import SQLType
from . import compression as compression_mod
from . import encryption as encryption_mod
from .wire import decode_value, encode_value

# message type names
MSG_HELLO = "hello"
MSG_CHALLENGE = "challenge"
MSG_LOGIN = "login"
MSG_LOGIN_OK = "login_ok"
MSG_QUERY = "query"
MSG_RESULT = "result"
MSG_ERROR = "error"
MSG_CLOSE = "close"
MSG_CLOSED = "closed"


@dataclass
class TransferStats:
    """Byte counts for one result transfer (the C1/C2/C3 benchmark metrics)."""

    raw_bytes: int = 0
    compressed_bytes: int = 0
    encrypted_bytes: int = 0
    wire_bytes: int = 0
    compression_codec: str = compression_mod.CODEC_NONE
    encrypted: bool = False
    sampled_rows: int | None = None
    total_rows: int | None = None

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes <= 0:
            return 1.0
        return self.raw_bytes / self.compressed_bytes

    def as_dict(self) -> dict[str, Any]:
        return {
            "raw_bytes": self.raw_bytes,
            "compressed_bytes": self.compressed_bytes,
            "encrypted_bytes": self.encrypted_bytes,
            "wire_bytes": self.wire_bytes,
            "compression_codec": self.compression_codec,
            "compression_ratio": self.compression_ratio,
            "encrypted": self.encrypted,
            "sampled_rows": self.sampled_rows,
            "total_rows": self.total_rows,
        }


def result_to_payload_dict(result: QueryResult) -> dict[str, Any]:
    """Columnar dict representation of a result set (pre-serialisation)."""
    return {
        "statement_type": result.statement_type,
        "affected_rows": result.affected_rows,
        "columns": [
            {
                "name": column.name,
                "type": column.sql_type.value,
                "values": [_wire_value(v) for v in column.values],
            }
            for column in result.columns
        ],
    }


def payload_dict_to_result(payload: dict[str, Any]) -> QueryResult:
    columns = []
    for column in payload.get("columns", []):
        sql_type = SQLType(column["type"])
        columns.append(ResultColumn(column["name"], sql_type, list(column["values"])))
    return QueryResult(
        columns,
        affected_rows=int(payload.get("affected_rows", 0)),
        statement_type=str(payload.get("statement_type", "SELECT")),
    )


def _wire_value(value: Any) -> Any:
    """Normalise numpy scalars and other exotic values before encoding."""
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "shape", ()) == ():
        return value.item()
    return value


@dataclass
class EncodedResult:
    """The encrypted/compressed payload plus its transfer statistics."""

    blob: bytes
    stats: TransferStats = field(default_factory=TransferStats)
    compressed: bool = False
    encrypted: bool = False


def encode_result(result: QueryResult, *,
                  compression: str | None = None,
                  encryption_key: str | None = None) -> EncodedResult:
    """Serialise a result set applying the requested transfer options."""
    raw = encode_value(result_to_payload_dict(result))
    stats = TransferStats(raw_bytes=len(raw), total_rows=result.row_count)
    blob = raw
    compressed = False
    if compression and compression != compression_mod.CODEC_NONE:
        blob = compression_mod.compress(blob, compression)
        stats.compressed_bytes = len(blob)
        stats.compression_codec = compression
        compressed = True
    else:
        stats.compressed_bytes = len(blob)
    encrypted = False
    if encryption_key is not None:
        blob = encryption_mod.encrypt(blob, encryption_key)
        stats.encrypted_bytes = len(blob)
        stats.encrypted = True
        encrypted = True
    else:
        stats.encrypted_bytes = len(blob)
    stats.wire_bytes = len(blob)
    return EncodedResult(blob=blob, stats=stats, compressed=compressed, encrypted=encrypted)


def decode_result(blob: bytes, *, compressed: bool, encrypted: bool,
                  encryption_key: str | None = None) -> QueryResult:
    """Reverse :func:`encode_result`."""
    data = blob
    if encrypted:
        if encryption_key is None:
            raise ProtocolError("result is encrypted but no key was provided")
        data = encryption_mod.decrypt(data, encryption_key)
    if compressed:
        data = compression_mod.decompress(data)
    payload = decode_value(data)
    if not isinstance(payload, dict):
        raise WireFormatError("result payload is not a dictionary")
    return payload_dict_to_result(payload)
