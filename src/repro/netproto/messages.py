"""Protocol messages and result-set serialisation.

A query result travels as a single payload blob inside the ``result`` message.
The payload is built in stages that mirror the paper's transfer options
(§2.1-2.2): serialise -> (optional) sample happened server-side already ->
(optional) compress -> (optional) encrypt.  Each stage's size is recorded so
the transfer benchmarks can report bytes-on-the-wire per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import (
    AuthenticationError,
    CorruptionError,
    ProtocolError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    ServerBusyError,
    WireFormatError,
)
from ..sqldb.result import QueryResult, ResultColumn
from ..sqldb.types import SQLType
from . import columnar as columnar_mod
from . import compression as compression_mod
from . import encryption as encryption_mod
from .wire import decode_value, encode_value

#: Highest protocol version this build speaks.  Version 1 is the seed
#: row-oriented dict payload; version 2 adds the columnar chunk stream;
#: version 3 adds dictionary-encoded string columns (``TAG_DICT``);
#: version 4 adds *streamed* results: the header may carry unknown row and
#: chunk counts (``-1``) and the final ``result_chunk`` is flagged
#: ``last`` — the server emits each pipeline morsel as soon as it
#: completes, before the query finishes executing.
PROTOCOL_VERSION = 4

#: Result format labels carried in the ``result`` header message.
FORMAT_LEGACY = "legacy"
FORMAT_COLUMNAR = "columnar"

#: Default server-side chunk size (rows per ``result_chunk`` message).
DEFAULT_CHUNK_ROWS = 65_536

# message type names
MSG_HELLO = "hello"
MSG_CHALLENGE = "challenge"
MSG_LOGIN = "login"
MSG_LOGIN_OK = "login_ok"
MSG_QUERY = "query"
MSG_RESULT = "result"
MSG_RESULT_CHUNK = "result_chunk"
MSG_ERROR = "error"
MSG_CLOSE = "close"
MSG_CLOSED = "closed"
#: Out-of-band cancellation: ``{"type": "cancel", "session_id": n,
#: "cancel_key": "..."}`` sent on a *second* connection (the target's
#: handler thread is busy executing the query), answered with
#: ``{"type": "cancelled", "found": bool}``.  The key is the capability the
#: target session received in its ``login_ok``, so only the client that ran
#: the query (or something it told) can cancel it.
MSG_CANCEL = "cancel"
MSG_CANCELLED = "cancelled"
#: Observability: ``{"type": "stats"}`` (authenticated sessions only),
#: answered with ``{"type": "stats_result", "stats": {"db.tables": n, ...}}``
#: — the server's flat counter snapshot (engine, durability, server faults).
MSG_STATS = "stats"
MSG_STATS_RESULT = "stats_result"
#: Prepared statements: ``{"type": "prepare", "name": n, "sql": s}`` answered
#: with ``{"type": "prepared", "name": n, "parameter_count": k}``;
#: ``{"type": "execute_prepared", "name": n, "args": [...], "options": {...}}``
#: answered with a normal ``result`` (+ chunk) stream; ``{"type":
#: "deallocate", "name": n | None}`` answered with ``{"type": "deallocated",
#: "name": n}``.  Templates live in the shared database registry, so any
#: authenticated session may EXECUTE a name another session PREPAREd.
MSG_PREPARE = "prepare"
MSG_PREPARED = "prepared"
MSG_EXECUTE_PREPARED = "execute_prepared"
MSG_DEALLOCATE = "deallocate"
MSG_DEALLOCATED = "deallocated"

# --------------------------------------------------------------------------- #
# structured error frames
# --------------------------------------------------------------------------- #
#: Stable machine-readable error codes carried in ``error`` messages.  The
#: ``retryable`` flag travels alongside so old clients need no code table;
#: new clients map codes back to the exception taxonomy in
#: :mod:`repro.errors` via :func:`exception_for_error`.
ERR_PROTOCOL = "protocol"
ERR_AUTH = "auth"
ERR_WIRE_FORMAT = "wire_format"
ERR_EXECUTION = "execution"
ERR_TIMEOUT = "timeout"
ERR_CANCELLED = "cancelled"
ERR_SATURATED = "saturated"
ERR_SHUTTING_DOWN = "shutting_down"
ERR_SESSION_LIMIT = "session_limit"
ERR_CORRUPTION = "corruption"

#: Exception type -> wire code, most specific first (isinstance scan).
_ERROR_CODES: list[tuple[type, str]] = [
    (QueryTimeoutError, ERR_TIMEOUT),
    (QueryCancelledError, ERR_CANCELLED),
    (ServerBusyError, ERR_SATURATED),       # overridden by exc.code below
    (AuthenticationError, ERR_AUTH),
    (WireFormatError, ERR_WIRE_FORMAT),
    (ProtocolError, ERR_PROTOCOL),
    (CorruptionError, ERR_CORRUPTION),
]


def error_code_for(exc: BaseException) -> str:
    """The wire error code for an exception (``execution`` as the default)."""
    code = getattr(exc, "code", None)
    if isinstance(code, str) and code:
        return code
    for exc_type, mapped in _ERROR_CODES:
        if isinstance(exc, exc_type):
            return mapped
    return ERR_EXECUTION


def error_message_for(exc: BaseException) -> dict[str, Any]:
    """Build the structured ``error`` frame for an exception."""
    return {
        "type": MSG_ERROR,
        "error_class": type(exc).__name__,
        "message": str(exc),
        "code": error_code_for(exc),
        "retryable": bool(getattr(exc, "retryable", False)),
    }


def exception_for_error(message: dict[str, Any]) -> ReproError:
    """Map a structured ``error`` frame back to the exception taxonomy.

    Unknown or missing codes (a pre-resilience server) fall back to
    :class:`ExecutionError`, the exception the client always raised.
    """
    from ..errors import ExecutionError

    code = message.get("code")
    text = str(message.get("message", "query failed"))
    if code == ERR_TIMEOUT:
        return QueryTimeoutError(text)
    if code == ERR_CANCELLED:
        return QueryCancelledError(text)
    if code in (ERR_SATURATED, ERR_SHUTTING_DOWN, ERR_SESSION_LIMIT):
        return ServerBusyError(text, code=str(code))
    if code == ERR_AUTH:
        return AuthenticationError(text)
    if code == ERR_WIRE_FORMAT:
        return WireFormatError(text)
    if code == ERR_PROTOCOL:
        return ProtocolError(text)
    if code == ERR_CORRUPTION:
        return CorruptionError(text)
    return ExecutionError(text)


@dataclass
class TransferStats:
    """Byte counts for one result transfer (the C1/C2/C3 benchmark metrics)."""

    raw_bytes: int = 0
    compressed_bytes: int = 0
    encrypted_bytes: int = 0
    wire_bytes: int = 0
    compression_codec: str = compression_mod.CODEC_NONE
    encrypted: bool = False
    sampled_rows: int | None = None
    total_rows: int | None = None
    chunks: int = 0

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes <= 0:
            return 1.0
        return self.raw_bytes / self.compressed_bytes

    def add_chunk(self, chunk_stats: dict[str, Any]) -> None:
        """Accumulate one ``result_chunk`` message's byte counts."""
        self.raw_bytes += int(chunk_stats.get("raw_bytes", 0))
        self.compressed_bytes += int(chunk_stats.get("compressed_bytes", 0))
        self.encrypted_bytes += int(chunk_stats.get("encrypted_bytes", 0))
        self.wire_bytes += int(chunk_stats.get("wire_bytes", 0))
        self.chunks += 1

    def as_dict(self) -> dict[str, Any]:
        return {
            "raw_bytes": self.raw_bytes,
            "compressed_bytes": self.compressed_bytes,
            "encrypted_bytes": self.encrypted_bytes,
            "wire_bytes": self.wire_bytes,
            "compression_codec": self.compression_codec,
            "compression_ratio": self.compression_ratio,
            "encrypted": self.encrypted,
            "sampled_rows": self.sampled_rows,
            "total_rows": self.total_rows,
            "chunks": self.chunks,
        }


def result_to_payload_dict(result: QueryResult) -> dict[str, Any]:
    """Columnar dict representation of a result set (pre-serialisation)."""
    return {
        "statement_type": result.statement_type,
        "affected_rows": result.affected_rows,
        "columns": [
            {
                "name": column.name,
                "type": column.sql_type.value,
                "values": [_wire_value(v) for v in column.values],
            }
            for column in result.columns
        ],
    }


def payload_dict_to_result(payload: dict[str, Any]) -> QueryResult:
    columns = []
    for column in payload.get("columns", []):
        sql_type = SQLType(column["type"])
        columns.append(ResultColumn(column["name"], sql_type, list(column["values"])))
    return QueryResult(
        columns,
        affected_rows=int(payload.get("affected_rows", 0)),
        statement_type=str(payload.get("statement_type", "SELECT")),
    )


def _wire_value(value: Any) -> Any:
    """Normalise numpy scalars and other exotic values before encoding."""
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "shape", ()) == ():
        return value.item()
    return value


@dataclass
class EncodedResult:
    """The encrypted/compressed payload plus its transfer statistics."""

    blob: bytes
    stats: TransferStats = field(default_factory=TransferStats)
    compressed: bool = False
    encrypted: bool = False


def encode_result(result: QueryResult, *,
                  compression: str | None = None,
                  encryption_key: str | None = None) -> EncodedResult:
    """Serialise a result set applying the requested transfer options."""
    raw = encode_value(result_to_payload_dict(result))
    stats = TransferStats(raw_bytes=len(raw), total_rows=result.row_count)
    blob = raw
    compressed = False
    if compression and compression != compression_mod.CODEC_NONE:
        blob = compression_mod.compress(blob, compression)
        stats.compressed_bytes = len(blob)
        stats.compression_codec = compression
        compressed = True
    else:
        stats.compressed_bytes = len(blob)
    encrypted = False
    if encryption_key is not None:
        blob = encryption_mod.encrypt(blob, encryption_key)
        stats.encrypted_bytes = len(blob)
        stats.encrypted = True
        encrypted = True
    else:
        stats.encrypted_bytes = len(blob)
    stats.wire_bytes = len(blob)
    return EncodedResult(blob=blob, stats=stats, compressed=compressed, encrypted=encrypted)


def decode_result(blob: bytes, *, compressed: bool, encrypted: bool,
                  encryption_key: str | None = None) -> QueryResult:
    """Reverse :func:`encode_result`."""
    data = blob
    if encrypted:
        if encryption_key is None:
            raise ProtocolError("result is encrypted but no key was provided")
        data = encryption_mod.decrypt(data, encryption_key)
    if compressed:
        data = compression_mod.decompress(data)
    payload = decode_value(data)
    if not isinstance(payload, dict):
        raise WireFormatError("result payload is not a dictionary")
    return payload_dict_to_result(payload)


# --------------------------------------------------------------------------- #
# columnar chunk stream (protocol version 2)
# --------------------------------------------------------------------------- #
def columnar_result_messages(result: QueryResult, *,
                             chunk_rows: int = DEFAULT_CHUNK_ROWS,
                             compression: str | None = None,
                             encryption_key: str | None = None,
                             stats_out: TransferStats | None = None,
                             protocol_version: int = PROTOCOL_VERSION,
                             trace_id: str | None = None
                             ) -> Iterator[dict[str, Any]]:
    """Yield the ``result`` header message followed by its chunk messages.

    Chunks are encoded lazily as the iterator advances, so a streaming
    transport can put chunk *i* on the wire while the client already
    consumes chunk *i - 1*.  ``stats_out``, when given, accumulates the
    per-chunk byte counts server-side.  ``protocol_version`` is the
    *negotiated* version: dictionary-encoded string columns (``TAG_DICT``)
    are only emitted for version-3 peers.  ``trace_id``, when given, rides
    in the header so the client can correlate the result with the server's
    trace spans and slow-query log.
    """
    codec = compression or compression_mod.CODEC_NONE
    chunk_rows = max(1, int(chunk_rows))
    total_rows = result.row_count
    chunk_count = (total_rows + chunk_rows - 1) // chunk_rows
    encoder = columnar_mod.ChunkEncoder(result, codec=codec,
                                        allow_dict=protocol_version >= 3)
    if stats_out is not None:
        stats_out.compression_codec = codec
        stats_out.encrypted = encryption_key is not None
        stats_out.total_rows = total_rows
    header = {
        "type": MSG_RESULT,
        "format": FORMAT_COLUMNAR,
        "protocol_version": min(protocol_version, PROTOCOL_VERSION),
        "statement_type": result.statement_type,
        "affected_rows": result.affected_rows,
        "row_count": total_rows,
        "chunk_count": chunk_count,
        "columns": [{"name": column.name, "type": column.sql_type.value}
                    for column in result.columns],
        "compression": codec,
        "encrypted": encryption_key is not None,
    }
    if trace_id is not None:
        header["trace_id"] = trace_id
    yield header
    for seq, row_start in enumerate(range(0, max(total_rows, 0), chunk_rows)):
        row_stop = min(row_start + chunk_rows, total_rows)
        blob, raw_bytes = encoder.encode(row_start, row_stop)
        compressed_bytes = len(blob)
        if encryption_key is not None:
            blob = encryption_mod.encrypt(blob, encryption_key)
        chunk_stats = {
            "raw_bytes": raw_bytes,
            "compressed_bytes": compressed_bytes,
            "encrypted_bytes": len(blob) if encryption_key is not None else compressed_bytes,
            "wire_bytes": len(blob),
            "rows": row_stop - row_start,
        }
        if stats_out is not None:
            stats_out.add_chunk(chunk_stats)
        yield {
            "type": MSG_RESULT_CHUNK,
            "seq": seq,
            "row_start": row_start,
            "row_count": row_stop - row_start,
            "payload": blob,
            "encrypted": encryption_key is not None,
            "stats": chunk_stats,
        }


def streamed_result_messages(pieces: Iterator[QueryResult], *,
                             statement_type: str = "SELECT",
                             affected_rows: int = 0,
                             compression: str | None = None,
                             encryption_key: str | None = None,
                             stats_out: TransferStats | None = None,
                             protocol_version: int = PROTOCOL_VERSION,
                             trace_id: str | None = None
                             ) -> Iterator[dict[str, Any]]:
    """Yield a *streamed* result: header with unknown counts, then one
    ``result_chunk`` per pipeline morsel, the final one flagged ``last``.

    ``pieces`` is the engine's morsel stream (at least one, possibly empty,
    piece; the first carries the column layout).  Each piece is encoded as a
    self-contained chunk except that string dictionaries are only re-inlined
    when they change between morsels (scan slices of one column share their
    dictionary, so typically the dictionary ships once).  Requires a
    version-4 peer: older assemblers rely on the header's ``chunk_count``.
    """
    codec = compression or compression_mod.CODEC_NONE
    iterator = iter(pieces)
    first = next(iterator)
    if stats_out is not None:
        stats_out.compression_codec = codec
        stats_out.encrypted = encryption_key is not None
    header = {
        "type": MSG_RESULT,
        "format": FORMAT_COLUMNAR,
        "protocol_version": min(protocol_version, PROTOCOL_VERSION),
        "streamed": True,
        "statement_type": statement_type,
        "affected_rows": affected_rows,
        "row_count": -1,
        "chunk_count": -1,
        "columns": [{"name": column.name, "type": column.sql_type.value}
                    for column in first.columns],
        "compression": codec,
        "encrypted": encryption_key is not None,
    }
    if trace_id is not None:
        header["trace_id"] = trace_id
    yield header
    shipped_dictionaries: dict[int, Any] = {}
    piece: QueryResult | None = first
    seq = 0
    rows_sent = 0
    while piece is not None:
        try:
            next_piece: QueryResult | None = next(iterator)
        except StopIteration:
            next_piece = None
        encoder = columnar_mod.ChunkEncoder(
            piece, codec=codec, allow_dict=protocol_version >= 3,
            shipped_dictionaries=shipped_dictionaries)
        blob, raw_bytes = encoder.encode(0, piece.row_count)
        compressed_bytes = len(blob)
        if encryption_key is not None:
            blob = encryption_mod.encrypt(blob, encryption_key)
        chunk_stats = {
            "raw_bytes": raw_bytes,
            "compressed_bytes": compressed_bytes,
            "encrypted_bytes": len(blob) if encryption_key is not None
            else compressed_bytes,
            "wire_bytes": len(blob),
            "rows": piece.row_count,
        }
        if stats_out is not None:
            stats_out.add_chunk(chunk_stats)
            stats_out.total_rows = rows_sent + piece.row_count
        yield {
            "type": MSG_RESULT_CHUNK,
            "seq": seq,
            "row_start": rows_sent,
            "row_count": piece.row_count,
            "payload": blob,
            "encrypted": encryption_key is not None,
            "last": next_piece is None,
            "stats": chunk_stats,
        }
        rows_sent += piece.row_count
        seq += 1
        piece = next_piece


class ColumnarResultAssembler:
    """Client-side assembly of a columnar chunk stream into a lazy result.

    Feed the ``result`` header at construction and every ``result_chunk``
    message via :meth:`add_chunk`; :meth:`finish` builds a
    :class:`QueryResult` whose columns keep the received buffers zero-copy
    and only materialise Python lists when touched, plus the accumulated
    :class:`TransferStats`.
    """

    def __init__(self, header: dict[str, Any], *,
                 encryption_key: str | None = None) -> None:
        if header.get("format") != FORMAT_COLUMNAR:
            raise ProtocolError("result header is not columnar")
        self.header = header
        #: ``-1`` marks a streamed (protocol v4) result: the chunk count is
        #: unknown and completion is signalled by the ``last`` chunk flag.
        self.expected_chunks = int(header.get("chunk_count", 0))
        self.total_rows = int(header.get("row_count", 0))
        self._last_seen = False
        self._encryption_key = encryption_key
        self._chunks: list[list[columnar_mod.DecodedColumn]] = []
        #: Cross-chunk dictionary cache: a TAG_DICT dictionary is shipped
        #: inline once per column and referenced by the following chunks.
        self._dictionaries: dict[int, Any] = {}
        self._rows_seen = 0
        self.stats = TransferStats(
            compression_codec=str(header.get("compression",
                                             compression_mod.CODEC_NONE)),
            encrypted=bool(header.get("encrypted", False)),
            total_rows=self.total_rows,
        )

    @property
    def streamed(self) -> bool:
        return self.expected_chunks < 0

    @property
    def complete(self) -> bool:
        if self.streamed:
            return self._last_seen
        return len(self._chunks) >= self.expected_chunks

    def add_chunk(self, message: dict[str, Any]
                  ) -> list[columnar_mod.DecodedColumn]:
        """Decode one ``result_chunk`` message; returns its decoded columns
        (the incremental cursor consumes these chunk by chunk)."""
        if message.get("type") != MSG_RESULT_CHUNK:
            raise ProtocolError(
                f"expected result chunk, got {message.get('type')!r}")
        blob = message.get("payload")
        if not isinstance(blob, (bytes, bytearray)):
            raise ProtocolError("result chunk payload must be bytes")
        blob = bytes(blob)
        if message.get("encrypted"):
            if self._encryption_key is None:
                raise ProtocolError("result is encrypted but no key was provided")
            blob = encryption_mod.decrypt(blob, self._encryption_key)
        row_count, columns = columnar_mod.decode_chunk(
            blob, dictionaries=self._dictionaries)
        if len(columns) != len(self.header.get("columns", [])):
            raise ProtocolError("chunk column count does not match header")
        self._chunks.append(columns)
        self._rows_seen += row_count
        if message.get("last"):
            self._last_seen = True
        self.stats.add_chunk(message.get("stats") or {})
        return columns

    def finish(self) -> tuple[QueryResult, TransferStats]:
        if not self.complete:
            if self.streamed:
                raise ProtocolError(
                    "result stream truncated: final chunk not received")
            raise ProtocolError(
                f"result stream truncated: got {len(self._chunks)} of "
                f"{self.expected_chunks} chunks")
        if self.streamed:
            # unknown-count stream: the chunks themselves define the total
            self.total_rows = self._rows_seen
            self.stats.total_rows = self._rows_seen
        elif self._rows_seen != self.total_rows:
            raise ProtocolError("chunk row counts do not match header")
        columns = []
        for index, meta in enumerate(self.header.get("columns", [])):
            sql_type = SQLType(meta["type"])
            if not self._chunks:  # empty result: schema only, no chunk data
                columns.append(ResultColumn(meta["name"], sql_type, []))
            else:
                columns.append(columnar_mod.columns_from_chunks(
                    index, meta["name"], sql_type, self._chunks, self.total_rows))
        result = QueryResult(
            columns,
            affected_rows=int(self.header.get("affected_rows", 0)),
            statement_type=str(self.header.get("statement_type", "SELECT")),
        )
        return result, self.stats
