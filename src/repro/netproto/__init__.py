"""``repro.netproto`` — the client protocol the devUDF plugin connects through.

A length-prefixed binary protocol (the JDBC stand-in) with challenge/response
authentication and the three transfer options the paper's settings dialog
exposes: compression, encryption with the user's password, and server-side
uniform sampling.
"""

from .auth import UserRegistry, compute_response
from .chaos import ChaosProxy, FaultSpec, FaultyTransport
from .client import (
    ClientStats,
    Connection,
    ConnectionInfo,
    Cursor,
    RetryPolicy,
    TransferOptions,
    is_idempotent_statement,
    split_statements,
)
from .compression import (
    CODEC_NONE,
    CODEC_RLE,
    CODEC_ZLIB,
    available_codecs,
    compress,
    compression_ratio,
    decompress,
)
from .columnar import ChunkEncoder, decode_chunk, encode_result_chunk
from .encryption import decrypt, derive_key, encrypt, is_encrypted
from .messages import (
    DEFAULT_CHUNK_ROWS,
    PROTOCOL_VERSION,
    ColumnarResultAssembler,
    TransferStats,
    columnar_result_messages,
    decode_result,
    encode_result,
)
from .sampling import SampleSpec, sample_columns, sample_indices
from .server import (
    AdmissionController,
    DatabaseServer,
    InProcessTransport,
    ServerLimits,
    ServerStats,
    Session,
    SocketServer,
    SocketTransport,
    start_demo_server,
)

__all__ = [
    "AdmissionController",
    "CODEC_NONE",
    "CODEC_RLE",
    "CODEC_ZLIB",
    "ChaosProxy",
    "ChunkEncoder",
    "ClientStats",
    "ColumnarResultAssembler",
    "DEFAULT_CHUNK_ROWS",
    "FaultSpec",
    "FaultyTransport",
    "PROTOCOL_VERSION",
    "columnar_result_messages",
    "decode_chunk",
    "encode_result_chunk",
    "Connection",
    "ConnectionInfo",
    "Cursor",
    "DatabaseServer",
    "InProcessTransport",
    "RetryPolicy",
    "SampleSpec",
    "ServerLimits",
    "ServerStats",
    "Session",
    "SocketServer",
    "SocketTransport",
    "TransferOptions",
    "TransferStats",
    "UserRegistry",
    "is_idempotent_statement",
    "available_codecs",
    "compress",
    "compression_ratio",
    "compute_response",
    "decode_result",
    "decompress",
    "decrypt",
    "derive_key",
    "encode_result",
    "encrypt",
    "is_encrypted",
    "sample_columns",
    "sample_indices",
    "split_statements",
    "start_demo_server",
]
